//! Quickstart: train a small BCPNN network on synthetic Higgs collisions.
//!
//! This is the five-minute tour of the library: generate data, preprocess
//! it the way the paper does (balanced subset → per-feature deciles →
//! one-hot), build a network with the Keras-like builder, train it with the
//! two-phase trainer (unsupervised hidden layer, supervised readout), and
//! evaluate accuracy and AUC.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bcpnn_backend::BackendKind;
use bcpnn_core::{Network, ReadoutKind, Trainer, TrainingParams};
use bcpnn_data::encode::QuantileEncoder;
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::split::stratified_split;

fn main() {
    // 1. Data: 12 000 synthetic collisions with the UCI HIGGS schema.
    let collisions = generate(&SyntheticHiggsConfig {
        n_samples: 12_000,
        ..Default::default()
    });
    println!("dataset: {}", collisions.summary());
    let (train, test) = stratified_split(&collisions, 0.25, 7);

    // 2. Preprocessing (§V of the paper): decile binning + one-hot encoding.
    let encoder = QuantileEncoder::fit(&train, 10);
    let x_train = encoder.transform(&train);
    let x_test = encoder.transform(&test);
    println!("encoded width: {} binary inputs", x_train.cols());

    // 3. Model: one hypercolumn of 300 minicolumns looking at 40% of the
    //    input, with the hybrid (BCPNN features + SGD head) readout.
    let mut network = Network::builder()
        .input(x_train.cols())
        .hidden(1, 300, 0.40)
        .classes(2)
        .readout(ReadoutKind::Hybrid)
        .backend(BackendKind::Parallel)
        .seed(42)
        .build()
        .expect("valid configuration");

    // 4. Training: a few unsupervised epochs for the hidden layer, then the
    //    supervised readout.
    let trainer = Trainer::new(TrainingParams {
        unsupervised_epochs: 3,
        supervised_epochs: 8,
        batch_size: 128,
        seed: 42,
        shuffle: true,
    });
    let report = trainer
        .fit(&mut network, &x_train, &train.labels)
        .expect("training succeeds");
    println!(
        "trained {} epochs in {:.1}s",
        report.epochs.len(),
        report.train_time_seconds()
    );

    // 5. Evaluation: accuracy + AUC for both heads, as in the paper.
    let hybrid = network
        .evaluate(&x_test, &test.labels)
        .expect("evaluation succeeds");
    let pure = network
        .evaluate_with(ReadoutKind::Bcpnn, &x_test, &test.labels)
        .expect("evaluation succeeds");
    println!("BCPNN readout : {pure}");
    println!("BCPNN + SGD   : {hybrid}");
    println!("(paper reference: 68.58% / 0.755 AUC pure, 69.15% / 0.764 AUC hybrid)");
}
