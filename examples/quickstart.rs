//! Quickstart: train a small BCPNN pipeline on synthetic Higgs collisions.
//!
//! This is the five-minute tour of the library: generate data, then let
//! the shared [`Pipeline::fit`] entry point do what the paper describes —
//! fit per-feature decile boundaries, one-hot encode, train the two-phase
//! network (unsupervised hidden layer, supervised readout) — and evaluate
//! accuracy and AUC on *raw* held-out features through the `Predictor`
//! trait. The same fitted pipeline object is what `bcpnn-serve` publishes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bcpnn_backend::BackendKind;
use bcpnn_core::model::Predictor;
use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::split::stratified_split;

fn main() {
    // 1. Data: 12 000 synthetic collisions with the UCI HIGGS schema.
    let collisions = generate(&SyntheticHiggsConfig {
        n_samples: 12_000,
        ..Default::default()
    });
    println!("dataset: {}", collisions.summary());
    let (train, test) = stratified_split(&collisions, 0.25, 7);

    // 2 + 3 + 4. Preprocessing (§V: decile binning + one-hot encoding),
    //    model (one hypercolumn of 300 minicolumns looking at 40% of the
    //    input, hybrid BCPNN + SGD readout), and two-phase training — all
    //    through the one fit → predict pipeline entry point. The encoder
    //    fixes the input width, so the builder doesn't need `.input()`.
    let (pipeline, report) = Pipeline::fit(
        &train,
        10,
        Network::builder()
            .hidden(1, 300, 0.40)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(42),
        TrainingParams {
            unsupervised_epochs: 3,
            supervised_epochs: 8,
            batch_size: 128,
            seed: 42,
            shuffle: true,
        },
    )
    .expect("valid configuration");
    println!(
        "encoded width: {} binary inputs",
        pipeline.network().hidden().params().n_inputs
    );
    println!(
        "trained {} epochs in {:.1}s",
        report.epochs.len(),
        report.train_time_seconds()
    );

    // 5. Evaluation on raw test features: accuracy + AUC for both heads,
    //    as in the paper. The hybrid head is the pipeline's default; the
    //    pure-BCPNN head is read off the same trained network.
    let hybrid = pipeline
        .evaluate(&test.features, &test.labels)
        .expect("evaluation succeeds");
    let pure = pipeline
        .network()
        .evaluate_with(
            ReadoutKind::Bcpnn,
            &pipeline.encode(&test.features).expect("schema matches"),
            &test.labels,
        )
        .expect("evaluation succeeds");
    println!("BCPNN readout : {pure}");
    println!("BCPNN + SGD   : {hybrid}");
    println!("(paper reference: 68.58% / 0.755 AUC pure, 69.15% / 0.764 AUC hybrid)");
}
