//! Full Higgs classification workflow with receptive-field inspection.
//!
//! The motivating use case of the paper: discriminate signal from
//! background collisions *and* learn something about the data stream from
//! the structure the network chooses. This example runs the complete
//! pipeline on a larger synthetic set (or on the real `HIGGS.csv` if you
//! pass its path), trains a 4-HCU network, prints the confusion matrix,
//! per-class precision/recall, and then renders where every hypercolumn
//! decided to look, grouped by physics feature.
//!
//! ```text
//! cargo run --release --example higgs_classification
//! cargo run --release --example higgs_classification -- /path/to/HIGGS.csv
//! ```

use bcpnn_backend::BackendKind;
use bcpnn_core::{metrics, Network, ReadoutKind, Trainer, TrainingParams};
use bcpnn_data::csv::load_higgs_csv;
use bcpnn_data::encode::QuantileEncoder;
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::split::{balanced_subset, stratified_split};
use bcpnn_data::Dataset;

fn load_data() -> Dataset {
    match std::env::args().nth(1) {
        Some(path) => {
            println!("loading real HIGGS data from {path} (first 200k rows)");
            load_higgs_csv(&path, Some(200_000)).expect("failed to read HIGGS.csv")
        }
        None => {
            println!("no CSV path given; generating synthetic Higgs collisions");
            generate(&SyntheticHiggsConfig {
                n_samples: 30_000,
                ..Default::default()
            })
        }
    }
}

fn main() {
    let collisions = load_data();
    println!("dataset: {}\n", collisions.summary());

    // Balanced subset + split, as in §V.
    let (train_pool, test_pool) = stratified_split(&collisions, 0.3, 11);
    let per_class_train = train_pool
        .class_counts()
        .into_iter()
        .min()
        .unwrap_or(0)
        .min(6_000);
    let per_class_test = test_pool
        .class_counts()
        .into_iter()
        .min()
        .unwrap_or(0)
        .min(3_000);
    let train = balanced_subset(&train_pool, per_class_train, 12);
    let test = balanced_subset(&test_pool, per_class_test, 13);

    let encoder = QuantileEncoder::fit(&train, 10);
    let x_train = encoder.transform(&train);
    let x_test = encoder.transform(&test);

    let mut network = Network::builder()
        .input(x_train.cols())
        .hidden(4, 300, 0.40)
        .classes(2)
        .readout(ReadoutKind::Hybrid)
        .backend(BackendKind::Parallel)
        .seed(2021)
        .build()
        .expect("valid configuration");
    let report = Trainer::new(TrainingParams {
        unsupervised_epochs: 4,
        supervised_epochs: 8,
        batch_size: 128,
        seed: 2021,
        shuffle: true,
    })
    .fit(&mut network, &x_train, &train.labels)
    .expect("training succeeds");
    println!(
        "trained in {:.1}s ({} structural-plasticity swaps)\n",
        report.train_time_seconds(),
        report.total_plasticity_swaps()
    );

    // Evaluation: the numbers the paper reports, plus the confusion matrix.
    let eval = network
        .evaluate(&x_test, &test.labels)
        .expect("evaluation succeeds");
    println!("test performance: {eval}");
    let predictions = network.predict(&x_test).expect("prediction succeeds");
    let cm = metrics::confusion_matrix(&predictions, &test.labels, 2);
    println!("confusion matrix (rows = truth, cols = prediction):");
    println!("              background  signal");
    println!("  background  {:>10}  {:>6}", cm[0][0], cm[0][1]);
    println!("  signal      {:>10}  {:>6}\n", cm[1][0], cm[1][1]);

    // Structural-plasticity inspection: where does each HCU look?
    let mask = network.hidden().receptive_field_snapshot();
    let n_bins = encoder.n_bins();
    for h in 0..mask.rows() {
        println!(
            "--- receptive field of HCU {h} (density {:.0}%) ---",
            network.hidden().mask().density() * 100.0
        );
        println!(
            "{}",
            bcpnn_viz::ascii::render_feature_mask(mask.row(h), &train.feature_names, n_bins)
        );
    }
    // Which physics features get the most attention across HCUs?
    let mut per_feature: Vec<(String, usize)> = train
        .feature_names
        .iter()
        .enumerate()
        .map(|(f, name)| {
            let count = (0..mask.rows())
                .map(|h| {
                    (0..n_bins)
                        .filter(|&b| mask.get(h, f * n_bins + b) == 1.0)
                        .count()
                })
                .sum();
            (name.clone(), count)
        })
        .collect();
    per_feature.sort_by_key(|entry| std::cmp::Reverse(entry.1));
    println!("most-attended physics features (active connections across all HCUs):");
    for (name, count) in per_feature.iter().take(8) {
        println!("  {name:<26} {count}");
    }
    println!("least-attended:");
    for (name, count) in per_feature.iter().rev().take(4) {
        println!("  {name:<26} {count}");
    }
}
