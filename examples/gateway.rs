//! Gateway walkthrough: the full HTTP lifecycle against a live gateway —
//! train, serve, predict over the wire, scrape metrics, hot-swap — using
//! the bundled HTTP client in place of curl, so the whole tour runs
//! offline in one process.
//!
//! ```sh
//! cargo run --release --example gateway
//! ```

use std::sync::Arc;

use bcpnn_backend::BackendKind;
use bcpnn_core::{Network, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_gateway::{client, Gateway, GatewayConfig};
use bcpnn_serve::{ModelRegistry, Pipeline, ServeTarget, ServedModel, ShardConfig, ShardedServer};

fn train(seed: u64) -> Pipeline {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 1500,
        seed,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(4, 8, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 2,
            batch_size: 128,
            ..Default::default()
        },
    )
    .expect("training succeeds");
    pipeline
}

fn main() {
    println!("== bcpnn-gateway example ==");
    println!("training v1 (served) and v2 (saved as a swap artifact)...");
    let v1 = train(1);
    let v2 = train(2);
    let artifact =
        std::env::temp_dir().join(format!("bcpnn-gateway-example-{}", std::process::id()));
    v2.save(&artifact).expect("artifact saves");

    // The serving stack: one registry, two shards, the gateway on an
    // ephemeral port.
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, v1));
    let server = Arc::new(ShardedServer::start(
        Arc::clone(&registry),
        ShardConfig::new(2),
    ));
    let gateway = Gateway::start(
        Arc::clone(&server) as Arc<dyn ServeTarget>,
        GatewayConfig::default(),
    )
    .expect("gateway binds");
    let addr = gateway.local_addr();
    println!("gateway listening on http://{addr}\n");

    // GET /healthz
    let health = client::request(addr, "GET", "/healthz", &[], b"").unwrap();
    println!("GET /healthz -> {} {}", health.status, health.body_str());
    assert_eq!(health.status, 200);

    // GET /v1/models
    let models = client::request(addr, "GET", "/v1/models", &[], b"").unwrap();
    println!("GET /v1/models -> {} {}", models.status, models.body_str());

    // POST /v1/models/higgs/predict with three rows and scheduling headers.
    let requests = generate(&SyntheticHiggsConfig {
        n_samples: 3,
        seed: 42,
        ..Default::default()
    });
    let rows: Vec<String> = requests
        .features
        .iter_rows()
        .map(|row| {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    let body = format!("[{}]", rows.join(","));
    let predict = client::request(
        addr,
        "POST",
        "/v1/models/higgs/predict",
        &[("X-Priority", "high"), ("X-Deadline-Ms", "1000")],
        body.as_bytes(),
    )
    .unwrap();
    println!(
        "POST /v1/models/higgs/predict ({} rows) -> {} {}",
        rows.len(),
        predict.status,
        predict.body_str()
    );
    assert_eq!(predict.status, 200);

    // PUT /v1/models/higgs: hot-swap to the saved v2 artifact.
    let swap_body = format!(
        "{{\"path\":\"{}\",\"version\":2,\"backend\":\"parallel\"}}",
        artifact.display()
    );
    let swap = client::request(addr, "PUT", "/v1/models/higgs", &[], swap_body.as_bytes()).unwrap();
    println!(
        "PUT /v1/models/higgs -> {} {}",
        swap.status,
        swap.body_str()
    );
    assert_eq!(swap.status, 200);

    // Error mapping on the wire: unknown model -> 404, ragged rows -> 400.
    let missing = client::request(addr, "POST", "/v1/models/ghost/predict", &[], b"[[1]]").unwrap();
    println!(
        "POST /v1/models/ghost/predict -> {} (unknown model)",
        missing.status
    );
    assert_eq!(missing.status, 404);
    let ragged = client::request(
        addr,
        "POST",
        "/v1/models/higgs/predict",
        &[],
        b"[[1,2],[3]]",
    )
    .unwrap();
    println!("POST ragged rows -> {} (malformed body)", ragged.status);
    assert_eq!(ragged.status, 400);

    // GET /metrics: the combined serving + gateway exposition.
    let scrape = client::request(addr, "GET", "/metrics", &[], b"").unwrap();
    let text = scrape.body_str();
    bcpnn_serve::validate_prometheus(&text).expect("scrape is a valid exposition");
    println!(
        "\nGET /metrics -> {} ({} bytes); highlights:",
        scrape.status,
        text.len()
    );
    for line in text.lines().filter(|l| {
        l.starts_with("bcpnn_serve_requests_total")
            || l.starts_with("bcpnn_serve_queue_depth")
            || l.starts_with("bcpnn_gateway_requests_total")
            || l.starts_with("bcpnn_gateway_responses_total")
    }) {
        println!("  {line}");
    }

    let _ = std::fs::remove_dir_all(&artifact);
    println!(
        "\nOK: gateway walkthrough complete (served v{} after hot-swap)",
        registry.lookup("higgs").map(|m| m.version()).unwrap_or(0)
    );
}
