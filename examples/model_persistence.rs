//! Model persistence: train, save, reload, keep classifying.
//!
//! A trained BCPNN network is fully described by its probability traces and
//! receptive-field masks (weights are derived quantities), so models are
//! saved as a small directory of text matrices plus a manifest. This
//! example trains a network, saves it, reloads it on the *naive* backend
//! (backend choice is runtime configuration, not model state), verifies the
//! predictions agree, and continues training the reloaded model.
//!
//! ```text
//! cargo run --release --example model_persistence
//! ```

use bcpnn_backend::BackendKind;
use bcpnn_core::{load_network, save_network, Network, ReadoutKind, Trainer, TrainingParams};
use bcpnn_data::encode::QuantileEncoder;
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::split::stratified_split;

fn main() {
    let collisions = generate(&SyntheticHiggsConfig {
        n_samples: 8_000,
        ..Default::default()
    });
    let (train, test) = stratified_split(&collisions, 0.25, 21);
    let encoder = QuantileEncoder::fit(&train, 10);
    let x_train = encoder.transform(&train);
    let x_test = encoder.transform(&test);

    let mut network = Network::builder()
        .input(x_train.cols())
        .hidden(2, 150, 0.40)
        .classes(2)
        .readout(ReadoutKind::Hybrid)
        .backend(BackendKind::Parallel)
        .seed(100)
        .build()
        .expect("valid configuration");
    let trainer = Trainer::new(TrainingParams {
        unsupervised_epochs: 3,
        supervised_epochs: 6,
        batch_size: 128,
        seed: 101,
        shuffle: true,
    });
    trainer
        .fit(&mut network, &x_train, &train.labels)
        .expect("training succeeds");
    let before = network
        .evaluate(&x_test, &test.labels)
        .expect("evaluation succeeds");
    println!("freshly trained model : {before}");

    // Save and reload (on a different backend, to show the two are
    // interchangeable at the model level).
    let dir = std::env::temp_dir().join("bcpnn_model_persistence_example");
    save_network(&network, &dir).expect("saving succeeds");
    let n_files = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    println!("saved to {} ({n_files} files)", dir.display());
    let mut reloaded = load_network(&dir, BackendKind::Naive).expect("loading succeeds");
    let after = reloaded
        .evaluate(&x_test, &test.labels)
        .expect("evaluation succeeds");
    println!("reloaded model        : {after}");
    let drift = (before.accuracy - after.accuracy).abs();
    assert!(drift < 1e-9, "reloaded model must predict identically");

    // Continue training the reloaded model (incremental learning is one of
    // the brain-inspired properties the paper highlights: no need to start
    // over when new collisions arrive).
    trainer
        .fit(&mut reloaded, &x_train, &train.labels)
        .expect("continued training succeeds");
    let continued = reloaded
        .evaluate(&x_test, &test.labels)
        .expect("evaluation succeeds");
    println!("after more training   : {continued}");

    std::fs::remove_dir_all(&dir).ok();
}
