//! Hyperparameter search with the Ax/Nevergrad stand-in (paper §IV).
//!
//! BCPNN exposes more use-case-dependent hyperparameters than a plain
//! backprop model; the paper tunes them with Ax + Nevergrad. This example
//! searches a reduced space (receptive field, trace rate, support noise)
//! with the (1 + λ) evolution strategy from `bcpnn-hyperopt`, using
//! validation accuracy on a small synthetic Higgs subset as the objective,
//! and prints the convergence curve.
//!
//! ```text
//! cargo run --release --example hyperparameter_search
//! ```

use bcpnn_backend::BackendKind;
use bcpnn_core::{Network, ReadoutKind, Trainer, TrainingParams};
use bcpnn_data::encode::QuantileEncoder;
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::split::stratified_split;
use bcpnn_hyperopt::{EvolutionConfig, EvolutionSearch, ParamSet, ParamSpace};

fn main() {
    // A small, fixed data split keeps every objective evaluation cheap.
    let collisions = generate(&SyntheticHiggsConfig {
        n_samples: 6_000,
        ..Default::default()
    });
    let (train, valid) = stratified_split(&collisions, 0.3, 1);
    let encoder = QuantileEncoder::fit(&train, 10);
    let x_train = encoder.transform(&train);
    let x_valid = encoder.transform(&valid);

    let space = ParamSpace::new()
        .continuous("receptive_field", 0.05, 0.95)
        .log_continuous("trace_rate", 1e-3, 0.5)
        .continuous("support_noise", 0.0, 0.4);

    let objective = |params: &ParamSet| -> f64 {
        let mut hidden = bcpnn_core::HiddenLayerParams {
            n_inputs: x_train.cols(),
            n_hcu: 1,
            n_mcu: 100,
            receptive_field: params["receptive_field"].as_f64(),
            ..Default::default()
        };
        hidden.trace_rate = params["trace_rate"].as_f64() as f32;
        hidden.support_noise = params["support_noise"].as_f64() as f32;
        let mut network = Network::builder()
            .hidden_params(hidden)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(7)
            .build()
            .expect("valid configuration");
        Trainer::new(TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 4,
            batch_size: 128,
            seed: 8,
            shuffle: true,
        })
        .fit(&mut network, &x_train, &train.labels)
        .expect("training succeeds");
        network
            .evaluate(&x_valid, &valid.labels)
            .expect("evaluation succeeds")
            .accuracy
    };

    println!(
        "searching {} dimensions with a (1+4) evolution strategy, budget 20 evaluations\n",
        3
    );
    let history = EvolutionSearch::new(
        space,
        EvolutionConfig {
            offspring: 4,
            mutation_rate: 0.5,
            seed: 9,
        },
    )
    .run(20, objective);

    println!("trial  accuracy  best-so-far");
    for (trial, best) in history.trials().iter().zip(history.best_so_far()) {
        println!(
            "{:>5}  {:>7.2}%  {:>10.2}%",
            trial.index,
            trial.score * 100.0,
            best * 100.0
        );
    }
    let best = history.best().expect("non-empty history");
    println!(
        "\nbest configuration: receptive_field {:.0}%, trace_rate {:.4}, support_noise {:.2} -> {:.2}%",
        best.params["receptive_field"].as_f64() * 100.0,
        best.params["trace_rate"].as_f64(),
        best.params["support_noise"].as_f64(),
        best.score * 100.0
    );
    println!(
        "(the paper's Fig. 4 finding — accuracy peaking around a 40% receptive field — typically \
         reappears as the search favouring mid-range densities)"
    );
}
