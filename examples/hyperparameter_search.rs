//! Hyperparameter search with the Ax/Nevergrad stand-in (paper §IV),
//! through the unified estimator API.
//!
//! BCPNN exposes more use-case-dependent hyperparameters than a plain
//! backprop model; the paper tunes them with Ax + Nevergrad. This example
//! searches with the (1 + λ) evolution strategy from `bcpnn-hyperopt` —
//! but instead of hand-wiring an objective, it hands the search an
//! [`Estimator`] *factory*: each sampled parameter set becomes a
//! `PipelineEstimator`, so the **encoder's bin count searches right
//! alongside** the network's receptive field, trace rate and support
//! noise, and every candidate is fitted and scored on raw features by the
//! shared `fit → evaluate` path.
//!
//! ```text
//! cargo run --release --example hyperparameter_search
//! ```

use bcpnn_backend::BackendKind;
use bcpnn_core::model::{NetworkEstimator, PipelineEstimator};
use bcpnn_core::{HiddenLayerParams, Network, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::split::stratified_split;
use bcpnn_hyperopt::{search_estimator, EvalSplit, EvolutionConfig, EvolutionSearch, ParamSpace};

fn main() {
    // A small, fixed data split keeps every objective evaluation cheap.
    // The split holds *raw* features: encoding is part of each candidate.
    let collisions = generate(&SyntheticHiggsConfig {
        n_samples: 6_000,
        ..Default::default()
    });
    let (train, valid) = stratified_split(&collisions, 0.3, 1);
    let split = EvalSplit {
        x_train: &train.features,
        y_train: &train.labels,
        x_valid: &valid.features,
        y_valid: &valid.labels,
    };

    let space = ParamSpace::new()
        .integer("n_bins", 4, 16)
        .continuous("receptive_field", 0.05, 0.95)
        .log_continuous("trace_rate", 1e-3, 0.5)
        .continuous("support_noise", 0.0, 0.4);

    println!(
        "searching {} dimensions (incl. the encoder's n_bins) with a (1+4) evolution strategy, \
         budget 20 evaluations\n",
        space.len()
    );
    let history = search_estimator(
        &EvolutionSearch::new(
            space,
            EvolutionConfig {
                offspring: 4,
                mutation_rate: 0.5,
                seed: 9,
            },
        ),
        20,
        &split,
        |params| {
            let mut hidden = HiddenLayerParams {
                n_hcu: 1,
                n_mcu: 100,
                receptive_field: params["receptive_field"].as_f64(),
                ..Default::default()
            };
            hidden.trace_rate = params["trace_rate"].as_f64() as f32;
            hidden.support_noise = params["support_noise"].as_f64() as f32;
            Ok(PipelineEstimator::new(
                params["n_bins"].as_i64() as usize,
                NetworkEstimator::new(
                    Network::builder()
                        .hidden_params(hidden)
                        .classes(2)
                        .readout(ReadoutKind::Hybrid)
                        .backend(BackendKind::Parallel)
                        .seed(7),
                    TrainingParams {
                        unsupervised_epochs: 2,
                        supervised_epochs: 4,
                        batch_size: 128,
                        seed: 8,
                        shuffle: true,
                    },
                ),
            ))
        },
    );

    println!("trial  accuracy  best-so-far");
    for (trial, best) in history.trials().iter().zip(history.best_so_far()) {
        println!(
            "{:>5}  {:>7.2}%  {:>10.2}%",
            trial.index,
            trial.score * 100.0,
            best * 100.0
        );
    }
    let best = history.best().expect("non-empty history");
    println!(
        "\nbest configuration: n_bins {}, receptive_field {:.0}%, trace_rate {:.4}, \
         support_noise {:.2} -> {:.2}%",
        best.params["n_bins"].as_i64(),
        best.params["receptive_field"].as_f64() * 100.0,
        best.params["trace_rate"].as_f64(),
        best.params["support_noise"].as_f64(),
        best.score * 100.0
    );
    println!(
        "(the paper's Fig. 4 finding — accuracy peaking around a 40% receptive field — typically \
         reappears as the search favouring mid-range densities; decile-ish bin counts usually \
         hold their own, matching §V's choice of 10-quantiles)"
    );
}
