//! Receptive fields converging on informative pixels (the paper's Fig. 1).
//!
//! Fig. 1 of the paper illustrates structural plasticity on image data:
//! three HCUs start with random sparse receptive fields and gradually learn
//! to look at the informative centre of the images, with little overlap
//! between them. MNIST is not bundled here, so this example uses the
//! synthetic stroke-pattern digits from `bcpnn-data::digits`, trains three
//! HCUs, and renders the receptive fields as ASCII images after every
//! epoch so the convergence is visible in the terminal.
//!
//! ```text
//! cargo run --release --example receptive_fields
//! ```

use bcpnn_backend::BackendKind;
use bcpnn_core::{
    EpochStats, Network, ReadoutKind, Trainer, TrainingObserver, TrainingParams, TrainingPhase,
};
use bcpnn_data::digits::{generate, DigitsConfig};
use bcpnn_tensor::Matrix;

const SIZE: usize = 16;
const N_HCU: usize = 3;

/// Observer that prints the three receptive fields side by side per epoch.
struct FieldPrinter;

fn render_side_by_side(mask: &Matrix<f32>) -> String {
    // Each HCU's flat mask row reshaped to SIZE x SIZE; render side by side.
    let mut lines = vec![String::new(); SIZE];
    for h in 0..mask.rows() {
        for (row, line) in lines.iter_mut().enumerate() {
            if h > 0 {
                line.push_str("   ");
            }
            for col in 0..SIZE {
                let v = mask.get(h, row * SIZE + col);
                line.push(if v >= 0.5 { '#' } else { '.' });
            }
        }
    }
    lines.join("\n")
}

impl TrainingObserver for FieldPrinter {
    fn on_epoch_end(&mut self, network: &Network, stats: &EpochStats) {
        if stats.phase != TrainingPhase::Unsupervised {
            return;
        }
        let mask = network.hidden().receptive_field_snapshot();
        println!(
            "after epoch {} ({} plasticity swaps):",
            stats.epoch,
            stats.plasticity_swaps.unwrap_or(0)
        );
        println!("{}\n", render_side_by_side(&mask));
    }
}

fn main() {
    let digits = generate(&DigitsConfig {
        size: SIZE,
        n_samples: 3_000,
        dropout: 0.15,
        salt: 0.03,
        seed: 5,
    });
    println!("dataset: {}\n", digits.summary());

    let mut network = Network::builder()
        .input(SIZE * SIZE)
        .hidden(N_HCU, 10, 0.15) // 3 HCUs, 15% receptive field, as in Fig. 1
        .classes(digits.n_classes())
        .readout(ReadoutKind::Bcpnn)
        .backend(BackendKind::Parallel)
        .seed(3)
        .build()
        .expect("valid configuration");

    println!("initial random receptive fields (white = connected):");
    println!(
        "{}\n",
        render_side_by_side(&network.hidden().receptive_field_snapshot())
    );

    let mut printer = FieldPrinter;
    Trainer::new(TrainingParams {
        unsupervised_epochs: 8,
        supervised_epochs: 4,
        batch_size: 64,
        seed: 4,
        shuffle: true,
    })
    .fit_with_observers(
        &mut network,
        &digits.features,
        &digits.labels,
        &mut [&mut printer],
    )
    .expect("training succeeds");

    // How much of the final receptive fields sits in the informative centre
    // of the canvas (the strokes avoid the outer quarter of the image)?
    let mask = network.hidden().receptive_field_snapshot();
    let margin = SIZE / 4;
    let mut centre = 0usize;
    let mut total = 0usize;
    for h in 0..N_HCU {
        for row in 0..SIZE {
            for col in 0..SIZE {
                if mask.get(h, row * SIZE + col) == 1.0 {
                    total += 1;
                    if (margin..SIZE - margin).contains(&row)
                        && (margin..SIZE - margin).contains(&col)
                    {
                        centre += 1;
                    }
                }
            }
        }
    }
    println!(
        "final receptive fields: {centre}/{total} connections in the informative centre \
         ({:.0}% of the canvas area is centre)",
        100.0 * ((SIZE - 2 * margin) * (SIZE - 2 * margin)) as f64 / (SIZE * SIZE) as f64
    );
    // Pairwise overlap between the HCUs' fields (the paper points out the
    // fields end up complementary).
    for a in 0..N_HCU {
        for b in a + 1..N_HCU {
            println!(
                "overlap(HCU {a}, HCU {b}) = {:.2}",
                network.hidden().mask().overlap(a, b)
            );
        }
    }
    let eval = network
        .evaluate(&digits.features, &digits.labels)
        .expect("evaluation succeeds");
    println!(
        "training-set accuracy of the pattern classifier: {:.1}%",
        eval.accuracy * 100.0
    );
}
