//! Encoding ablation: one-hot quantiles vs. thermometer code vs. raw input.
//!
//! The paper encodes every feature as a one-hot vector over its decile bin
//! (§V). This example ablates that design choice on identical data: the
//! same BCPNN network is trained on (a) the paper's one-hot quantile code,
//! (b) a cumulative thermometer code of the same width, and (c) for
//! reference, a logistic-regression head on standardized raw features.
//!
//! ```text
//! cargo run --release --example encoding_ablation
//! ```

use bcpnn_backend::BackendKind;
use bcpnn_core::metrics::EvalReport;
use bcpnn_core::{Network, ReadoutKind, SgdClassifier, SgdParams, Trainer, TrainingParams};
use bcpnn_data::encode::{QuantileEncoder, Standardizer, ThermometerEncoder};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::split::stratified_split;
use bcpnn_tensor::Matrix;

fn train_bcpnn(
    x_train: &Matrix<f32>,
    y_train: &[usize],
    x_test: &Matrix<f32>,
    y_test: &[usize],
) -> EvalReport {
    let mut network = Network::builder()
        .input(x_train.cols())
        .hidden(1, 200, 0.40)
        .classes(2)
        .readout(ReadoutKind::Hybrid)
        .backend(BackendKind::Parallel)
        .seed(17)
        .build()
        .expect("valid configuration");
    Trainer::new(TrainingParams {
        unsupervised_epochs: 3,
        supervised_epochs: 6,
        batch_size: 128,
        seed: 18,
        shuffle: true,
    })
    .fit(&mut network, x_train, y_train)
    .expect("training succeeds");
    network
        .evaluate(x_test, y_test)
        .expect("evaluation succeeds")
}

fn main() {
    let collisions = generate(&SyntheticHiggsConfig {
        n_samples: 16_000,
        ..Default::default()
    });
    let (train, test) = stratified_split(&collisions, 0.25, 3);
    println!("train {} / test {}\n", train.n_samples(), test.n_samples());

    // (a) the paper's one-hot decile code
    let one_hot = QuantileEncoder::fit(&train, 10);
    let report_one_hot = train_bcpnn(
        &one_hot.transform(&train),
        &train.labels,
        &one_hot.transform(&test),
        &test.labels,
    );
    println!("BCPNN on one-hot quantile code   : {report_one_hot}");

    // (b) thermometer (cumulative) code of the same width
    let thermo = ThermometerEncoder::fit(&train, 10);
    let report_thermo = train_bcpnn(
        &thermo.transform(&train),
        &train.labels,
        &thermo.transform(&test),
        &test.labels,
    );
    println!("BCPNN on thermometer code        : {report_thermo}");

    // (c) reference: logistic regression on standardized raw features
    let std = Standardizer::fit(&train);
    let mut logreg = SgdClassifier::new(28, 2, SgdParams::default(), 19).expect("valid classifier");
    logreg
        .fit(&std.transform(&train), &train.labels, 20, 128, 20)
        .expect("training succeeds");
    let proba = logreg
        .predict_proba(&std.transform(&test))
        .expect("prediction succeeds");
    let report_raw = EvalReport::from_probabilities(&proba, &test.labels);
    println!("logistic regression on raw input : {report_raw}");

    println!(
        "\nTakeaway: the one-hot decile code is what lets a *single* BCPNN hypercolumn carve the \
         input into per-feature intervals; the thermometer code is denser and usually a little \
         worse for the same number of connections, and the raw-feature linear model shows how much \
         of the problem is linearly separable to begin with."
    );
}
