//! Serving walkthrough: train a model, save it as a self-contained
//! stage-tagged (v3) artifact with its encoder, load it into a registry,
//! and serve raw feature vectors through the micro-batching server —
//! including a hot-swap to a retrained version, sharded serving with a
//! per-model batch policy, priority/deadline requests, and a Prometheus
//! scrape.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::sync::Arc;
use std::time::Duration;

use bcpnn_backend::BackendKind;
use bcpnn_core::{Network, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_lowprec::{QuantPrecision, QuantizedPipeline};
use bcpnn_serve::{
    BatchConfig, InferenceServer, ModelRegistry, Pipeline, Priority, ServedModel, ShardConfig,
    ShardRouting, ShardedServer, SubmitOptions,
};

fn train(seed: u64) -> Pipeline {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 4000,
        seed,
        ..Default::default()
    });
    // The shared fit → (encoder + network) entry point from the core
    // model API; the encoder fixes the network's input width.
    let (pipeline, _report) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(4, 8, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 2,
            batch_size: 128,
            ..Default::default()
        },
    )
    .expect("training succeeds");
    pipeline
}

fn main() {
    // 1. Train and persist a self-contained serving artifact.
    let dir = std::env::temp_dir().join("bcpnn_serving_example");
    let _ = std::fs::remove_dir_all(&dir);
    train(1).save(&dir).expect("saving succeeds");
    let manifest = std::fs::read_to_string(dir.join("manifest.txt")).unwrap();
    println!("saved model artifact to {}:", dir.display());
    for line in manifest.lines().take(3) {
        println!("  {line}");
    }
    println!("  ... ({} manifest keys)", manifest.lines().count() - 1);

    // 2. Load it into a registry and start the micro-batching server.
    let registry = Arc::new(ModelRegistry::new());
    registry
        .load_and_publish("higgs", 1, &dir, BackendKind::Parallel)
        .expect("artifact loads");
    let server = InferenceServer::start(Arc::clone(&registry), BatchConfig::default());

    // 3. Serve raw 28-feature collision vectors.
    let requests = generate(&SyntheticHiggsConfig {
        n_samples: 64,
        seed: 99,
        ..Default::default()
    });
    let proba = server
        .predict("higgs", requests.features.row(0).to_vec())
        .expect("prediction succeeds");
    println!("\nP(background, signal) for one collision: {proba:?}");

    // 4. Hot-swap a retrained version; in-flight work is unaffected.
    let retrained = train(2);
    let quantized = QuantizedPipeline::quantize(&retrained, QuantPrecision::Int8)
        .expect("quantization succeeds");
    let (_, displaced) = registry.publish(ServedModel::new("higgs", 2, retrained));
    println!(
        "hot-swapped v{} -> v2; next prediction served by v{}",
        displaced.map(|m| m.version()).unwrap_or_default(),
        registry.get("higgs").unwrap().version()
    );
    let proba2 = server
        .predict("higgs", requests.features.row(0).to_vec())
        .expect("post-swap prediction succeeds");
    println!("same collision under v2: {proba2:?}");

    // 5. Quantized serving path: persist the int8 artifact, reload it, and
    //    publish it under its own name. A `QuantizedPipeline` is a
    //    `Predictor` like any other, so the same micro-batching server
    //    serves it — with 4x smaller weights and `f32` accumulation.
    let qdir = std::env::temp_dir().join("bcpnn_serving_example_int8");
    let _ = std::fs::remove_dir_all(&qdir);
    quantized.save(&qdir).expect("quantized artifact saves");
    let quantized = QuantizedPipeline::load(&qdir).expect("quantized artifact loads");
    let (narrow, wide) = quantized.weight_bytes();
    registry.publish(ServedModel::new("higgs-int8", 1, quantized));
    let qproba = server
        .predict("higgs-int8", requests.features.row(0).to_vec())
        .expect("quantized prediction succeeds");
    println!("\nsame collision, int8 weights ({narrow} B vs {wide} B f32): {qproba:?}");
    println!("\n{}", server.metrics());
    drop(server);

    // 6. Scale out: shard the model across 4 independent pools. Requests
    //    route by a stable hash of their feature vector; the per-model
    //    batch policy (small batches, short linger) overrides the
    //    server-wide defaults and can itself be hot-swapped.
    let policy = BatchConfig {
        max_batch: 16,
        max_wait: Duration::from_micros(500),
        workers: 1,
    };
    registry.publish(ServedModel::new("higgs", 3, train(3)).with_batch_policy(policy));
    let sharded = ShardedServer::start(
        Arc::clone(&registry),
        ShardConfig {
            shards: 4,
            batch: BatchConfig::default(),
            routing: ShardRouting::FeatureHash,
        },
    );
    let handles: Vec<_> = (0..requests.n_samples())
        .map(|r| {
            sharded
                .submit("higgs", requests.features.row(r).to_vec())
                .expect("submit succeeds")
        })
        .collect();
    for handle in handles {
        handle.wait().expect("sharded prediction succeeds");
    }
    println!(
        "\nserved {} collisions across 4 shards:",
        requests.n_samples()
    );
    for (i, m) in sharded.shard_metrics().iter().enumerate() {
        println!(
            "  shard {i}: {} requests, mean batch {:.2}",
            m.requests, m.mean_batch_size
        );
    }

    // 7. Priority and deadline options. A high-priority request drains
    //    ahead of normal traffic; an already-expired deadline fails with
    //    DeadlineExceeded before any forward-pass work is spent on it.
    let urgent = sharded
        .submit_with_options(
            "higgs",
            requests.features.row(1).to_vec(),
            SubmitOptions::new()
                .priority(Priority::High)
                .deadline(Duration::from_millis(250)),
        )
        .expect("submit succeeds")
        .wait()
        .expect("within deadline");
    println!("\nhigh-priority prediction: {urgent:?}");
    let expired = sharded
        .submit_with_options(
            "higgs",
            requests.features.row(2).to_vec(),
            SubmitOptions::new().deadline(Duration::ZERO),
        )
        .expect("submit succeeds")
        .wait();
    println!("zero-deadline request: {}", expired.unwrap_err());

    // 8. Prometheus scrape: aggregated samples first, then per-shard ones
    //    labeled shard="i".
    println!("\nprometheus exposition (first 12 lines):");
    for line in sharded.to_prometheus().lines().take(12) {
        println!("  {line}");
    }

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&qdir).ok();
}
