//! Serving walkthrough: train a model, save it as a self-contained (v2)
//! artifact with its encoder, load it into a registry, and serve raw
//! feature vectors through the micro-batching server — including a
//! hot-swap to a retrained version.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::sync::Arc;

use bcpnn_backend::BackendKind;
use bcpnn_core::{Network, ReadoutKind, Trainer, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::QuantileEncoder;
use bcpnn_serve::{BatchConfig, InferenceServer, ModelRegistry, Pipeline, ServedModel};

fn train(seed: u64) -> Pipeline {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 4000,
        seed,
        ..Default::default()
    });
    let encoder = QuantileEncoder::fit(&data, 10);
    let x = encoder.transform(&data);
    let mut network = Network::builder()
        .input(encoder.encoded_width())
        .hidden(4, 8, 0.4)
        .classes(2)
        .readout(ReadoutKind::Hybrid)
        .backend(BackendKind::Parallel)
        .seed(seed)
        .build()
        .expect("valid configuration");
    Trainer::new(TrainingParams {
        unsupervised_epochs: 2,
        supervised_epochs: 2,
        batch_size: 128,
        ..Default::default()
    })
    .fit(&mut network, &x, &data.labels)
    .expect("training succeeds");
    Pipeline::new(network, Some(encoder)).expect("encoder matches network")
}

fn main() {
    // 1. Train and persist a self-contained serving artifact.
    let dir = std::env::temp_dir().join("bcpnn_serving_example");
    let _ = std::fs::remove_dir_all(&dir);
    train(1).save(&dir).expect("saving succeeds");
    let manifest = std::fs::read_to_string(dir.join("manifest.txt")).unwrap();
    println!("saved model artifact to {}:", dir.display());
    for line in manifest.lines().take(3) {
        println!("  {line}");
    }
    println!("  ... ({} manifest keys)", manifest.lines().count() - 1);

    // 2. Load it into a registry and start the micro-batching server.
    let registry = Arc::new(ModelRegistry::new());
    registry
        .load_and_publish("higgs", 1, &dir, BackendKind::Parallel)
        .expect("artifact loads");
    let server = InferenceServer::start(Arc::clone(&registry), BatchConfig::default());

    // 3. Serve raw 28-feature collision vectors.
    let requests = generate(&SyntheticHiggsConfig {
        n_samples: 64,
        seed: 99,
        ..Default::default()
    });
    let proba = server
        .predict("higgs", requests.features.row(0).to_vec())
        .expect("prediction succeeds");
    println!("\nP(background, signal) for one collision: {proba:?}");

    // 4. Hot-swap a retrained version; in-flight work is unaffected.
    let (_, displaced) = registry.publish(ServedModel::new("higgs", 2, train(2)));
    println!(
        "hot-swapped v{} -> v2; next prediction served by v{}",
        displaced.map(|m| m.version()).unwrap_or_default(),
        registry.get("higgs").unwrap().version()
    );
    let proba2 = server
        .predict("higgs", requests.features.row(0).to_vec())
        .expect("post-swap prediction succeeds");
    println!("same collision under v2: {proba2:?}");

    println!("\n{}", server.metrics());
    std::fs::remove_dir_all(&dir).ok();
}
