//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this replacement. It keeps the authoring surface of the real
//! crate (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, throughput
//! annotations) but implements a deliberately simple timer: each benchmark
//! runs a short warm-up, then a fixed number of timed samples whose median
//! per-iteration time (and derived throughput) is printed to stdout.
//!
//! When the `BENCH_JSON` environment variable names a file, each benchmark
//! additionally appends one JSON line (`{"name", "ns_per_iter", and
//! optionally "elems_per_sec" or "bytes_per_sec"}`) to it. Append mode means
//! several bench binaries can share one file; the `bench_compare` tool in
//! `bcpnn-bench` turns the JSONL into a canonical machine-readable report
//! and diffs it against a committed baseline in CI.

use std::fmt::{self, Display};
use std::io::Write;
use std::time::{Duration, Instant};

/// Per-benchmark timing driver handed to the closures.
pub struct Bencher {
    /// Median nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Time the closure: warm up, then run timed batches and record the
    /// median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~20 ms have elapsed to settle caches and size
        // the batch so one timed sample lasts ~10 ms.
        let warmup_deadline = Instant::now() + Duration::from_millis(20);
        let mut warmup_iters: u64 = 0;
        let warmup_start = Instant::now();
        while Instant::now() < warmup_deadline {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        let batch = ((0.010 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        const SAMPLES: usize = 9;
        let mut samples = [0.0f64; SAMPLES];
        for sample in &mut samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            *sample = start.elapsed().as_secs_f64() / batch as f64;
        }
        samples.sort_by(f64::total_cmp);
        self.last_ns_per_iter = samples[SAMPLES / 2] * 1e9;
    }

    /// Time `routine` on fresh inputs produced by `setup`; only the routine
    /// is measured. The stand-in runs setup before every timed call, so the
    /// `BatchSize` hint is accepted but unused.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        const SAMPLES: usize = 9;
        // Warm-up.
        for _ in 0..3 {
            std::hint::black_box(routine(setup()));
        }
        let mut samples = [0.0f64; SAMPLES];
        for sample in &mut samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            *sample = start.elapsed().as_secs_f64();
        }
        samples.sort_by(f64::total_cmp);
        self.last_ns_per_iter = samples[SAMPLES / 2] * 1e9;
    }
}

/// How much input `iter_batched` materialises per batch (accepted for API
/// compatibility; the stand-in always runs setup once per measured call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark (subset of `criterion::Throughput`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples (accepted for API compatibility; the stand-in's
    /// sample count is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Target measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Record the per-iteration throughput used when reporting rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.throughput, |b| f(b));
        self
    }

    /// Benchmark a closure that receives `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&full, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Substring filters from the command line: the positional (non-flag)
/// arguments, mirroring the real crate's `cargo bench -- <substring>`
/// behaviour. Flags (`--bench`, `--nocapture`, …) are ignored so the
/// harness arguments cargo forwards never act as filters.
fn cli_filters() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|arg| !arg.starts_with('-'))
        .collect()
}

/// Does `name` survive the filters? No filters means run everything.
fn matches_filters(name: &str, filters: &[String]) -> bool {
    filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
}

/// Benchmark harness entry point (subset of `criterion::Criterion`).
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filters: cli_filters(),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.to_string();
        self.run_one(&full, None, |b| f(b));
        self
    }

    fn run_one(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if !matches_filters(name, &self.filters) {
            return;
        }
        let mut bencher = Bencher {
            last_ns_per_iter: f64::NAN,
        };
        f(&mut bencher);
        let ns = bencher.last_ns_per_iter;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.3} Melem/s)", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.3} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!("{name:<60} {:>12.1} ns/iter{rate}", ns);
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                emit_json_line(&path, name, ns, throughput);
            }
        }
    }
}

/// Append one benchmark result as a JSON line to `path`. Best-effort: a
/// write failure must not fail the bench run, so errors are reported on
/// stderr and otherwise ignored.
fn emit_json_line(path: &str, name: &str, ns: f64, throughput: Option<Throughput>) {
    if !ns.is_finite() || ns <= 0.0 {
        eprintln!("BENCH_JSON: skipping {name:?}: non-finite timing {ns}");
        return;
    }
    // `name` is built from bench group/function identifiers; escape the two
    // characters that could break the JSON string anyway.
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect();
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(",\"elems_per_sec\":{:.3}", n as f64 / ns * 1e9)
        }
        Some(Throughput::Bytes(n)) => {
            format!(",\"bytes_per_sec\":{:.3}", n as f64 / ns * 1e9)
        }
        None => String::new(),
    };
    let line = format!("{{\"name\":\"{escaped}\",\"ns_per_iter\":{ns:.3}{rate}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("BENCH_JSON: could not append to {path}: {e}");
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// Define a group of benchmark functions (subset of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark binary's `main` (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.throughput(Throughput::Elements(128));
        group.bench_function("sum", |b| {
            b.iter(|| (0..128u64).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn substring_filters_select_benchmarks() {
        let filters = vec!["serve_cascade".to_string(), "gemm/".to_string()];
        assert!(matches_filters("serve_cascade/cascade/256", &filters));
        assert!(matches_filters("gemm/128", &filters));
        assert!(!matches_filters("serve_roundtrip/burst_64", &filters));
        // No filters runs everything.
        assert!(matches_filters("anything", &[]));
        // Filters apply at the harness level, not just group names.
        let mut c = Criterion {
            filters: vec!["kept".to_string()],
        };
        let mut ran = Vec::new();
        c.bench_function("kept/one", |b| {
            b.iter(|| 1u64 + 1);
        });
        c.run_one("dropped/one", None, |_| {
            ran.push("dropped");
            unreachable!("filtered benchmarks must not execute");
        });
        assert!(ran.is_empty());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn emit_json_line_appends_parseable_records() {
        let path = std::env::temp_dir().join(format!(
            "criterion_shim_bench_json_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let p = path.to_str().unwrap();
        emit_json_line(p, "group/naive", 125.0, Some(Throughput::Elements(250)));
        emit_json_line(p, "weird\"name\\", 1e6, None);
        emit_json_line(p, "skipped", f64::NAN, None); // must not be written
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "NaN timing must be skipped: {text}");
        assert_eq!(
            lines[0],
            "{\"name\":\"group/naive\",\"ns_per_iter\":125.000,\"elems_per_sec\":2000000000.000}"
        );
        assert_eq!(
            lines[1],
            "{\"name\":\"weird\\\"name\\\\\",\"ns_per_iter\":1000000.000}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
