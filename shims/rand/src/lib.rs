//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses (`StdRng`, `SeedableRng`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this deterministic replacement. `StdRng` is a xoshiro256**
//! generator seeded through SplitMix64; it does not match upstream `rand`'s
//! stream bit-for-bit, but every consumer in this repository only relies on
//! *reproducibility under a fixed seed*, which this provides.

pub mod rngs;
pub mod seq;
mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// A type that can be seeded from a `u64` (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct the generator from a single 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from an RNG's raw output
/// (stand-in for `rand::distributions::Standard`).
pub trait Standard {
    /// Draw one value from `rng`.
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for bool {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The random-number-generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample a value of type `T` (like `rand`'s `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
            let i: usize = r.gen_range(0..7);
            assert!(i < 7);
            let j: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut r = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
