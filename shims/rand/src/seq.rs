//! Slice helpers (subset of `rand::seq`).

use crate::Rng;

/// In-place random reordering of slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Fisher–Yates shuffle of the whole slice.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j: usize = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
