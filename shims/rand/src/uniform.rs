//! Uniform range sampling (subset of `rand::distributions::uniform`).

use std::ops::{Range, RangeInclusive};

use crate::Rng;

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let extra = i128::from(inclusive);
                let width = (hi as i128 - lo as i128 + extra) as u128;
                assert!(width > 0, "cannot sample from an empty range");
                // Two raw draws give 128 uniform bits; the modulo bias over a
                // <= 2^64 width is at most 2^-64, far below anything the
                // statistical assertions in this workspace can observe.
                let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (lo as i128 + (raw % width) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample from an empty range"
                );
                let frac = rng.next_f64() as $t;
                lo + frac * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges a uniform value can be drawn from (subset of `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}
