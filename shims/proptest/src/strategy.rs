//! The [`Strategy`] trait and combinators (subset of `proptest::strategy`).

use std::ops::{Range, RangeInclusive};

use rand::{Rng, SampleUniform};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no shrink tree: `generate` directly
/// produces a value from the RNG.
pub trait Strategy {
    /// Type of value the strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discard generated values failing the predicate (regenerating instead
    /// of shrinking; gives up after many consecutive rejections).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.inner.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive generated values",
            self.whence
        );
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Strategy that always yields clones of one value (subset of `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
