//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this replacement. It keeps the authoring surface the test files
//! use — the `proptest!` macro with `#![proptest_config]`, range and tuple
//! strategies, `prop::collection::vec`, `prop::bool::ANY`, `prop_map` /
//! `prop_flat_map`, and the `prop_assert*` macros — but not shrinking:
//! a failing case panics with the case index and seed so it can be replayed
//! by setting `PROPTEST_SEED`.

pub mod collection;
pub mod prelude;
pub mod strategy;

/// Strategy namespace mirroring `proptest::prop` usage (`prop::collection`,
/// `prop::bool`).
pub mod prop {
    pub use crate::collection;

    /// Numeric strategies covering special values (subset of `proptest::num`).
    pub mod num {
        /// `f32` strategies.
        pub mod f32 {
            use crate::strategy::Strategy;
            use crate::test_runner::TestRng;
            use rand::Rng;

            /// Strategy producing arbitrary `f32` bit patterns (may include
            /// infinities and NaN, like the real `ANY`).
            #[derive(Debug, Clone, Copy)]
            pub struct AnyF32;

            /// Any `f32` bit pattern.
            pub const ANY: AnyF32 = AnyF32;

            impl Strategy for AnyF32 {
                type Value = f32;

                fn generate(&self, rng: &mut TestRng) -> f32 {
                    f32::from_bits(rng.gen::<u32>())
                }
            }

            /// Strategy producing normal (non-zero, non-subnormal, finite)
            /// `f32` values of either sign.
            #[derive(Debug, Clone, Copy)]
            pub struct NormalF32;

            /// Normal `f32` values.
            pub const NORMAL: NormalF32 = NormalF32;

            impl Strategy for NormalF32 {
                type Value = f32;

                fn generate(&self, rng: &mut TestRng) -> f32 {
                    let sign = u32::from(rng.gen_bool(0.5)) << 31;
                    let exponent: u32 = rng.gen_range(1u32..255);
                    let mantissa: u32 = rng.gen::<u32>() >> 9;
                    f32::from_bits(sign | (exponent << 23) | mantissa)
                }
            }
        }
    }

    /// Boolean strategies (subset of `proptest::bool`).
    pub mod bool {
        /// Strategy producing uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolStrategy;

        /// The canonical boolean strategy.
        pub const ANY: BoolStrategy = BoolStrategy;

        impl crate::strategy::Strategy for BoolStrategy {
            type Value = bool;

            fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
                use rand::Rng;
                rng.gen_bool(0.5)
            }
        }
    }
}

/// Test-runner types (subset of `proptest::test_runner`).
pub mod test_runner {
    /// The RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// Per-test configuration (subset of `proptest::test_runner::ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

pub use test_runner::ProptestConfig;

#[doc(hidden)]
pub mod __support {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Base seed for a property: `PROPTEST_SEED` when set (for replaying a
    /// reported failure), otherwise a stable hash of the test's full path so
    /// every property explores a distinct but reproducible stream.
    pub fn seed_for(test_path: &str) -> u64 {
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(parsed) = seed.trim().parse::<u64>() {
                return parsed;
            }
        }
        // FNV-1a over the path.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_path.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// Define property tests (subset of the `proptest!` macro).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            let __seed = $crate::__support::seed_for(__path);
            let mut __rng = <$crate::__support::StdRng as $crate::__support::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__config.cases {
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let ($($pat,)+) = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+
                    );
                    $body
                }));
                if let Err(__payload) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of {} failed (replay with PROPTEST_SEED={})",
                        __case + 1,
                        __config.cases,
                        __path,
                        __seed,
                    );
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
    )*};
}

/// Assert inside a property (maps to `assert!` in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1usize..10).prop_flat_map(|n| (1usize..=n, prop::collection::vec(-1.0f64..1.0, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_obeys_size_and_bounds(v in prop::collection::vec(0.0f32..1.0, 5..40)) {
            prop_assert!(v.len() >= 5 && v.len() < 40);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn flat_map_links_dimensions((k, v) in pair()) {
            prop_assert!(k <= v.len());
        }

        #[test]
        fn bool_any_generates_both_values(b in prop::bool::ANY) {
            // Record the value; over 32 cases both sides show up with
            // probability 1 - 2^-31.
            prop_assert!(matches!(b, true | false));
        }

        #[test]
        fn map_transforms_values(s in (1usize..5).prop_map(|n| n * 10)) {
            prop_assert!(s % 10 == 0 && (10..50).contains(&s));
        }
    }
}
