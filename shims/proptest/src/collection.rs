//! Collection strategies (subset of `proptest::collection`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Admissible element counts for a collection strategy.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Create a strategy for vectors whose length lies in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min + 1 == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
