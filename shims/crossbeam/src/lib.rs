//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! the MPMC `channel` module with unbounded channels.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this replacement built on `std::sync` primitives. It keeps
//! crossbeam's semantics for the operations the thread pool and the serving
//! scheduler rely on: cloneable senders *and* receivers, FIFO delivery, and
//! disconnect detection when all handles on the other side are gone.

pub mod channel;
