//! Unbounded MPMC channels (subset of `crossbeam::channel`).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        // Consumers never poison this lock on purpose; if a panic mid-push
        // ever does, the queue itself is still structurally intact.
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Error returned by [`Sender::send`] when every receiver is gone. Carries
/// the unsent message back to the caller, like crossbeam's `SendError`.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty, disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message available.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty, disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of an unbounded channel. Cloneable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel. Cloneable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message, failing only if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(SendError(value));
        }
        self.shared.lock().push_back(value);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: wake blocked receivers so they observe disconnect.
            let _guard = self.shared.lock();
            self.shared.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Dequeue a message, blocking until one arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.lock();
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .ready
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeue a message if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.lock();
        if let Some(value) = queue.pop_front() {
            return Ok(value);
        }
        if self.shared.senders.load(Ordering::SeqCst) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Dequeue a message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.lock();
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .ready
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_a_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        let handle = thread::spawn(move || rx.recv().unwrap());
        thread::sleep(Duration::from_millis(20));
        tx.send(7u32).unwrap();
        assert_eq!(handle.join().unwrap(), 7);
    }

    #[test]
    fn dropping_all_senders_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn dropping_all_receivers_fails_send() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn queued_messages_survive_sender_drop() {
        let (tx, rx) = unbounded();
        tx.send(1u32).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_reports_empty() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn multi_consumer_partitions_messages() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..200u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h1 = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        let h2 = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut all = h1.join().unwrap();
        all.extend(h2.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }
}
