//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! a non-poisoning `Mutex`, `RwLock`, and a `Condvar` with `wait_for`.
//!
//! Built on `std::sync`; poisoning is swallowed (parking_lot has no
//! poisoning), which matches how the thread pool and observers use these
//! types: state guarded by the locks stays structurally valid even if a
//! panic unwinds through a critical section.

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily take the std guard
    // out while the thread sleeps (std's wait API consumes the guard).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// A readers-writer lock whose guards are returned directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait_for(&mut started, Duration::from_millis(50));
            }
        });
        thread::sleep(Duration::from_millis(10));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        handle.join().unwrap();
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
