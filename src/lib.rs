//! # streambrain
//!
//! Facade crate of the StreamBrain-rs workspace, a Rust reproduction of
//! *"Higgs Boson Classification: Brain-inspired BCPNN Learning with
//! StreamBrain"* (Svedin et al., CLUSTER 2021) grown toward a
//! production-scale serving system.
//!
//! The real functionality lives in the `bcpnn-*` crates, re-exported here
//! so the workspace-level integration tests and examples have one import
//! root:
//!
//! * [`tensor`] — dense matrices, GEMM kernels, seeded RNG.
//! * [`parallel`] — thread pool and OpenMP-style loop sharing.
//! * [`backend`] — swappable naive / parallel BCPNN kernel backends.
//! * [`core`] — the BCPNN network, training loop, and persistence.
//! * [`data`] — synthetic Higgs data, quantile one-hot encoding, splits.
//! * [`hyperopt`] — random and evolutionary hyperparameter search.
//! * [`lowprec`] — posit/bfloat16/fixed-point precision ablations.
//! * [`viz`] — receptive-field and in-situ visualization.
//! * [`serve`] — micro-batched inference serving with model hot-swap.

pub use bcpnn_backend as backend;
pub use bcpnn_core as core;
pub use bcpnn_data as data;
pub use bcpnn_hyperopt as hyperopt;
pub use bcpnn_lowprec as lowprec;
pub use bcpnn_parallel as parallel;
pub use bcpnn_serve as serve;
pub use bcpnn_tensor as tensor;
pub use bcpnn_viz as viz;
