//! Floating-point scalar abstraction so the dense kernels work for both
//! `f32` (what the StreamBrain GPU backend uses) and `f64` (useful for
//! reference computations and metrics).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable by the dense linear-algebra kernels.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Smallest positive value used as a probability floor in the BCPNN
    /// learning rule (avoids `log(0)`).
    const TINY: Self;

    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Lossy conversion from `usize`.
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Power with a real exponent.
    fn powf(self, e: Self) -> Self;
    /// Maximum of two values (NaN-ignoring like `f32::max`).
    fn max(self, other: Self) -> Self;
    /// Minimum of two values (NaN-ignoring like `f32::min`).
    fn min(self, other: Self) -> Self;
    /// Whether the value is finite (not NaN or ±inf).
    fn is_finite(self) -> bool;
    /// Machine epsilon for the type.
    fn epsilon() -> Self;
}

macro_rules! impl_scalar {
    ($t:ty, $tiny:expr) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TINY: Self = $tiny;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn powf(self, e: Self) -> Self {
                <$t>::powf(self, e)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }
        }
    };
}

impl_scalar!(f32, 1e-8);
impl_scalar!(f64, 1e-12);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<S: Scalar>() {
        assert_eq!(S::from_f64(0.0), S::ZERO);
        assert_eq!(S::from_f64(1.0), S::ONE);
        assert!((S::from_f64(2.5).to_f64() - 2.5).abs() < 1e-6);
        assert!(S::TINY.to_f64() > 0.0);
        assert!(S::ONE.exp().to_f64() > 2.7);
        assert!((S::ONE.ln()).to_f64().abs() < 1e-12);
        assert!((S::from_f64(4.0).sqrt().to_f64() - 2.0).abs() < 1e-6);
        assert_eq!(S::from_f64(-3.0).abs(), S::from_f64(3.0));
        assert_eq!(S::from_f64(2.0).max(S::from_f64(3.0)), S::from_f64(3.0));
        assert_eq!(S::from_f64(2.0).min(S::from_f64(3.0)), S::from_f64(2.0));
        assert!(S::ONE.is_finite());
        assert!(!(S::ONE / S::ZERO).is_finite());
        assert_eq!(S::from_usize(7), S::from_f64(7.0));
        assert!((S::from_f64(2.0).powf(S::from_f64(3.0)).to_f64() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn f32_scalar_roundtrip() {
        roundtrip::<f32>();
    }

    #[test]
    fn f64_scalar_roundtrip() {
        roundtrip::<f64>();
    }
}
