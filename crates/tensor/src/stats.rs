//! Scalar statistics used by the preprocessing pipeline (quantile binning)
//! and by the experiment harness (mean/std of repeated runs).

/// Mean of a slice of `f64` (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (unbiased, n-1 denominator); 0 when fewer than
/// two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Minimum (NaN-free input assumed); `None` for an empty slice.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum (NaN-free input assumed); `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// The `q`-quantile (0 ≤ q ≤ 1) of the data using linear interpolation
/// between order statistics (the same convention as `numpy.quantile`).
///
/// # Panics
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile q must be in [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_of_sorted(&sorted, q)
}

/// Same as [`quantile`] but assumes the input is already sorted ascending.
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile q must be in [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The `k`-quantile cut points dividing the data into `k` groups of roughly
/// equal mass: returns `k - 1` interior boundaries (e.g. `k = 10` gives the
/// nine decile boundaries the paper uses for the Higgs features).
///
/// # Panics
/// Panics if `xs` is empty or `k < 2`.
pub fn quantile_boundaries(xs: &[f64], k: usize) -> Vec<f64> {
    assert!(k >= 2, "need at least 2 quantile groups");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    (1..k)
        .map(|i| quantile_of_sorted(&sorted, i as f64 / k as f64))
        .collect()
}

/// Index of the bin (0-based, `boundaries.len()` bins + 1) that `x` falls
/// into given ascending interior boundaries: bin `i` is
/// `(boundaries[i-1], boundaries[i]]`, with the first bin open below and the
/// last open above.
pub fn bin_index(boundaries: &[f64], x: f64) -> usize {
    // First boundary that is >= x gives the bin; equivalently count
    // boundaries strictly less than x.
    boundaries.iter().filter(|&&b| x > b).count()
}

/// Pearson correlation between two equally long slices (0 if degenerate).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Histogram of the data into `bins` equal-width bins over `[lo, hi]`.
/// Values outside the range are clamped into the first/last bin.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram range must be non-empty");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let mut b = ((x - lo) / width).floor() as isize;
        b = b.clamp(0, bins as isize - 1);
        counts[b as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935299395).abs() < 1e-9);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(7.0));
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile(&[5.0], 0.7), 5.0);
    }

    #[test]
    fn decile_boundaries_split_evenly() {
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let b = quantile_boundaries(&xs, 10);
        assert_eq!(b.len(), 9);
        // Counts per bin should be ~1000 each.
        let mut counts = vec![0usize; 10];
        for &x in &xs {
            counts[bin_index(&b, x)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 1000).abs() <= 10, "bin count {c}");
        }
    }

    #[test]
    fn bin_index_edges() {
        let b = vec![1.0, 2.0, 3.0];
        assert_eq!(bin_index(&b, 0.5), 0);
        assert_eq!(bin_index(&b, 1.0), 0, "boundary values stay in lower bin");
        assert_eq!(bin_index(&b, 1.5), 1);
        assert_eq!(bin_index(&b, 2.5), 2);
        assert_eq!(bin_index(&b, 99.0), 3);
    }

    #[test]
    fn pearson_correlation() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn histogram_counts_everything() {
        let xs = [0.1, 0.2, 0.5, 0.9, 1.5, -0.3];
        let h = histogram(&xs, 0.0, 1.0, 4);
        assert_eq!(h.iter().sum::<usize>(), xs.len());
        assert_eq!(h[0], 3, "includes the clamped -0.3 and 0.1, 0.2");
        assert_eq!(h[3], 2, "includes the clamped 1.5 and 0.9");
    }

    #[test]
    #[should_panic(expected = "quantile of empty slice")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }
}
