//! Dense row-major matrix type used throughout StreamBrain-rs.

use crate::scalar::Scalar;

/// A dense, row-major matrix.
///
/// The storage layout is `data[r * cols + c]`, matching the layout NumPy and
/// StreamBrain use for activations (`batch x units`) and weights
/// (`inputs x units`), so all GEMM calls in the BCPNN kernels are plain
/// row-major products without transposition copies.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<S: Scalar = f32> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Default for Matrix<S> {
    /// An empty `0 x 0` matrix with no backing allocation — what
    /// `std::mem::take` leaves behind while a workspace buffer is on loan.
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl<S: Scalar> Matrix<S> {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![S::ZERO; rows * cols],
        }
    }

    /// Create a matrix where every element is `value`.
    pub fn filled(rows: usize, cols: usize, value: S) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Create a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn<F: FnMut(usize, usize) -> S>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { S::ONE } else { S::ZERO })
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Number of elements the backing storage can hold without
    /// reallocating — the high-water mark [`Matrix::resize`] never shrinks.
    #[inline(always)]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Whether the matrix has zero elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    ///
    /// # Panics
    /// Panics (in debug builds via `debug_assert`, in release builds via the
    /// slice index) when out of bounds.
    #[inline(always)]
    pub fn get(&self, r: usize, c: usize) -> S {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) OOB");
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline(always)]
    pub fn set(&mut self, r: usize, c: usize, v: S) {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) OOB");
        self.data[r * self.cols + c] = v;
    }

    /// Add `v` to element `(r, c)`.
    #[inline(always)]
    pub fn add_at(&mut self, r: usize, c: usize, v: S) {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) OOB");
        self.data[r * self.cols + c] += v;
    }

    /// Immutable view of row `r`.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[S] {
        debug_assert!(r < self.rows, "row {r} OOB ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [S] {
        debug_assert!(r < self.rows, "row {r} OOB ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<S> {
        assert!(c < self.cols, "column {c} OOB ({} cols)", self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Whole storage as a flat row-major slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Whole storage as a flat mutable row-major slice.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consume the matrix and return its storage.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[S]> {
        self.data.chunks(self.cols.max(1)).take(self.rows)
    }

    /// Reshape in place to `rows x cols`, reusing the existing allocation.
    ///
    /// The backing storage grows on demand and its capacity never shrinks,
    /// which is what makes reusable scratch buffers (see
    /// `bcpnn_core::workspace`) allocation-free once warmed up. Element
    /// values after a resize are unspecified — call [`Matrix::fill`] or
    /// overwrite every element before reading. Use [`Matrix::reset`] when
    /// the kernel contract needs a zeroed buffer.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, S::ZERO);
    }

    /// Reshape in place to `rows x cols` and zero every element: the
    /// buffer-reusing equivalent of [`Matrix::zeros`].
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.resize(rows, cols);
        self.fill(S::ZERO);
    }

    /// Set every element to `value`.
    pub fn fill(&mut self, value: S) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Return the transposed matrix (allocates).
    pub fn transposed(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Apply `f` to every element, returning a new matrix.
    pub fn map<F: Fn(S) -> S>(&self, f: F) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace<F: Fn(S) -> S>(&mut self, f: F) {
        self.data.iter_mut().for_each(|v| *v = f(*v));
    }

    /// Extract the sub-matrix made of the listed rows (in the given order).
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = Self::zeros(0, 0);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// Copy the listed rows (in the given order) into `out`, resizing it to
    /// `indices.len() x cols`. The caller-provided-buffer twin of
    /// [`Matrix::select_rows`]: reusing `out` across epoch batches keeps the
    /// training loop off the allocator.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Self) {
        out.resize(indices.len(), self.cols);
        for (new_r, &r) in indices.iter().enumerate() {
            assert!(r < self.rows, "select_rows: row {r} OOB");
            out.row_mut(new_r).copy_from_slice(self.row(r));
        }
    }

    /// Extract the sub-matrix made of the listed columns (in the given order).
    pub fn select_cols(&self, indices: &[usize]) -> Self {
        for &c in indices {
            assert!(c < self.cols, "select_cols: column {c} OOB");
        }
        let mut out = Self::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (k, &c) in indices.iter().enumerate() {
                dst[k] = src[c];
            }
        }
        out
    }

    /// Stack two matrices vertically (`self` on top of `other`).
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "vstack: column counts differ");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Self {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Stack two matrices horizontally (`self` to the left of `other`).
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "hstack: row counts differ");
        let cols = self.cols + other.cols;
        let mut out = Self::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Convert the element type (e.g. `f32` → `f64`).
    pub fn cast<T: Scalar>(&self) -> Matrix<T> {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|v| T::from_f64(v.to_f64())).collect(),
        )
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute difference against another matrix of the same shape.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let m: Matrix<f32> = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        assert!(m.as_slice().iter().all(|&v| v == 0.0));

        let f = Matrix::<f64>::filled(2, 2, 7.0);
        assert!(f.as_slice().iter().all(|&v| v == 7.0));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::<f32>::from_vec(2, 3, vec![1.0; 5]);
    }

    #[test]
    fn get_set_row_col() {
        let mut m: Matrix<f32> = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.get(1, 2), 5.0);
        m.set(1, 2, 50.0);
        assert_eq!(m.get(1, 2), 50.0);
        m.add_at(1, 2, 1.0);
        assert_eq!(m.get(1, 2), 51.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.col(0), vec![0.0, 3.0, 6.0]);
    }

    #[test]
    fn identity_is_diagonal() {
        let id: Matrix<f64> = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(id.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let m: Matrix<f32> = Matrix::from_fn(2, 5, |r, c| (r * 10 + c) as f32);
        let t = m.transposed();
        assert_eq!(t.shape(), (5, 2));
        assert_eq!(t.get(3, 1), m.get(1, 3));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn map_and_map_inplace_agree() {
        let m: Matrix<f32> = Matrix::from_fn(4, 4, |r, c| (r + c) as f32);
        let doubled = m.map(|v| v * 2.0);
        let mut m2 = m.clone();
        m2.map_inplace(|v| v * 2.0);
        assert_eq!(doubled, m2);
    }

    #[test]
    fn select_rows_and_cols() {
        let m: Matrix<f32> = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
        let rsub = m.select_rows(&[2, 0]);
        assert_eq!(rsub.row(0), m.row(2));
        assert_eq!(rsub.row(1), m.row(0));
        let csub = m.select_cols(&[1]);
        assert_eq!(csub.shape(), (4, 1));
        assert_eq!(csub.col(0), m.col(1));
    }

    #[test]
    fn stacking() {
        let a: Matrix<f32> = Matrix::filled(2, 3, 1.0);
        let b: Matrix<f32> = Matrix::filled(1, 3, 2.0);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.get(2, 0), 2.0);

        let c: Matrix<f32> = Matrix::filled(2, 2, 3.0);
        let h = a.hstack(&c);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h.get(0, 4), 3.0);
    }

    #[test]
    #[should_panic(expected = "column counts differ")]
    fn vstack_rejects_mismatch() {
        let a: Matrix<f32> = Matrix::zeros(2, 3);
        let b: Matrix<f32> = Matrix::zeros(2, 4);
        let _ = a.vstack(&b);
    }

    #[test]
    fn cast_between_precisions() {
        let m: Matrix<f32> = Matrix::from_fn(2, 2, |r, c| (r + c) as f32 + 0.5);
        let d: Matrix<f64> = m.cast();
        assert_eq!(d.get(1, 1), 2.5);
        let back: Matrix<f32> = d.cast();
        assert_eq!(back, m);
    }

    #[test]
    fn finite_check_and_diff() {
        let mut m: Matrix<f32> = Matrix::zeros(2, 2);
        assert!(m.all_finite());
        assert_eq!(m.max_abs_diff(&m), 0.0);
        m.set(0, 0, f32::NAN);
        assert!(!m.all_finite());
    }

    #[test]
    fn iter_rows_yields_every_row() {
        let m: Matrix<f32> = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[4.0, 5.0]);
    }

    #[test]
    fn resize_reuses_capacity_and_reset_zeroes() {
        let mut m: Matrix<f32> = Matrix::filled(4, 4, 7.0);
        let cap = {
            m.resize(2, 3);
            assert_eq!(m.shape(), (2, 3));
            assert_eq!(m.len(), 6);
            m.data.capacity()
        };
        // Growing back within capacity keeps the allocation.
        m.resize(4, 4);
        assert_eq!(m.data.capacity(), cap);
        m.reset(3, 3);
        assert_eq!(m.shape(), (3, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(m.data.capacity(), cap, "reset must never shrink capacity");
    }

    #[test]
    fn select_rows_into_matches_select_rows() {
        let m: Matrix<f32> = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let mut out = Matrix::filled(9, 9, -1.0);
        m.select_rows_into(&[4, 1, 1], &mut out);
        assert_eq!(out, m.select_rows(&[4, 1, 1]));
        // Reuse with a different selection resizes and fully overwrites.
        m.select_rows_into(&[0], &mut out);
        assert_eq!(out.shape(), (1, 3));
        assert_eq!(out.row(0), m.row(0));
    }

    #[test]
    fn fill_overwrites_everything() {
        let mut m: Matrix<f64> = Matrix::from_fn(3, 3, |r, c| (r + c) as f64);
        m.fill(1.25);
        assert!(m.as_slice().iter().all(|&v| v == 1.25));
    }
}
