//! Element-wise matrix operations (parallelised over the flat storage).

use bcpnn_parallel::{par_chunks_mut, par_zip_chunks_mut};

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Chunk size used when splitting element-wise work across the pool.
const EW_CHUNK: usize = 16 * 1024;

/// `a += b`, element-wise.
///
/// # Panics
/// Panics if the shapes differ.
pub fn add_assign<S: Scalar>(a: &mut Matrix<S>, b: &Matrix<S>) {
    assert_eq!(a.shape(), b.shape(), "add_assign: shape mismatch");
    par_zip_chunks_mut(a.as_mut_slice(), b.as_slice(), EW_CHUNK, |_, ac, bc| {
        for (x, &y) in ac.iter_mut().zip(bc.iter()) {
            *x += y;
        }
    });
}

/// `a -= b`, element-wise.
///
/// # Panics
/// Panics if the shapes differ.
pub fn sub_assign<S: Scalar>(a: &mut Matrix<S>, b: &Matrix<S>) {
    assert_eq!(a.shape(), b.shape(), "sub_assign: shape mismatch");
    par_zip_chunks_mut(a.as_mut_slice(), b.as_slice(), EW_CHUNK, |_, ac, bc| {
        for (x, &y) in ac.iter_mut().zip(bc.iter()) {
            *x -= y;
        }
    });
}

/// `a *= b`, element-wise (Hadamard product in place).
///
/// # Panics
/// Panics if the shapes differ.
pub fn mul_assign<S: Scalar>(a: &mut Matrix<S>, b: &Matrix<S>) {
    assert_eq!(a.shape(), b.shape(), "mul_assign: shape mismatch");
    par_zip_chunks_mut(a.as_mut_slice(), b.as_slice(), EW_CHUNK, |_, ac, bc| {
        for (x, &y) in ac.iter_mut().zip(bc.iter()) {
            *x *= y;
        }
    });
}

/// `a = (1 - rate) * a + rate * b`: exponential moving average of a whole
/// matrix towards `b` (the batched probability-trace update).
///
/// # Panics
/// Panics if the shapes differ.
pub fn ema_assign<S: Scalar>(rate: S, a: &mut Matrix<S>, b: &Matrix<S>) {
    assert_eq!(a.shape(), b.shape(), "ema_assign: shape mismatch");
    let keep = S::ONE - rate;
    par_zip_chunks_mut(a.as_mut_slice(), b.as_slice(), EW_CHUNK, |_, ac, bc| {
        for (x, &y) in ac.iter_mut().zip(bc.iter()) {
            *x = keep * *x + rate * y;
        }
    });
}

/// Multiply every element by `alpha`.
pub fn scale<S: Scalar>(alpha: S, a: &mut Matrix<S>) {
    par_chunks_mut(a.as_mut_slice(), EW_CHUNK, |_, chunk| {
        for v in chunk.iter_mut() {
            *v *= alpha;
        }
    });
}

/// Add `alpha` to every element.
pub fn add_scalar<S: Scalar>(alpha: S, a: &mut Matrix<S>) {
    par_chunks_mut(a.as_mut_slice(), EW_CHUNK, |_, chunk| {
        for v in chunk.iter_mut() {
            *v += alpha;
        }
    });
}

/// Clamp every element to `[lo, hi]`.
pub fn clamp<S: Scalar>(a: &mut Matrix<S>, lo: S, hi: S) {
    assert!(lo <= hi, "clamp: lo must be <= hi");
    par_chunks_mut(a.as_mut_slice(), EW_CHUNK, |_, chunk| {
        for v in chunk.iter_mut() {
            *v = (*v).max(lo).min(hi);
        }
    });
}

/// Element-wise natural logarithm with a floor: `a = ln(max(a, floor))`.
///
/// The BCPNN weight formula takes logs of probability traces; flooring keeps
/// never-active units at a large negative (but finite) weight instead of
/// `-inf`, exactly as StreamBrain's `eps` parameter does.
pub fn ln_floored<S: Scalar>(a: &mut Matrix<S>, floor: S) {
    assert!(floor > S::ZERO, "ln_floored: floor must be positive");
    par_chunks_mut(a.as_mut_slice(), EW_CHUNK, |_, chunk| {
        for v in chunk.iter_mut() {
            *v = (*v).max(floor).ln();
        }
    });
}

/// Element-wise exponential.
pub fn exp<S: Scalar>(a: &mut Matrix<S>) {
    par_chunks_mut(a.as_mut_slice(), EW_CHUNK, |_, chunk| {
        for v in chunk.iter_mut() {
            *v = (*v).exp();
        }
    });
}

/// Out-of-place element-wise binary operation.
///
/// # Panics
/// Panics if the shapes differ.
pub fn zip_map<S: Scalar, F: Fn(S, S) -> S + Sync>(
    a: &Matrix<S>,
    b: &Matrix<S>,
    f: F,
) -> Matrix<S> {
    let mut out = Matrix::zeros(0, 0);
    zip_map_into(a, b, &mut out, f);
    out
}

/// Out-of-place element-wise binary operation written into a
/// caller-provided buffer (resized to `a`'s shape, every element
/// overwritten).
///
/// # Panics
/// Panics if the shapes of `a` and `b` differ.
pub fn zip_map_into<S: Scalar, F: Fn(S, S) -> S + Sync>(
    a: &Matrix<S>,
    b: &Matrix<S>,
    out: &mut Matrix<S>,
    f: F,
) {
    assert_eq!(a.shape(), b.shape(), "zip_map: shape mismatch");
    out.resize(a.rows(), a.cols());
    let (asl, bsl) = (a.as_slice(), b.as_slice());
    par_chunks_mut(out.as_mut_slice(), EW_CHUNK, |start, chunk| {
        for (k, o) in chunk.iter_mut().enumerate() {
            *o = f(asl[start + k], bsl[start + k]);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, f: impl FnMut(usize, usize) -> f32) -> Matrix<f32> {
        Matrix::from_fn(rows, cols, f)
    }

    #[test]
    fn add_sub_mul_assign() {
        let base = m(3, 4, |r, c| (r * 4 + c) as f32);
        let ones = Matrix::filled(3, 4, 1.0f32);
        let mut a = base.clone();
        add_assign(&mut a, &ones);
        assert_eq!(a.get(2, 3), base.get(2, 3) + 1.0);
        sub_assign(&mut a, &ones);
        assert_eq!(a, base);
        let mut b = base.clone();
        mul_assign(&mut b, &base);
        assert_eq!(b.get(1, 2), base.get(1, 2) * base.get(1, 2));
    }

    #[test]
    fn ema_assign_moves_towards_target() {
        let target = Matrix::filled(2, 2, 1.0f64);
        let mut tr = Matrix::zeros(2, 2);
        ema_assign(0.25, &mut tr, &target);
        assert!(tr.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-12));
        for _ in 0..200 {
            ema_assign(0.25, &mut tr, &target);
        }
        assert!(tr.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    fn scalar_ops() {
        let mut a = m(2, 2, |_, _| 2.0);
        scale(3.0, &mut a);
        assert!(a.as_slice().iter().all(|&v| v == 6.0));
        add_scalar(-1.0, &mut a);
        assert!(a.as_slice().iter().all(|&v| v == 5.0));
    }

    #[test]
    fn clamp_bounds_values() {
        let mut a = m(1, 5, |_, c| c as f32 - 2.0); // [-2,-1,0,1,2]
        clamp(&mut a, -1.0, 1.0);
        assert_eq!(a.as_slice(), &[-1.0, -1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "lo must be <= hi")]
    fn clamp_rejects_inverted_bounds() {
        let mut a = Matrix::<f32>::zeros(1, 1);
        clamp(&mut a, 1.0, -1.0);
    }

    #[test]
    fn ln_floored_never_produces_neg_inf() {
        let mut a = m(1, 3, |_, c| c as f32); // [0, 1, 2]
        ln_floored(&mut a, 1e-6);
        assert!(a.as_slice().iter().all(|v| v.is_finite()));
        assert!((a.get(0, 1)).abs() < 1e-6);
        assert!((a.get(0, 0) - (1e-6f32).ln()).abs() < 1e-3);
    }

    #[test]
    fn exp_then_ln_roundtrips() {
        let orig = m(2, 3, |r, c| (r + c) as f32 * 0.3 + 0.1);
        let mut a = orig.clone();
        exp(&mut a);
        ln_floored(&mut a, 1e-12);
        assert!(a.max_abs_diff(&orig) < 1e-5);
    }

    #[test]
    fn zip_map_applies_pairwise() {
        let a = m(2, 2, |r, c| (r + c) as f32);
        let b = Matrix::filled(2, 2, 10.0f32);
        let out = zip_map(&a, &b, |x, y| x * y + 1.0);
        assert_eq!(out.get(1, 1), 21.0);
        // The buffer-reusing twin produces the same result on a stale,
        // wrongly-shaped buffer.
        let mut reused = Matrix::filled(7, 1, -3.0);
        zip_map_into(&a, &b, &mut reused, |x, y| x * y + 1.0);
        assert_eq!(reused, out);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::<f32>::zeros(2, 2);
        let b = Matrix::<f32>::zeros(2, 3);
        let mut a2 = a.clone();
        add_assign(&mut a2, &b);
    }
}
