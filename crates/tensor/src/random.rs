//! Seeded random matrix/vector generation used for weight initialisation,
//! receptive-field masks, and the synthetic data generators.
//!
//! Everything goes through [`MatrixRng`], a thin wrapper over a ChaCha-based
//! `StdRng`, so every experiment in the repository is reproducible from a
//! single `u64` seed (the paper averages 10 repetitions per configuration;
//! the harness derives the 10 seeds deterministically from a base seed).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Seeded random generator for matrices and index collections.
#[derive(Debug, Clone)]
pub struct MatrixRng {
    rng: StdRng,
}

impl MatrixRng {
    /// Create a generator from an explicit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator (`label` distinguishes streams).
    pub fn child(&mut self, label: u64) -> Self {
        let s = self.rng.gen::<u64>() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seed_from(s)
    }

    /// Access the underlying `rand` RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_scalar<S: Scalar>(&mut self, lo: f64, hi: f64) -> S {
        S::from_f64(self.rng.gen_range(lo..hi))
    }

    /// Standard-normal sample via Box–Muller (avoids a rand_distr dependency).
    pub fn normal_scalar<S: Scalar>(&mut self, mean: f64, std: f64) -> S {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        S::from_f64(mean + std * z)
    }

    /// Exponential sample with the given rate parameter (`lambda > 0`).
    pub fn exponential_scalar<S: Scalar>(&mut self, lambda: f64) -> S {
        assert!(lambda > 0.0, "exponential rate must be positive");
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        S::from_f64(-u.ln() / lambda)
    }

    /// Matrix with i.i.d. uniform entries in `[lo, hi)`.
    pub fn uniform<S: Scalar>(&mut self, rows: usize, cols: usize, lo: f64, hi: f64) -> Matrix<S> {
        let mut m = Matrix::zeros(rows, cols);
        self.fill_uniform(&mut m, lo, hi);
        m
    }

    /// Overwrite every element of `m` with i.i.d. uniform samples in
    /// `[lo, hi)`. Draws the same sample stream as [`MatrixRng::uniform`]
    /// for the same shape, so the two are interchangeable bit-for-bit.
    pub fn fill_uniform<S: Scalar>(&mut self, m: &mut Matrix<S>, lo: f64, hi: f64) {
        for v in m.as_mut_slice() {
            *v = self.uniform_scalar(lo, hi);
        }
    }

    /// Matrix with i.i.d. normal entries.
    pub fn normal<S: Scalar>(
        &mut self,
        rows: usize,
        cols: usize,
        mean: f64,
        std: f64,
    ) -> Matrix<S> {
        let mut m = Matrix::zeros(rows, cols);
        self.fill_normal(&mut m, mean, std);
        m
    }

    /// Overwrite every element of `m` with i.i.d. normal samples. The
    /// buffer-reusing twin of [`MatrixRng::normal`] (same sample stream for
    /// the same shape): the training loop draws its support noise into a
    /// preallocated workspace buffer through this.
    pub fn fill_normal<S: Scalar>(&mut self, m: &mut Matrix<S>, mean: f64, std: f64) {
        for v in m.as_mut_slice() {
            *v = self.normal_scalar(mean, std);
        }
    }

    /// Binary (0/1) matrix with i.i.d. Bernoulli(p) entries.
    pub fn bernoulli<S: Scalar>(&mut self, rows: usize, cols: usize, p: f64) -> Matrix<S> {
        let mut m = Matrix::zeros(rows, cols);
        self.fill_bernoulli(&mut m, p);
        m
    }

    /// Overwrite every element of `m` with i.i.d. Bernoulli(p) samples
    /// (same sample stream as [`MatrixRng::bernoulli`]).
    pub fn fill_bernoulli<S: Scalar>(&mut self, m: &mut Matrix<S>, p: f64) {
        assert!((0.0..=1.0).contains(&p), "Bernoulli p must be in [0,1]");
        for v in m.as_mut_slice() {
            *v = if self.rng.gen::<f64>() < p {
                S::ONE
            } else {
                S::ZERO
            };
        }
    }

    /// A uniformly random subset of `k` distinct indices from `0..n`,
    /// returned in ascending order.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} indices out of {n}");
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(&mut self.rng);
        let mut chosen: Vec<usize> = all.into_iter().take(k).collect();
        chosen.sort_unstable();
        chosen
    }

    /// Shuffle a slice in place.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        data.shuffle(&mut self.rng);
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        p.shuffle(&mut self.rng);
        p
    }

    /// Sample an index in `0..weights.len()` proportionally to the weights.
    ///
    /// # Panics
    /// Panics if the weights are empty or sum to a non-positive value.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index: empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index: weights must sum to > 0");
        let mut target = self.rng.gen_range(0.0..total);
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = MatrixRng::seed_from(42);
        let mut b = MatrixRng::seed_from(42);
        let ma: Matrix<f32> = a.uniform(4, 4, 0.0, 1.0);
        let mb: Matrix<f32> = b.uniform(4, 4, 0.0, 1.0);
        assert_eq!(ma, mb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = MatrixRng::seed_from(1);
        let mut b = MatrixRng::seed_from(2);
        let ma: Matrix<f32> = a.uniform(8, 8, 0.0, 1.0);
        let mb: Matrix<f32> = b.uniform(8, 8, 0.0, 1.0);
        assert_ne!(ma, mb);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = MatrixRng::seed_from(3);
        let m: Matrix<f64> = rng.uniform(50, 50, -2.0, 3.0);
        assert!(m.as_slice().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = MatrixRng::seed_from(4);
        let m: Matrix<f64> = rng.normal(200, 200, 1.5, 2.0);
        let n = m.len() as f64;
        let mean: f64 = m.as_slice().iter().sum::<f64>() / n;
        let var: f64 = m.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn exponential_is_positive_with_right_mean() {
        let mut rng = MatrixRng::seed_from(5);
        let n = 50_000;
        let mut s = 0.0;
        for _ in 0..n {
            let v: f64 = rng.exponential_scalar(2.0);
            assert!(v > 0.0);
            s += v;
        }
        assert!((s / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn bernoulli_density_is_close_to_p() {
        let mut rng = MatrixRng::seed_from(6);
        let m: Matrix<f32> = rng.bernoulli(100, 100, 0.3);
        let ones = m.as_slice().iter().filter(|&&v| v == 1.0).count();
        let frac = ones as f64 / m.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
        assert!(m.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn choose_indices_are_distinct_sorted_in_range() {
        let mut rng = MatrixRng::seed_from(7);
        let idx = rng.choose_indices(100, 40);
        assert_eq!(idx.len(), 40);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    #[should_panic(expected = "cannot choose")]
    fn choose_indices_rejects_oversample() {
        let mut rng = MatrixRng::seed_from(8);
        let _ = rng.choose_indices(3, 4);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = MatrixRng::seed_from(9);
        let mut p = rng.permutation(257);
        p.sort_unstable();
        assert_eq!(p, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = MatrixRng::seed_from(10);
        let w = vec![0.05, 0.9, 0.05];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert!(counts[1] > 1500, "counts {counts:?}");
        assert!(counts[0] > 0 && counts[2] > 0);
    }

    #[test]
    fn fill_variants_draw_the_same_stream_as_the_allocating_ones() {
        let mut a = MatrixRng::seed_from(21);
        let mut b = MatrixRng::seed_from(21);
        let alloc: Matrix<f32> = a.normal(5, 7, 0.5, 2.0);
        let mut reused: Matrix<f32> = Matrix::filled(2, 2, 9.0);
        reused.resize(5, 7);
        b.fill_normal(&mut reused, 0.5, 2.0);
        assert_eq!(alloc, reused);
        let alloc: Matrix<f32> = a.uniform(3, 4, -1.0, 1.0);
        reused.resize(3, 4);
        b.fill_uniform(&mut reused, -1.0, 1.0);
        assert_eq!(alloc, reused);
        let alloc: Matrix<f32> = a.bernoulli(6, 2, 0.4);
        reused.resize(6, 2);
        b.fill_bernoulli(&mut reused, 0.4);
        assert_eq!(alloc, reused);
    }

    #[test]
    fn child_streams_are_independent() {
        let mut base = MatrixRng::seed_from(11);
        let mut c1 = base.child(1);
        let mut c2 = base.child(2);
        let a: Matrix<f32> = c1.uniform(4, 4, 0.0, 1.0);
        let b: Matrix<f32> = c2.uniform(4, 4, 0.0, 1.0);
        assert_ne!(a, b);
    }
}
