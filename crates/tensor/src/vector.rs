//! Dense vector (slice) kernels: BLAS level-1 style operations plus the
//! softmax / log-sum-exp primitives the BCPNN activation uses.

use crate::scalar::Scalar;

/// Dot product of two equally long slices.
///
/// # Panics
/// Panics if the lengths differ.
pub fn dot<S: Scalar>(a: &[S], b: &[S]) -> S {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = S::ZERO;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// `y += alpha * x` (BLAS `axpy`).
///
/// # Panics
/// Panics if the lengths differ.
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x.iter()) {
        *yv += alpha * xv;
    }
}

/// `x *= alpha` (BLAS `scal`).
pub fn scal<S: Scalar>(alpha: S, x: &mut [S]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Exponential moving-average update `y = (1 - rate) * y + rate * x`,
/// the core primitive of the BCPNN probability-trace update.
///
/// # Panics
/// Panics if the lengths differ.
pub fn ema_update<S: Scalar>(rate: S, x: &[S], y: &mut [S]) {
    assert_eq!(x.len(), y.len(), "ema_update: length mismatch");
    let keep = S::ONE - rate;
    for (yv, &xv) in y.iter_mut().zip(x.iter()) {
        *yv = keep * *yv + rate * xv;
    }
}

/// Euclidean norm.
pub fn norm2<S: Scalar>(x: &[S]) -> S {
    let mut acc = S::ZERO;
    for &v in x {
        acc += v * v;
    }
    acc.sqrt()
}

/// Sum of the elements.
pub fn sum<S: Scalar>(x: &[S]) -> S {
    let mut acc = S::ZERO;
    for &v in x {
        acc += v;
    }
    acc
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean<S: Scalar>(x: &[S]) -> S {
    if x.is_empty() {
        return S::ZERO;
    }
    sum(x) / S::from_usize(x.len())
}

/// Index of the maximum element (first occurrence). Returns 0 for an empty
/// slice.
pub fn argmax<S: Scalar>(x: &[S]) -> usize {
    let mut best = 0usize;
    let mut best_v = None::<S>;
    for (i, &v) in x.iter().enumerate() {
        match best_v {
            None => {
                best = i;
                best_v = Some(v);
            }
            Some(bv) if v > bv => {
                best = i;
                best_v = Some(v);
            }
            _ => {}
        }
    }
    best
}

/// Maximum element (negative infinity for an empty slice).
pub fn max<S: Scalar>(x: &[S]) -> S {
    let mut m = S::from_f64(f64::NEG_INFINITY);
    for &v in x {
        m = m.max(v);
    }
    m
}

/// Numerically-stable log-sum-exp.
pub fn logsumexp<S: Scalar>(x: &[S]) -> S {
    if x.is_empty() {
        return S::from_f64(f64::NEG_INFINITY);
    }
    let m = max(x);
    if !m.is_finite() {
        return m;
    }
    let mut acc = S::ZERO;
    for &v in x {
        acc += (v - m).exp();
    }
    m + acc.ln()
}

/// In-place numerically-stable softmax: `x[i] = exp(x[i] - max) / Σ exp`.
///
/// This is the minicolumn competition within one hypercolumn: after the
/// masked linear support is computed, the MCUs of an HCU compete through
/// exactly this normalisation.
pub fn softmax_inplace<S: Scalar>(x: &mut [S]) {
    if x.is_empty() {
        return;
    }
    let m = max(x);
    let mut total = S::ZERO;
    for v in x.iter_mut() {
        *v = (*v - m).exp();
        total += *v;
    }
    if total > S::ZERO {
        let inv = S::ONE / total;
        for v in x.iter_mut() {
            *v *= inv;
        }
    } else {
        // Degenerate support (all -inf): fall back to uniform.
        let u = S::ONE / S::from_usize(x.len());
        for v in x.iter_mut() {
            *v = u;
        }
    }
}

/// Normalise a non-negative slice to sum to one (L1). Uniform fallback if the
/// sum is zero.
pub fn normalize_l1<S: Scalar>(x: &mut [S]) {
    let s = sum(x);
    if s > S::ZERO {
        let inv = S::ONE / s;
        scal(inv, x);
    } else if !x.is_empty() {
        let u = S::ONE / S::from_usize(x.len());
        for v in x.iter_mut() {
            *v = u;
        }
    }
}

/// Shannon entropy (nats) of a probability vector; contributions from zero
/// entries are zero.
pub fn entropy<S: Scalar>(p: &[S]) -> S {
    let mut h = S::ZERO;
    for &v in p {
        if v > S::ZERO {
            h -= v * v.ln();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_axpy_scal() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![4.0f32, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = b.clone();
        axpy(2.0, &a, &mut y);
        assert_eq!(y, vec![6.0, 9.0, 12.0]);
        scal(0.5, &mut y);
        assert_eq!(y, vec![3.0, 4.5, 6.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatch() {
        let _ = dot(&[1.0f32], &[1.0, 2.0]);
    }

    #[test]
    fn ema_update_converges_to_target() {
        let target = vec![1.0f64, 0.0, 0.5];
        let mut trace = vec![0.0f64; 3];
        for _ in 0..2000 {
            ema_update(0.05, &target, &mut trace);
        }
        for (t, tr) in target.iter().zip(trace.iter()) {
            assert!((t - tr).abs() < 1e-6);
        }
    }

    #[test]
    fn norms_and_means() {
        let x = vec![3.0f32, 4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(sum(&x), 7.0);
        assert_eq!(mean(&x), 3.5);
        assert_eq!(mean::<f32>(&[]), 0.0);
    }

    #[test]
    fn argmax_and_max() {
        let x = vec![0.1f32, 0.9, 0.3, 0.9];
        assert_eq!(argmax(&x), 1, "first maximum wins");
        assert_eq!(max(&x), 0.9);
        assert_eq!(argmax::<f32>(&[]), 0);
    }

    #[test]
    fn softmax_is_a_distribution() {
        let mut x = vec![1.0f64, 2.0, 3.0];
        softmax_inplace(&mut x);
        let s: f64 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = vec![1.0f64, 2.0, 3.0];
        let mut b = vec![101.0f64, 102.0, 103.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_handles_large_magnitudes() {
        let mut x = vec![1000.0f32, 1001.0, 999.0];
        softmax_inplace(&mut x);
        assert!(x.iter().all(|v| v.is_finite()));
        let s: f32 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn logsumexp_matches_naive_in_safe_range() {
        let x = vec![0.5f64, 1.5, -0.25];
        let naive = x.iter().map(|v| v.exp()).sum::<f64>().ln();
        assert!((logsumexp(&x) - naive).abs() < 1e-12);
    }

    #[test]
    fn normalize_l1_uniform_fallback() {
        let mut x = vec![0.0f32; 4];
        normalize_l1(&mut x);
        assert!(x.iter().all(|&v| (v - 0.25).abs() < 1e-7));
        let mut y = vec![2.0f32, 2.0];
        normalize_l1(&mut y);
        assert_eq!(y, vec![0.5, 0.5]);
    }

    #[test]
    fn entropy_bounds() {
        let uniform = vec![0.25f64; 4];
        let peaked = vec![1.0f64, 0.0, 0.0, 0.0];
        assert!((entropy(&uniform) - (4.0f64).ln().abs()).abs() < 1e-12);
        assert_eq!(entropy(&peaked), 0.0);
        assert!(entropy(&uniform) > entropy(&peaked));
    }
}
