//! General matrix-matrix multiplication (GEMM) kernels.
//!
//! The BCPNN training step is GEMM-dominated (§II-B of the paper): the
//! forward pass computes `support = X · W` and the trace update computes
//! `ΔP_ij ∝ Xᵀ · Π`. StreamBrain delegates these to MKL/cuBLAS; this module
//! is the corresponding substrate, with three tiers:
//!
//! * [`gemm_naive`] — triple loop reference used for correctness testing,
//! * [`gemm_blocked`] — cache-blocked single-threaded kernel,
//! * [`gemm`] / [`gemm_tn`] / [`gemm_nt`] — parallel drivers that split the
//!   output into row bands executed on the `bcpnn-parallel` pool.
//!
//! All kernels compute `C = alpha * op(A) · op(B) + beta * C` with row-major
//! storage.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Cache-block size along the M (rows of C) dimension.
const BLOCK_M: usize = 64;
/// Cache-block size along the N (cols of C) dimension.
const BLOCK_N: usize = 256;
/// Cache-block size along the K (inner) dimension.
const BLOCK_K: usize = 256;
/// Below this many multiply-accumulate operations the parallel drivers stay
/// single-threaded (thread handoff would dominate).
const PARALLEL_FLOP_CUTOFF: usize = 1 << 17;

fn check_gemm_dims<S: Scalar>(
    a: &Matrix<S>,
    b: &Matrix<S>,
    c: &Matrix<S>,
    m: usize,
    n: usize,
    k: usize,
) {
    assert_eq!(a.shape().0 * a.shape().1, a.len());
    assert_eq!(
        (m, k),
        a.shape(),
        "gemm: A must be {m}x{k}, got {:?}",
        a.shape()
    );
    assert_eq!(
        (k, n),
        b.shape(),
        "gemm: B must be {k}x{n}, got {:?}",
        b.shape()
    );
    assert_eq!(
        (m, n),
        c.shape(),
        "gemm: C must be {m}x{n}, got {:?}",
        c.shape()
    );
}

/// Reference GEMM: `C = alpha * A·B + beta * C`. Triple loop, no blocking.
pub fn gemm_naive<S: Scalar>(alpha: S, a: &Matrix<S>, b: &Matrix<S>, beta: S, c: &mut Matrix<S>) {
    let (m, k) = a.shape();
    let n = b.cols();
    check_gemm_dims(a, b, c, m, n, k);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for v in c_row.iter_mut() {
            *v *= beta;
        }
        for (p, &av) in a_row.iter().enumerate() {
            let aik = alpha * av;
            if aik == S::ZERO {
                continue;
            }
            let b_row = b.row(p);
            for j in 0..n {
                c_row[j] += aik * b_row[j];
            }
        }
    }
}

/// Multiply a panel of rows `[row_start, row_end)` of C using cache blocking.
fn gemm_block_panel<S: Scalar>(
    alpha: S,
    a: &Matrix<S>,
    b: &Matrix<S>,
    beta: S,
    c_panel: &mut [S],
    row_start: usize,
    row_end: usize,
) {
    let k = a.cols();
    let n = b.cols();
    // Scale the panel by beta once up front.
    if beta != S::ONE {
        for v in c_panel.iter_mut() {
            *v *= beta;
        }
    }
    let mut i0 = row_start;
    while i0 < row_end {
        let i1 = (i0 + BLOCK_M).min(row_end);
        let mut p0 = 0;
        while p0 < k {
            let p1 = (p0 + BLOCK_K).min(k);
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + BLOCK_N).min(n);
                for i in i0..i1 {
                    let a_row = &a.row(i)[p0..p1];
                    let c_row = &mut c_panel[(i - row_start) * n + j0..(i - row_start) * n + j1];
                    for (pp, &aval) in a_row.iter().enumerate() {
                        let aik = alpha * aval;
                        if aik == S::ZERO {
                            continue;
                        }
                        let b_row = &b.row(p0 + pp)[j0..j1];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                            *cv += aik * bv;
                        }
                    }
                }
                j0 = j1;
            }
            p0 = p1;
        }
        i0 = i1;
    }
}

/// Single-threaded cache-blocked GEMM: `C = alpha * A·B + beta * C`.
pub fn gemm_blocked<S: Scalar>(alpha: S, a: &Matrix<S>, b: &Matrix<S>, beta: S, c: &mut Matrix<S>) {
    let (m, k) = a.shape();
    let n = b.cols();
    check_gemm_dims(a, b, c, m, n, k);
    let c_slice = c.as_mut_slice();
    gemm_block_panel(alpha, a, b, beta, c_slice, 0, m);
}

/// Parallel GEMM: `C = alpha * A·B + beta * C`.
///
/// The output is split into contiguous row bands; each band is computed by
/// the cache-blocked kernel on a pool worker. Small problems fall back to the
/// single-threaded blocked kernel.
pub fn gemm<S: Scalar>(alpha: S, a: &Matrix<S>, b: &Matrix<S>, beta: S, c: &mut Matrix<S>) {
    let (m, k) = a.shape();
    let n = b.cols();
    check_gemm_dims(a, b, c, m, n, k);
    if m * n * k < PARALLEL_FLOP_CUTOFF || m < 2 {
        gemm_blocked(alpha, a, b, beta, c);
        return;
    }
    let band = BLOCK_M.max(m.div_ceil(bcpnn_parallel::global_pool().num_threads() * 2));
    let c_data = c.as_mut_slice();
    // Split C into disjoint row bands and process them in parallel. We hand
    // each task its own sub-slice of C, so there is no aliasing.
    let bands: Vec<(usize, usize)> = {
        let mut v = Vec::new();
        let mut start = 0;
        while start < m {
            let end = (start + band).min(m);
            v.push((start, end));
            start = end;
        }
        v
    };
    bcpnn_parallel::global_pool().scope(|s| {
        let mut rest = c_data;
        let mut consumed = 0usize;
        for &(r0, r1) in &bands {
            let take = (r1 - r0) * n;
            let (panel, tail) = rest.split_at_mut(take);
            rest = tail;
            consumed += take;
            debug_assert_eq!(consumed, r1 * n);
            s.spawn(move || {
                gemm_block_panel(alpha, a, b, beta, panel, r0, r1);
            });
        }
    });
}

/// Parallel GEMM with A transposed: `C = alpha * Aᵀ·B + beta * C` where
/// `A` is `k x m`, `B` is `k x n` and `C` is `m x n`.
///
/// This is the kernel behind the batched trace update `P_ij += Xᵀ·Π / B`.
pub fn gemm_tn<S: Scalar>(alpha: S, a: &Matrix<S>, b: &Matrix<S>, beta: S, c: &mut Matrix<S>) {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "gemm_tn: inner dimensions differ ({k} vs {kb})");
    assert_eq!(
        (m, n),
        c.shape(),
        "gemm_tn: C must be {m}x{n}, got {:?}",
        c.shape()
    );
    // C_{ij} = sum_p A_{p i} B_{p j}. Parallelise over rows of C (columns of A).
    let n_cols = n;
    let c_data = c.as_mut_slice();
    let work = m * n * k;
    let run_row = |i: usize, c_row: &mut [S]| {
        if beta != S::ONE {
            for v in c_row.iter_mut() {
                *v *= beta;
            }
        }
        for p in 0..k {
            let api = alpha * a.get(p, i);
            if api == S::ZERO {
                continue;
            }
            let b_row = b.row(p);
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += api * bv;
            }
        }
    };
    if work < PARALLEL_FLOP_CUTOFF || m < 2 {
        for i in 0..m {
            run_row(i, &mut c_data[i * n_cols..(i + 1) * n_cols]);
        }
        return;
    }
    bcpnn_parallel::par_chunks_mut(c_data, n_cols, |start, chunk| {
        let i = start / n_cols;
        run_row(i, chunk);
    });
}

/// Parallel GEMM with B transposed: `C = alpha * A·Bᵀ + beta * C` where
/// `A` is `m x k`, `B` is `n x k` and `C` is `m x n`.
pub fn gemm_nt<S: Scalar>(alpha: S, a: &Matrix<S>, b: &Matrix<S>, beta: S, c: &mut Matrix<S>) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(k, kb, "gemm_nt: inner dimensions differ ({k} vs {kb})");
    assert_eq!(
        (m, n),
        c.shape(),
        "gemm_nt: C must be {m}x{n}, got {:?}",
        c.shape()
    );
    let n_cols = n;
    let c_data = c.as_mut_slice();
    let work = m * n * k;
    let run_row = |i: usize, c_row: &mut [S]| {
        let a_row = a.row(i);
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = S::ZERO;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *cv = *cv * beta + alpha * acc;
        }
    };
    if work < PARALLEL_FLOP_CUTOFF || m < 2 {
        for i in 0..m {
            run_row(i, &mut c_data[i * n_cols..(i + 1) * n_cols]);
        }
        return;
    }
    bcpnn_parallel::par_chunks_mut(c_data, n_cols, |start, chunk| {
        let i = start / n_cols;
        run_row(i, chunk);
    });
}

/// Matrix-vector product `y = alpha * A·x + beta * y`.
pub fn gemv<S: Scalar>(alpha: S, a: &Matrix<S>, x: &[S], beta: S, y: &mut [S]) {
    let (m, k) = a.shape();
    assert_eq!(x.len(), k, "gemv: x must have length {k}");
    assert_eq!(y.len(), m, "gemv: y must have length {m}");
    bcpnn_parallel::par_chunks_mut(y, 64, |start, chunk| {
        for (off, yv) in chunk.iter_mut().enumerate() {
            let row = a.row(start + off);
            let mut acc = S::ZERO;
            for (&av, &xv) in row.iter().zip(x.iter()) {
                acc += av * xv;
            }
            *yv = beta * *yv + alpha * acc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::MatrixRng;

    fn assert_close<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        let d = a.max_abs_diff(b);
        assert!(d <= tol, "matrices differ by {d} (> {tol})");
    }

    #[test]
    fn naive_matches_hand_computed_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Matrix::<f64>::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::<f64>::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut c = Matrix::<f64>::zeros(2, 2);
        gemm_naive(1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = Matrix::<f64>::identity(3);
        let b = Matrix::<f64>::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let mut c = Matrix::<f64>::filled(3, 3, 10.0);
        // C = 2*I*B + 0.5*C = 2*B + 5
        gemm_naive(2.0, &a, &b, 0.5, &mut c);
        for r in 0..3 {
            for cc in 0..3 {
                assert_eq!(c.get(r, cc), 2.0 * b.get(r, cc) + 5.0);
            }
        }
    }

    #[test]
    fn blocked_matches_naive() {
        let mut rng = MatrixRng::seed_from(7);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 3, 7),
            (33, 65, 17),
            (128, 70, 200),
        ] {
            let a: Matrix<f32> = rng.uniform(m, k, -1.0, 1.0);
            let b: Matrix<f32> = rng.uniform(k, n, -1.0, 1.0);
            let mut c1: Matrix<f32> = rng.uniform(m, n, -1.0, 1.0);
            let mut c2 = c1.clone();
            gemm_naive(0.7, &a, &b, 0.3, &mut c1);
            gemm_blocked(0.7, &a, &b, 0.3, &mut c2);
            assert_close(&c1, &c2, 1e-3);
        }
    }

    #[test]
    fn parallel_matches_naive() {
        let mut rng = MatrixRng::seed_from(11);
        for &(m, k, n) in &[(64usize, 64usize, 64usize), (200, 80, 150), (3, 500, 3)] {
            let a: Matrix<f32> = rng.uniform(m, k, -1.0, 1.0);
            let b: Matrix<f32> = rng.uniform(k, n, -1.0, 1.0);
            let mut c1: Matrix<f32> = Matrix::zeros(m, n);
            let mut c2 = Matrix::zeros(m, n);
            gemm_naive(1.0, &a, &b, 0.0, &mut c1);
            gemm(1.0, &a, &b, 0.0, &mut c2);
            assert_close(&c1, &c2, 1e-3);
        }
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let mut rng = MatrixRng::seed_from(13);
        for &(k, m, n) in &[(40usize, 30usize, 20usize), (128, 64, 96), (7, 1, 5)] {
            let a: Matrix<f32> = rng.uniform(k, m, -1.0, 1.0);
            let b: Matrix<f32> = rng.uniform(k, n, -1.0, 1.0);
            let at = a.transposed();
            let mut expected = Matrix::zeros(m, n);
            gemm_naive(1.0, &at, &b, 0.0, &mut expected);
            let mut got = Matrix::zeros(m, n);
            gemm_tn(1.0, &a, &b, 0.0, &mut got);
            assert_close(&expected, &got, 1e-3);
        }
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let mut rng = MatrixRng::seed_from(17);
        for &(m, k, n) in &[(30usize, 40usize, 20usize), (64, 128, 96)] {
            let a: Matrix<f32> = rng.uniform(m, k, -1.0, 1.0);
            let b: Matrix<f32> = rng.uniform(n, k, -1.0, 1.0);
            let bt = b.transposed();
            let mut expected = Matrix::zeros(m, n);
            gemm_naive(1.0, &a, &bt, 0.0, &mut expected);
            let mut got = Matrix::zeros(m, n);
            gemm_nt(1.0, &a, &b, 0.0, &mut got);
            assert_close(&expected, &got, 1e-3);
        }
    }

    #[test]
    fn gemm_tn_respects_beta() {
        let a = Matrix::<f64>::identity(3); // Aᵀ = I
        let b = Matrix::<f64>::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let mut c = Matrix::<f64>::filled(3, 2, 1.0);
        gemm_tn(1.0, &a, &b, 2.0, &mut c);
        for r in 0..3 {
            for cc in 0..2 {
                assert_eq!(c.get(r, cc), b.get(r, cc) + 2.0);
            }
        }
    }

    #[test]
    fn gemv_matches_gemm() {
        let mut rng = MatrixRng::seed_from(19);
        let a: Matrix<f32> = rng.uniform(50, 30, -1.0, 1.0);
        let x: Vec<f32> = (0..30).map(|i| (i as f32) * 0.1).collect();
        let xm = Matrix::from_vec(30, 1, x.clone());
        let mut expected = Matrix::zeros(50, 1);
        gemm_naive(1.0, &a, &xm, 0.0, &mut expected);
        let mut y = vec![0.0f32; 50];
        gemv(1.0, &a, &x, 0.0, &mut y);
        for i in 0..50 {
            assert!((y[i] - expected.get(i, 0)).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "gemm: B must be")]
    fn dimension_mismatch_panics() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(4, 2);
        let mut c = Matrix::<f32>::zeros(2, 2);
        gemm(1.0, &a, &b, 0.0, &mut c);
    }
}
