//! # bcpnn-tensor
//!
//! Dense linear-algebra substrate for StreamBrain-rs.
//!
//! StreamBrain expresses the BCPNN activation and trace update as GEMM calls
//! handed to MKL (CPU) or cuBLAS (GPU). This crate is the corresponding
//! substrate for the Rust reproduction: a row-major [`Matrix`] type, naive /
//! cache-blocked / multi-threaded [`gemm`] kernels (parallelised over the
//! `bcpnn-parallel` pool), element-wise and reduction kernels, seeded random
//! generation ([`MatrixRng`]), scalar statistics for preprocessing, and a
//! small text serialization format.
//!
//! ```
//! use bcpnn_tensor::{gemm, Matrix, MatrixRng};
//!
//! let mut rng = MatrixRng::seed_from(1);
//! let x: Matrix<f32> = rng.uniform(8, 16, 0.0, 1.0);   // batch x inputs
//! let w: Matrix<f32> = rng.normal(16, 4, 0.0, 0.1);    // inputs x units
//! let mut support = Matrix::zeros(8, 4);
//! gemm(1.0, &x, &w, 0.0, &mut support);                // support = x · w
//! bcpnn_tensor::reduce::softmax_rows(&mut support);    // unit competition
//! assert!(support.all_finite());
//! ```

#![warn(missing_docs)]

pub mod elementwise;
mod gemm;
pub mod io;
mod matrix;
mod random;
pub mod reduce;
mod scalar;
pub mod simd;
pub mod stats;
pub mod vector;

pub use gemm::{gemm, gemm_blocked, gemm_naive, gemm_nt, gemm_tn, gemv};
pub use io::{load_matrix, read_matrix, save_matrix, write_matrix, IoError};
pub use matrix::Matrix;
pub use random::MatrixRng;
pub use scalar::Scalar;
