//! Plain-text matrix persistence.
//!
//! Models, receptive-field masks and experiment outputs are stored in a tiny
//! self-describing text format (one header line, then one row per line),
//! which keeps the repository free of serialization dependencies while still
//! being easy to diff, version and load from Python for plotting.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Magic tag at the start of every serialized matrix.
const MAGIC: &str = "bcpnn-matrix";
/// Format version.
const VERSION: u32 = 1;

/// Errors produced by matrix (de)serialization.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The input did not conform to the expected format.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Write a matrix to any writer in the text format.
pub fn write_matrix<S: Scalar, W: Write>(m: &Matrix<S>, mut w: W) -> Result<(), IoError> {
    writeln!(w, "{MAGIC} v{VERSION} {} {}", m.rows(), m.cols())?;
    for row in m.iter_rows() {
        let mut first = true;
        for v in row {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{}", v.to_f64())?;
            first = false;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read a matrix previously written with [`write_matrix`].
pub fn read_matrix<S: Scalar, R: BufRead>(mut r: R) -> Result<Matrix<S>, IoError> {
    let mut header = String::new();
    r.read_line(&mut header)?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 4 || parts[0] != MAGIC {
        return Err(IoError::Format(format!("bad header: {header:?}")));
    }
    if parts[1] != format!("v{VERSION}") {
        return Err(IoError::Format(format!("unsupported version {}", parts[1])));
    }
    let rows: usize = parts[2]
        .parse()
        .map_err(|_| IoError::Format(format!("bad row count {:?}", parts[2])))?;
    let cols: usize = parts[3]
        .parse()
        .map_err(|_| IoError::Format(format!("bad col count {:?}", parts[3])))?;
    let mut data = Vec::with_capacity(rows * cols);
    let mut line = String::new();
    for row_idx in 0..rows {
        line.clear();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            return Err(IoError::Format(format!(
                "unexpected end of input at row {row_idx}"
            )));
        }
        let mut count = 0usize;
        for tok in line.split_whitespace() {
            let v: f64 = tok
                .parse()
                .map_err(|_| IoError::Format(format!("bad value {tok:?} in row {row_idx}")))?;
            data.push(S::from_f64(v));
            count += 1;
        }
        if count != cols {
            return Err(IoError::Format(format!(
                "row {row_idx} has {count} values, expected {cols}"
            )));
        }
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Save a matrix to a file path (creating parent directories if needed).
pub fn save_matrix<S: Scalar, P: AsRef<Path>>(m: &Matrix<S>, path: P) -> Result<(), IoError> {
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let f = File::create(path)?;
    write_matrix(m, BufWriter::new(f))
}

/// Load a matrix from a file path.
pub fn load_matrix<S: Scalar, P: AsRef<Path>>(path: P) -> Result<Matrix<S>, IoError> {
    let f = File::open(path)?;
    read_matrix(BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::MatrixRng;

    #[test]
    fn roundtrip_through_memory() {
        let mut rng = MatrixRng::seed_from(1);
        let m: Matrix<f32> = rng.uniform(7, 5, -3.0, 3.0);
        let mut buf = Vec::new();
        write_matrix(&m, &mut buf).unwrap();
        let back: Matrix<f32> = read_matrix(&buf[..]).unwrap();
        assert!(m.max_abs_diff(&back) < 1e-6);
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("bcpnn_tensor_io_test");
        let path = dir.join("m.txt");
        let m: Matrix<f64> = Matrix::from_fn(3, 4, |r, c| r as f64 * 0.5 - c as f64);
        save_matrix(&m, &path).unwrap();
        let back: Matrix<f64> = load_matrix(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_header() {
        let data = b"not-a-matrix 1 2 3\n";
        let err = read_matrix::<f32, _>(&data[..]).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
    }

    #[test]
    fn rejects_truncated_body() {
        let data = format!("{MAGIC} v{VERSION} 3 2\n1 2\n3 4\n");
        let err = read_matrix::<f32, _>(data.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
    }

    #[test]
    fn rejects_ragged_rows() {
        let data = format!("{MAGIC} v{VERSION} 2 2\n1 2\n3\n");
        let err = read_matrix::<f32, _>(data.as_bytes()).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("expected 2"), "message: {msg}");
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let m: Matrix<f32> = Matrix::zeros(0, 4);
        let mut buf = Vec::new();
        write_matrix(&m, &mut buf).unwrap();
        let back: Matrix<f32> = read_matrix(&buf[..]).unwrap();
        assert_eq!(back.shape(), (0, 4));
    }
}
