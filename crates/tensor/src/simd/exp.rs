//! Polynomial `exp` approximation for the softmax hot path.
//!
//! Profiling the serving shapes showed scalar libm `expf` dominating
//! end-to-end `predict` once the linear forward was vectorized: the grouped
//! softmax calls `exp` once per hidden unit per row, and libm's `expf`
//! neither inlines nor vectorizes. This module supplies the classic
//! Cephes-style alternative — range reduction to `[-½ln2, ½ln2]`, a
//! degree-6 minimax polynomial, and exponent reassembly via integer bit
//! arithmetic — in a form the three dispatch tiers share:
//!
//! * [`exp_approx`] — the scalar reference. The portable-lane softmax tier
//!   applies it through [`exp_approx_x8`], whose fixed-width array body
//!   auto-vectorizes; the AVX2 tier re-implements the *same algorithm with
//!   the same coefficients* in intrinsics (see `simd::avx2`), differing
//!   only in using fused multiply-adds inside the polynomial.
//!
//! # Accuracy contract
//!
//! Over the softmax input range — `(support - max) ∈ [-87.0, 0.0]` — and
//! in fact over the whole non-overflowing domain `[-87.0, 88.0]`, the
//! relative error versus `f64` `exp` is **≤ 1e-6** (measured ≲ 3e-7, about
//! 2 ulp; `crates/tensor/tests/exp_prop.rs` asserts the 1e-6 bound
//! property-style). Three exact identities the softmax leans on:
//!
//! * `exp_approx(0) == 1.0` exactly (the reduced argument is `0` and the
//!   polynomial's constant term is exact), so the maximal element of every
//!   softmax group maps to exactly `1.0` and group totals are `>= 1`.
//! * The result is always finite and non-negative: inputs clamp to
//!   `[-87.336, 88.722]`, whose images stay inside `f32` range.
//! * Monotonicity holds to within 2 ulp: `a <= b` implies
//!   `exp_approx(a) <= exp_approx(b) * (1 + 2⁻²¹)`. (Bitwise monotonicity
//!   is *not* guaranteed at range-reduction seams, the same caveat libm
//!   itself carries.)
//!
//! Inputs are assumed finite: a `NaN` propagates through the scalar path
//! (`clamp` keeps it), while the AVX2 intrinsic path maps it to a clamp
//! endpoint — the softmax kernels only ever pass max-subtracted finite
//! supports, so the difference is unobservable from the serving paths.

// The constants below keep every digit of their canonical Cephes decimal
// forms (some beyond f32 precision) to document provenance.
#![allow(clippy::excessive_precision)]

/// Lowest input before `exp(x)` underflows `f32` (≈ `ln(f32::MIN_POSITIVE)`
/// minus slack); inputs below clamp here, yielding ≈ 1.1e-38.
pub const EXP_LO: f32 = -87.336_544;

/// Highest input before `exp(x)` overflows `f32` (≈ `ln(f32::MAX)` with
/// slack); inputs above clamp here, yielding ≈ 3.39e38 (finite).
pub const EXP_HI: f32 = 88.722_839;

/// `log2(e)` — scales x into units of `ln 2` for the exponent split.
pub(crate) const LOG2E: f32 = std::f32::consts::LOG2_E;
/// High part of `ln 2`; exactly representable, so `n * LN2_HI` is exact for
/// the |n| ≤ 128 the clamp allows.
pub(crate) const LN2_HI: f32 = 0.693_359_375;
/// Low (correction) part of `ln 2`: `ln 2 - LN2_HI`.
pub(crate) const LN2_LO: f32 = -2.121_944_4e-4;

/// Round-to-nearest-even magic constant: `1.5 · 2²³`. Adding and
/// subtracting it rounds any `|v| < 2²²` to the nearest integer with
/// ties-to-even — the same result as `round_ties_even`, but in two plain
/// additions the auto-vectorizer handles on every x86-64 (the intrinsic
/// needs SSE4.1 `roundps`, which the baseline target lacks, so it otherwise
/// lowers to a per-element libm call that blocks vectorization).
const ROUND_MAGIC: f32 = 12_582_912.0;

/// Degree-6 minimax coefficients for `exp(r) - 1 - r` on `[-½ln2, ½ln2]`
/// (Cephes `expf` constants), applied as
/// `exp(r) ≈ 1 + r + r²·(C5 + r·(C4 + r·(C3 + r·(C2 + r·(C1 + r·C0)))))`.
pub(crate) const C0: f32 = 1.987_569_1e-4;
pub(crate) const C1: f32 = 1.398_199_9e-3;
pub(crate) const C2: f32 = 8.333_452e-3;
pub(crate) const C3: f32 = 4.166_579_6e-2;
pub(crate) const C4: f32 = 1.666_666_5e-1;
pub(crate) const C5: f32 = 5.000_000_1e-1;

/// Polynomial `exp` approximation (see the module docs for the error
/// contract: relative error ≤ 1e-6 over `[-87, 88]`, `exp_approx(0) == 1`
/// exactly, always finite and non-negative).
///
/// ```
/// use bcpnn_tensor::simd::exp::exp_approx;
///
/// assert_eq!(exp_approx(0.0), 1.0);
/// assert!((exp_approx(1.0) - std::f32::consts::E).abs() / std::f32::consts::E < 1e-6);
/// assert!((exp_approx(-20.0) - (-20.0f32).exp()).abs() < 1e-14);
/// ```
#[inline]
pub fn exp_approx(x: f32) -> f32 {
    let x = x.clamp(EXP_LO, EXP_HI);
    // Split x = n·ln2 + r with n the *nearest* integer, so r ∈ [-½ln2, ½ln2].
    // The magic-constant round matches `round_ties_even` bit-for-bit over
    // the clamped range but stays vectorizable on baseline x86-64.
    let n = (x * LOG2E + ROUND_MAGIC) - ROUND_MAGIC;
    // Two-step Cody–Waite reduction: n·LN2_HI is exact, LN2_LO restores the
    // truncated low bits, keeping |error in r| ≈ ulp(r) instead of ulp(x).
    let r = x - n * LN2_HI - n * LN2_LO;
    let r2 = r * r;
    let mut p = C0;
    p = p * r + C1;
    p = p * r + C2;
    p = p * r + C3;
    p = p * r + C4;
    p = p * r + C5;
    let poly = p * r2 + r + 1.0;
    // 2ⁿ via the exponent field; n ∈ [-126, 128] after the clamp, and the
    // one boundary case n = 128 only occurs with poly < 1 (x near EXP_HI
    // lands just below the next power of two), so the product stays finite.
    scale_by_pow2(poly, n as i32)
}

/// `poly * 2^n` assembled through the `f32` exponent field, branch-free so
/// the x8 form auto-vectorizes.
#[inline]
fn scale_by_pow2(poly: f32, n: i32) -> f32 {
    // The clamp admits n ∈ [-126, 128]. Split 2^n into two power-of-two
    // factors whose exponents stay in the normal range ([-63, 64] each):
    // the first multiply is exact (poly ∈ [0.7, 1.5], so no overflow or
    // underflow mid-way), leaving the single rounding a direct poly·2^n
    // multiply would have — the split is bit-identical, including gradual
    // underflow to subnormals at the EXP_LO end.
    let n1 = n >> 1;
    let n2 = n - n1;
    let p1 = f32::from_bits(((127 + n1) as u32) << 23);
    let p2 = f32::from_bits(((127 + n2) as u32) << 23);
    let y = poly * p1 * p2;
    // n = 128 can overflow by at most the polynomial's rounding error:
    // saturate at f32::MAX instead of returning infinity. The comparison is
    // false for NaN, so a NaN input still propagates.
    if y == f32::INFINITY {
        f32::MAX
    } else {
        y
    }
}

/// Eight [`exp_approx`] evaluations over a fixed-width array — the
/// portable-lane tier's building block. One operation per lane per
/// statement, no bounds checks: the auto-vectorizer turns this into wide
/// arithmetic wherever the target has it, and the result is bit-identical
/// to eight scalar [`exp_approx`] calls.
#[inline]
pub fn exp_approx_x8(xs: [f32; 8]) -> [f32; 8] {
    let mut out = [0.0f32; 8];
    for (o, x) in out.iter_mut().zip(xs) {
        *o = exp_approx(x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_zero_and_tight_nearby() {
        assert_eq!(exp_approx(0.0), 1.0);
        for &x in &[-1.0f32, -0.5, -0.1, 0.1, 0.5, 1.0, 2.0, -2.0] {
            let want = (f64::from(x)).exp();
            let got = f64::from(exp_approx(x));
            assert!(
                ((got - want) / want).abs() < 1e-6,
                "exp_approx({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn clamps_keep_results_finite_and_positive() {
        assert!(exp_approx(-1e30) > 0.0);
        assert!(exp_approx(-1e30) < 1e-37);
        assert!(exp_approx(1e30).is_finite());
        assert!(exp_approx(f32::NEG_INFINITY) > 0.0, "clamped, not NaN");
        assert!(exp_approx(f32::INFINITY).is_finite());
    }

    #[test]
    fn x8_matches_scalar_bitwise() {
        let xs = [-87.0f32, -10.5, -1.0, -0.25, 0.0, 0.25, 3.5, 88.0];
        let out = exp_approx_x8(xs);
        for (x, o) in xs.iter().zip(out) {
            assert_eq!(o.to_bits(), exp_approx(*x).to_bits());
        }
    }

    #[test]
    fn dense_scan_stays_within_bound_on_softmax_range() {
        // 200k evenly spaced points across the range the softmax feeds.
        let (lo, hi) = (-87.0f64, 0.0f64);
        let steps = 200_000;
        for i in 0..=steps {
            let x = lo + (hi - lo) * (i as f64) / (steps as f64);
            let got = f64::from(exp_approx(x as f32));
            let want = (f64::from(x as f32)).exp();
            assert!(
                ((got - want) / want).abs() < 1e-6,
                "x = {x}: got {got}, want {want}"
            );
        }
    }
}
