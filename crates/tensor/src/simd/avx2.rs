//! Explicit AVX2+FMA implementations of the dispatched kernels.
//!
//! Everything here is an `unsafe fn` annotated
//! `#[target_feature(enable = "avx2,fma")]`: the contract (checked by the
//! only caller, [`super::dispatch`]) is that the running CPU has been probed
//! with `is_x86_feature_detected!` before any of these execute. The module
//! is `pub(crate)` so that contract cannot leak.
//!
//! # Numerical contract
//!
//! The elementwise kernels ([`axpy`], [`accumulate`], [`accumulate_i8`],
//! [`axpy_i8`], [`axpy_bf16`]) and the index kernel ([`argmax`]) are
//! **bit-identical** to their scalar counterparts: multiplies and adds stay
//! two distinct roundings (`_mm256_mul_ps` + `_mm256_add_ps`, never
//! `_mm256_fmadd_ps`), per-element order is preserved, and integer-to-float
//! conversions are exact. Only two kernels trade bits for speed, both under
//! the documented tolerance of `simd::exp`:
//!
//! * [`sum`] accumulates eight partial sums and reduces them in lane order,
//!   which reassociates the addition;
//! * [`softmax_seg`] evaluates the shared `exp_approx` polynomial with
//!   fused multiply-adds (one rounding where the portable tier has two).

#![allow(unsafe_code)]
// Every unsafe block in this module must say why it is sound.
#![warn(clippy::undocumented_unsafe_blocks)]

use core::arch::x86_64::*;

use super::exp::{exp_approx, C0, C1, C2, C3, C4, C5, EXP_LO, LN2_HI, LN2_LO, LOG2E};

/// `dst[j] += a · x[j]`, eight lanes per step, two-rounding semantics —
/// bit-identical to the scalar loop.
///
/// # Safety
/// The CPU must support AVX2 and FMA. Slices must be equal length (asserted).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn axpy(dst: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(dst.len(), x.len(), "axpy: length mismatch");
    let av = _mm256_set1_ps(a);
    let n = dst.len() / 8 * 8;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 8 <= n <= len for both equal-length slices, so the
        // unaligned 8-float loads and store stay in bounds.
        unsafe {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(x.as_ptr().add(i));
            _mm256_storeu_ps(
                dst.as_mut_ptr().add(i),
                _mm256_add_ps(d, _mm256_mul_ps(av, s)),
            );
        }
        i += 8;
    }
    for (d, &s) in dst[n..].iter_mut().zip(&x[n..]) {
        *d += a * s;
    }
}

/// `dst[j] += src[j]`, eight lanes per step — bit-identical to the scalar
/// loop.
///
/// # Safety
/// The CPU must support AVX2 and FMA. Slices must be equal length (asserted).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn accumulate(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "accumulate: length mismatch");
    let n = dst.len() / 8 * 8;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 8 <= n <= len for both equal-length slices.
        unsafe {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, s));
        }
        i += 8;
    }
    for (d, &s) in dst[n..].iter_mut().zip(&src[n..]) {
        *d += s;
    }
}

/// Sum with eight parallel accumulators reduced in lane order, then the
/// scalar tail. **Not** bit-identical to the sequential sum (the
/// reassociation changes last-bit rounding); use where the dispatch layer's
/// tolerance contract applies.
///
/// # Safety
/// The CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn sum(x: &[f32]) -> f32 {
    let n = x.len() / 8 * 8;
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i < n {
        // SAFETY: i + 8 <= n <= x.len(), so the 8-float load is in bounds.
        unsafe {
            acc = _mm256_add_ps(acc, _mm256_loadu_ps(x.as_ptr().add(i)));
        }
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut s = 0.0f32;
    for l in lanes {
        s += l;
    }
    for &v in &x[n..] {
        s += v;
    }
    s
}

/// Index of the first maximum (0 for empty), with the exact semantics of the
/// scalar scan: strict `>`, NaNs never win. Eight candidates are prescreened
/// per step with an ordered vector compare (`NaN > best` is false), and a
/// chunk is only rescanned scalar when some lane strictly beats the current
/// best — so the chosen index is bit-identical to the scalar result.
///
/// # Safety
/// The CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn argmax(x: &[f32]) -> usize {
    if x.is_empty() {
        return 0;
    }
    let mut best = 0usize;
    let mut best_v = x[0];
    let n = x.len() / 8 * 8;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 8 <= n <= x.len(), so the 8-float load is in bounds.
        let chunk = unsafe { _mm256_loadu_ps(x.as_ptr().add(i)) };
        let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(chunk, _mm256_set1_ps(best_v));
        if _mm256_movemask_ps(gt) != 0 {
            for (k, &v) in x[i..i + 8].iter().enumerate() {
                if v > best_v {
                    best = i + k;
                    best_v = v;
                }
            }
        }
        i += 8;
    }
    for (k, &v) in x[n..].iter().enumerate() {
        if v > best_v {
            best = n + k;
            best_v = v;
        }
    }
    best
}

/// `dst[j] += codes[j] as f32` — the int8 add-only fast path (binary
/// activations). The i8→f32 conversion is exact, so this is bit-identical
/// to the scalar loop.
///
/// # Safety
/// The CPU must support AVX2 and FMA. Slices must be equal length (asserted).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn accumulate_i8(dst: &mut [f32], codes: &[i8]) {
    assert_eq!(dst.len(), codes.len(), "accumulate_i8: length mismatch");
    let n = dst.len() / 8 * 8;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 8 <= n <= len for both slices: the 8-byte integer
        // load, 8-float load and store are all in bounds.
        unsafe {
            let c8 = _mm_loadl_epi64(codes.as_ptr().add(i).cast());
            let f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(c8));
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, f));
        }
        i += 8;
    }
    for (d, &c) in dst[n..].iter_mut().zip(&codes[n..]) {
        *d += f32::from(c);
    }
}

/// `dst[j] += a · (codes[j] as f32)` — int8 axpy with two-rounding
/// semantics, bit-identical to the scalar loop.
///
/// # Safety
/// The CPU must support AVX2 and FMA. Slices must be equal length (asserted).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn axpy_i8(dst: &mut [f32], a: f32, codes: &[i8]) {
    assert_eq!(dst.len(), codes.len(), "axpy_i8: length mismatch");
    let av = _mm256_set1_ps(a);
    let n = dst.len() / 8 * 8;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 8 <= n <= len for both slices (8-byte integer load,
        // 8-float load/store in bounds).
        unsafe {
            let c8 = _mm_loadl_epi64(codes.as_ptr().add(i).cast());
            let f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(c8));
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            _mm256_storeu_ps(
                dst.as_mut_ptr().add(i),
                _mm256_add_ps(d, _mm256_mul_ps(av, f)),
            );
        }
        i += 8;
    }
    for (d, &c) in dst[n..].iter_mut().zip(&codes[n..]) {
        *d += a * f32::from(c);
    }
}

/// `dst[j] += a · bf16_decode(codes[j])` — bfloat16 axpy. Decoding is a
/// 16-bit left shift into the f32 bit pattern (exact), arithmetic keeps the
/// two-rounding order: bit-identical to the scalar loop.
///
/// # Safety
/// The CPU must support AVX2 and FMA. Slices must be equal length (asserted).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn axpy_bf16(dst: &mut [f32], a: f32, codes: &[u16]) {
    assert_eq!(dst.len(), codes.len(), "axpy_bf16: length mismatch");
    let av = _mm256_set1_ps(a);
    let n = dst.len() / 8 * 8;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 8 <= n <= len for both slices: the 16-byte load reads
        // codes[i..i + 8] (8 u16s), the float load/store stay in bounds.
        unsafe {
            let c16 = _mm_loadu_si128(codes.as_ptr().add(i).cast());
            let f = _mm256_castsi256_ps(_mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(c16)));
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            _mm256_storeu_ps(
                dst.as_mut_ptr().add(i),
                _mm256_add_ps(d, _mm256_mul_ps(av, f)),
            );
        }
        i += 8;
    }
    for (d, &c) in dst[n..].iter_mut().zip(&codes[n..]) {
        *d += a * f32::from_bits(u32::from(c) << 16);
    }
}

/// Vectorized `exp_approx` of eight max-subtracted supports: the shared
/// Cephes polynomial of `simd::exp` with the multiply-adds fused.
///
/// Callers must have subtracted the segment maximum first (arguments are
/// `<= 0`), which keeps the reassembled exponent strictly below the `f32`
/// exponent-field limit — the scalar `n = 128` overflow split is therefore
/// unreachable and omitted.
///
/// # Safety
/// The CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
unsafe fn exp_nonpos_ps(x: __m256) -> __m256 {
    // Arguments are non-positive; only the underflow side needs a clamp.
    let x = _mm256_max_ps(x, _mm256_set1_ps(EXP_LO));
    let x = _mm256_min_ps(x, _mm256_setzero_ps());
    let n = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(_mm256_mul_ps(
        x,
        _mm256_set1_ps(LOG2E),
    ));
    // Cody–Waite: r = x - n·LN2_HI - n·LN2_LO, fused.
    let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(LN2_HI), x);
    let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(LN2_LO), r);
    let r2 = _mm256_mul_ps(r, r);
    let mut p = _mm256_set1_ps(C0);
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(C1));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(C2));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(C3));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(C4));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(C5));
    let poly = _mm256_add_ps(_mm256_fmadd_ps(p, r2, r), _mm256_set1_ps(1.0));
    // 2^n through the exponent field: n ∈ [-126, 0] here, so the biased
    // exponent 127 + n stays in [1, 127] — always a normal number.
    let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
        _mm256_cvtps_epi32(n),
        _mm256_set1_epi32(127),
    )));
    _mm256_mul_ps(poly, pow2)
}

/// Fused softmax of one group: max, `exp_approx(v - max)` with an in-register
/// running total, then one normalising division pass. Tail lanes (fewer than
/// eight trailing elements) run the scalar polynomial. Degenerate totals
/// (`<= 0`, only reachable with non-finite inputs) fall back to uniform,
/// like every other tier.
///
/// # Safety
/// The CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn softmax_seg(seg: &mut [f32]) {
    if seg.is_empty() {
        return;
    }
    let n = seg.len() / 8 * 8;
    // Max: order-independent and exact, so reduce eight lanes at a time.
    let mut max = f32::NEG_INFINITY;
    if n > 0 {
        let mut m8 = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut i = 0;
        while i < n {
            // SAFETY: i + 8 <= n <= seg.len(), so the load is in bounds.
            unsafe {
                m8 = _mm256_max_ps(m8, _mm256_loadu_ps(seg.as_ptr().add(i)));
            }
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), m8);
        for l in lanes {
            max = max.max(l);
        }
    }
    for &v in &seg[n..] {
        max = max.max(v);
    }

    // exp(v - max) with a running vector total.
    let max8 = _mm256_set1_ps(max);
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i < n {
        // SAFETY: i + 8 <= n <= seg.len() for the load and store.
        unsafe {
            let v = _mm256_loadu_ps(seg.as_ptr().add(i));
            let e = exp_nonpos_ps(_mm256_sub_ps(v, max8));
            _mm256_storeu_ps(seg.as_mut_ptr().add(i), e);
            acc = _mm256_add_ps(acc, e);
        }
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut total = 0.0f32;
    for l in lanes {
        total += l;
    }
    for v in &mut seg[n..] {
        *v = exp_approx(*v - max);
        total += *v;
    }

    if total > 0.0 {
        let t8 = _mm256_set1_ps(total);
        let mut i = 0;
        while i < n {
            // SAFETY: i + 8 <= n <= seg.len() for the load and store.
            unsafe {
                let v = _mm256_loadu_ps(seg.as_ptr().add(i));
                _mm256_storeu_ps(seg.as_mut_ptr().add(i), _mm256_div_ps(v, t8));
            }
            i += 8;
        }
        for v in &mut seg[n..] {
            *v /= total;
        }
    } else {
        let u = 1.0 / seg.len() as f32;
        for v in seg.iter_mut() {
            *v = u;
        }
    }
}
