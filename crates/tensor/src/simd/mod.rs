//! Hand-written 8-lane (`f32x8`-shaped) kernels for the hot `_into` paths.
//!
//! The build environment cannot pull `std::simd` (nightly) or a vendored
//! SIMD crate, so this module supplies the next best thing: a fixed-width
//! lane struct ([`F32x8`]) whose operations are written so the optimiser's
//! auto-vectoriser has no excuse — fixed-length arrays, no bounds checks in
//! the lane body, one operation per lane per statement — plus the
//! lane-friendly kernel variants the vectorized backend is built from
//! ([`axpy`], [`accumulate`], [`sum`], [`argmax`], [`col_sums_into`],
//! [`row_argmax_into`]).
//!
//! **Numerical contract:** every kernel here performs *exactly* the same
//! floating-point operations in *exactly* the same per-element order as its
//! scalar counterpart (`a * x + dst` stays two roundings — never a fused
//! multiply-add), so results are bit-identical to the naive loops. The
//! speed comes from unrolling, bounds-check elimination and cache blocking,
//! not from reassociating sums. `tests/backend_equivalence.rs` holds the
//! backends to that contract.
//!
//! The portable lane kernels in this module are one *tier* of a three-tier
//! runtime story. [`dispatch`] probes the CPU once at startup (or honours
//! the `BCPNN_SIMD` env var) and routes each call to the scalar loops, to
//! these lane kernels, or to the explicit AVX2+FMA intrinsics in the
//! (private) `avx2` module. New code should call through [`dispatch`]; the
//! functions here remain public as the portable tier's implementation and
//! for callers that need the fixed no-detection cost model.

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
pub mod dispatch;
pub mod exp;

use crate::matrix::Matrix;

/// Number of lanes in [`F32x8`] (AVX2-register-shaped).
pub const LANES: usize = 8;

/// A fixed 8-lane bundle of `f32`s: the portable-SIMD-shaped building block
/// of the vectorized backend.
///
/// ```
/// use bcpnn_tensor::simd::F32x8;
///
/// let a = F32x8::splat(2.0);
/// let b = F32x8::load(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
/// let mut out = [0.0f32; 8];
/// (a * b).store(&mut out);
/// assert_eq!(out, [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F32x8([f32; LANES]);

impl F32x8 {
    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Self([0.0; LANES])
    }

    /// Broadcast one value into every lane.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; LANES])
    }

    /// Load eight consecutive values.
    ///
    /// # Panics
    /// Panics if `src` holds fewer than eight elements.
    #[inline(always)]
    pub fn load(src: &[f32]) -> Self {
        let chunk: &[f32; LANES] = src[..LANES].try_into().expect("8-lane load");
        Self(*chunk)
    }

    /// Store the lanes into eight consecutive slots.
    ///
    /// # Panics
    /// Panics if `dst` holds fewer than eight elements.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        let chunk: &mut [f32; LANES] = (&mut dst[..LANES]).try_into().expect("8-lane store");
        *chunk = self.0;
    }

    /// `self + a · x` with the two-rounding (`mul` then `add`) semantics of
    /// the scalar backends — deliberately *not* a fused multiply-add, so the
    /// result stays bit-identical to the naive loop.
    #[inline(always)]
    pub fn mul_add(self, a: Self, x: Self) -> Self {
        let mut out = self.0;
        for ((o, av), xv) in out.iter_mut().zip(a.0.iter()).zip(x.0.iter()) {
            *o += *av * *xv;
        }
        Self(out)
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; LANES] {
        self.0
    }
}

/// Lane-wise addition.
impl std::ops::Add for F32x8 {
    type Output = Self;

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
            *o += *r;
        }
        Self(out)
    }
}

/// Lane-wise in-place addition (same per-lane order as `+`).
impl std::ops::AddAssign for F32x8 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

/// Lane-wise multiplication.
impl std::ops::Mul for F32x8 {
    type Output = Self;

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
            *o *= *r;
        }
        Self(out)
    }
}

/// `dst[j] += a · x[j]` for every `j`, eight lanes at a time.
///
/// Per-element operation order is identical to the scalar loop, so the
/// result is bit-exact; only the remainder tail (fewer than eight trailing
/// elements) runs scalar.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(dst: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(dst.len(), x.len(), "axpy: length mismatch");
    let av = F32x8::splat(a);
    let mut dst_chunks = dst.chunks_exact_mut(LANES);
    let mut x_chunks = x.chunks_exact(LANES);
    for (d, s) in dst_chunks.by_ref().zip(x_chunks.by_ref()) {
        F32x8::load(d).mul_add(av, F32x8::load(s)).store(d);
    }
    for (d, &s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(x_chunks.remainder())
    {
        *d += a * s;
    }
}

/// `dst[j] += src[j]` for every `j`, eight lanes at a time (bit-exact).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn accumulate(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "accumulate: length mismatch");
    let mut dst_chunks = dst.chunks_exact_mut(LANES);
    let mut src_chunks = src.chunks_exact(LANES);
    for (d, s) in dst_chunks.by_ref().zip(src_chunks.by_ref()) {
        (F32x8::load(d) + F32x8::load(s)).store(d);
    }
    for (d, &s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d += s;
    }
}

/// Left-to-right sum of a slice — same order as `vector::sum`, unrolled only
/// in address computation (a sequential sum cannot change association and
/// stay bit-exact, so this exists for the tail-free inner loops that want a
/// slice sum without an iterator chain).
#[inline]
pub fn sum(x: &[f32]) -> f32 {
    let mut s = 0.0f32;
    for &v in x {
        s += v;
    }
    s
}

/// Index of the first maximum of `x` (0 for an empty slice) with the exact
/// semantics of `vector::argmax`, but scanning eight candidates per step:
/// a chunk whose maximum does not beat the current best is skipped without
/// a per-element comparison, which is the common case on softmax outputs.
#[inline]
pub fn argmax(x: &[f32]) -> usize {
    if x.is_empty() {
        return 0;
    }
    let mut best = 0usize;
    let mut best_v = x[0];
    let mut base = 0usize;
    let mut chunks = x.chunks_exact(LANES);
    for chunk in chunks.by_ref() {
        // Lane-wise max; NaNs never win (`v > m` is false), matching the
        // strict `>` scan below.
        let mut m = chunk[0];
        for &v in &chunk[1..] {
            if v > m {
                m = v;
            }
        }
        if m > best_v {
            for (i, &v) in chunk.iter().enumerate() {
                if v > best_v {
                    best = base + i;
                    best_v = v;
                }
            }
        }
        base += LANES;
    }
    for (i, &v) in chunks.remainder().iter().enumerate() {
        if v > best_v {
            best = base + i;
            best_v = v;
        }
    }
    best
}

/// Per-column sums via lane-wide row accumulation: bit-identical to
/// `reduce::col_sums_into` (both accumulate rows top to bottom), but eight
/// columns per step.
pub fn col_sums_into(m: &Matrix<f32>, out: &mut Vec<f32>) {
    out.clear();
    out.resize(m.cols(), 0.0);
    for row in m.iter_rows() {
        accumulate(out, row);
    }
}

/// Per-row argmax via [`argmax`]: bit-identical to
/// `reduce::row_argmax_into`, with the eight-wide prescreen.
pub fn row_argmax_into(m: &Matrix<f32>, out: &mut Vec<usize>) {
    out.clear();
    out.extend(m.iter_rows().map(argmax));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::MatrixRng;
    use crate::{reduce, vector};

    #[test]
    fn lane_ops_match_scalar() {
        let a = F32x8::load(&[1.0, -2.0, 3.5, 0.0, 8.0, -0.25, 7.0, 2.0]);
        let b = F32x8::splat(1.5);
        assert_eq!(
            (a + b).to_array(),
            [2.5, -0.5, 5.0, 1.5, 9.5, 1.25, 8.5, 3.5]
        );
        assert_eq!(
            (a * b).to_array(),
            [1.5, -3.0, 5.25, 0.0, 12.0, -0.375, 10.5, 3.0]
        );
        let acc = F32x8::zero().mul_add(b, a);
        assert_eq!(acc.to_array(), (a * b).to_array());
    }

    #[test]
    fn axpy_is_bit_exact_vs_scalar_on_ragged_lengths() {
        let mut rng = MatrixRng::seed_from(7);
        for len in [0usize, 1, 7, 8, 9, 16, 33, 250] {
            let x: Vec<f32> = rng.uniform(1, len.max(1), -1.0, 1.0).into_vec();
            let x = &x[..len];
            let base: Vec<f32> = rng.uniform(1, len.max(1), -1.0, 1.0).into_vec();
            let base = &base[..len];
            let a = 0.37f32;
            let mut fast = base.to_vec();
            axpy(&mut fast, a, x);
            let mut slow = base.to_vec();
            for (d, &s) in slow.iter_mut().zip(x) {
                *d += a * s;
            }
            assert_eq!(fast, slow, "len {len}");
            let mut acc_fast = base.to_vec();
            accumulate(&mut acc_fast, x);
            let mut acc_slow = base.to_vec();
            for (d, &s) in acc_slow.iter_mut().zip(x) {
                *d += s;
            }
            assert_eq!(acc_fast, acc_slow, "accumulate len {len}");
        }
    }

    #[test]
    fn argmax_matches_vector_argmax() {
        let mut rng = MatrixRng::seed_from(11);
        for len in [0usize, 1, 3, 8, 9, 17, 64, 100] {
            let v: Vec<f32> = rng.uniform(1, len.max(1), -5.0, 5.0).into_vec();
            let v = &v[..len];
            assert_eq!(argmax(v), vector::argmax(v), "len {len}: {v:?}");
        }
        // Ties keep the first occurrence, exactly like the scalar scan.
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        // A NaN never wins, including in the prescreen path.
        let with_nan = [0.0, f32::NAN, 2.0, 1.0, 0.5, 0.25, 0.1, 0.0, -1.0];
        assert_eq!(argmax(&with_nan), vector::argmax(&with_nan));
    }

    #[test]
    fn matrix_reductions_match_reduce_module() {
        let mut rng = MatrixRng::seed_from(13);
        for (rows, cols) in [(0, 5), (3, 0), (1, 1), (4, 7), (5, 8), (6, 19), (9, 64)] {
            let m: Matrix<f32> = rng.uniform(rows, cols, -2.0, 2.0);
            let mut fast = Vec::new();
            col_sums_into(&m, &mut fast);
            assert_eq!(fast, reduce::col_sums(&m), "{rows}x{cols}");
            let mut idx = Vec::new();
            row_argmax_into(&m, &mut idx);
            assert_eq!(idx, reduce::row_argmax(&m), "{rows}x{cols}");
        }
    }

    #[test]
    fn sum_matches_sequential_order() {
        let v = [0.1f32, 0.7, -0.3, 1e-8, 4.0, -2.5, 0.25, 0.5, 0.125];
        let mut s = 0.0f32;
        for &x in &v {
            s += x;
        }
        assert_eq!(sum(&v), s);
    }
}
