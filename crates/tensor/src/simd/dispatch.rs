//! Runtime CPU-feature dispatch for the hot kernels.
//!
//! The binary ships every tier and picks one when the process starts:
//!
//! | tier | implementation | `exp` |
//! |------|----------------|-------|
//! | [`SimdTier::Scalar`] | plain loops, the pre-dispatch reference | libm |
//! | [`SimdTier::Lanes`]  | portable 8-lane kernels (`simd::{axpy, …}`) | [`exp::exp_approx`] |
//! | [`SimdTier::Avx2`]   | explicit AVX2+FMA intrinsics (`simd::avx2`) | same polynomial, fused |
//!
//! Selection runs once, at the first dispatched call: the `BCPNN_SIMD` env
//! var (`scalar` / `lanes` / `avx2`) wins if set and valid, otherwise
//! `is_x86_feature_detected!("avx2")` + `("fma")` promotes to AVX2 and
//! anything else (including every non-x86 target) gets the portable lane
//! tier. A request for `avx2` on a CPU without it falls back to `lanes`
//! with a one-time stderr notice — it never crashes and never executes an
//! unsupported instruction. Tests and benches may also force a tier
//! programmatically with [`set_tier`].
//!
//! # Numerical contract
//!
//! The elementwise kernels ([`axpy`], [`accumulate`], [`accumulate_i8`],
//! [`axpy_i8`], [`axpy_bf16`]) and the index kernels ([`argmax`],
//! [`col_sums_into`], [`row_argmax_into`]) return **bit-identical** results
//! on every tier — multiply-then-add stays two roundings everywhere, even
//! in the AVX2 tier. Only [`sum`] (reassociated on AVX2) and the softmax
//! kernels ([`softmax_slice`], [`softmax_groups_into`],
//! [`softmax_row_groups_par`]) differ across tiers, and those only within
//! the `exp_approx` tolerance documented in [`exp`]: the scalar tier keeps
//! the legacy libm loop bit-for-bit, the other two use the shared
//! polynomial (relative error ≤ 1e-6). `tests/simd_dispatch_equivalence.rs`
//! holds every tier to this table.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

use bcpnn_parallel::par_chunks_mut;

use super::exp;
use crate::matrix::Matrix;
use crate::reduce;

#[cfg(target_arch = "x86_64")]
use super::avx2;

/// Portable stand-ins with the AVX2 signatures so the `Avx2` match arms
/// compile on non-x86 targets. Unreachable at runtime: [`SimdTier::resolved`]
/// never yields `Avx2` when [`avx2_supported`] is false, which it always is
/// off x86-64.
#[cfg(not(target_arch = "x86_64"))]
mod avx2 {
    pub unsafe fn axpy(dst: &mut [f32], a: f32, x: &[f32]) {
        crate::simd::axpy(dst, a, x);
    }
    pub unsafe fn accumulate(dst: &mut [f32], src: &[f32]) {
        crate::simd::accumulate(dst, src);
    }
    pub unsafe fn sum(x: &[f32]) -> f32 {
        crate::simd::sum(x)
    }
    pub unsafe fn argmax(x: &[f32]) -> usize {
        crate::simd::argmax(x)
    }
    pub unsafe fn accumulate_i8(dst: &mut [f32], codes: &[i8]) {
        super::portable_accumulate_i8(dst, codes);
    }
    pub unsafe fn axpy_i8(dst: &mut [f32], a: f32, codes: &[i8]) {
        super::portable_axpy_i8(dst, a, codes);
    }
    pub unsafe fn axpy_bf16(dst: &mut [f32], a: f32, codes: &[u16]) {
        super::portable_axpy_bf16(dst, a, codes);
    }
    pub unsafe fn softmax_seg(seg: &mut [f32]) {
        super::softmax_seg_lanes(seg);
    }
}

/// Environment variable that forces a dispatch tier: `scalar`, `lanes` or
/// `avx2` (case-insensitive). Read once, at the first dispatched call.
pub const SIMD_ENV: &str = "BCPNN_SIMD";

/// One dispatch tier. See the [module docs](self) for the selection rules
/// and the per-tier numerical contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdTier {
    /// Plain scalar loops with libm `exp` — the pre-dispatch reference
    /// numerics, bit-for-bit.
    Scalar,
    /// Portable fixed-width lane kernels (`simd::{axpy, …}`,
    /// [`exp::exp_approx_x8`]); compiles on every target and relies on the
    /// auto-vectorizer for width.
    Lanes,
    /// Explicit AVX2+FMA intrinsics (`core::arch::x86_64`); requires a
    /// runtime feature probe and silently degrades to [`SimdTier::Lanes`]
    /// where unsupported.
    Avx2,
}

impl SimdTier {
    /// Canonical lower-case name (the accepted `BCPNN_SIMD` values).
    pub fn as_str(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Lanes => "lanes",
            SimdTier::Avx2 => "avx2",
        }
    }

    /// Parse a tier name as accepted by `BCPNN_SIMD` (case-insensitive;
    /// `scalar`, `lanes` and `avx2`, plus the aliases `libm` → scalar and
    /// `portable` → lanes).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" | "libm" => Some(SimdTier::Scalar),
            "lanes" | "portable" => Some(SimdTier::Lanes),
            "avx2" => Some(SimdTier::Avx2),
            _ => None,
        }
    }

    /// Downgrade an unsupported request: `Avx2` becomes `Lanes` (with a
    /// one-time stderr notice) unless the running CPU passed the feature
    /// probe. Every dispatching entry point funnels through this, which is
    /// what makes calling the `target_feature` kernels sound.
    fn resolved(self) -> Self {
        if self == SimdTier::Avx2 && !avx2_supported() {
            static NOTICE: Once = Once::new();
            NOTICE.call_once(|| {
                eprintln!(
                    "bcpnn-tensor: avx2 SIMD tier requested but the CPU lacks \
                     avx2+fma; falling back to the portable lane tier"
                );
            });
            return SimdTier::Lanes;
        }
        self
    }
}

/// Whether the running CPU supports the AVX2 tier (AVX2 *and* FMA —
/// the intrinsic kernels enable both). Always false off x86-64.
fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The best tier the running CPU supports, ignoring the env override:
/// [`SimdTier::Avx2`] where the probe passes, else [`SimdTier::Lanes`].
pub fn detected_tier() -> SimdTier {
    if avx2_supported() {
        SimdTier::Avx2
    } else {
        SimdTier::Lanes
    }
}

/// Space-separated feature set of the running CPU, for bench/report
/// metadata (e.g. `"sse4.1 avx avx2 fma avx512f"`). Reports the
/// architecture name when nothing relevant is detected or off x86-64.
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let probes = [
            ("sse4.1", std::arch::is_x86_feature_detected!("sse4.1")),
            ("avx", std::arch::is_x86_feature_detected!("avx")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
        ];
        let feats: Vec<&str> = probes.iter().filter(|(_, y)| *y).map(|(n, _)| *n).collect();
        if feats.is_empty() {
            std::env::consts::ARCH.to_string()
        } else {
            feats.join(" ")
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        std::env::consts::ARCH.to_string()
    }
}

// 0 = not yet selected; otherwise encode(tier) + 1.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn encode(tier: SimdTier) -> u8 {
    match tier {
        SimdTier::Scalar => 1,
        SimdTier::Lanes => 2,
        SimdTier::Avx2 => 3,
    }
}

fn decode(v: u8) -> SimdTier {
    match v {
        1 => SimdTier::Scalar,
        2 => SimdTier::Lanes,
        3 => SimdTier::Avx2,
        _ => unreachable!("invalid encoded SIMD tier {v}"),
    }
}

/// The tier selected from `BCPNN_SIMD` / detection on first use.
fn init_tier() -> SimdTier {
    match std::env::var(SIMD_ENV) {
        Ok(raw) => match SimdTier::parse(&raw) {
            Some(tier) => tier.resolved(),
            None => {
                static NOTICE: Once = Once::new();
                NOTICE.call_once(|| {
                    eprintln!(
                        "bcpnn-tensor: unrecognised {SIMD_ENV}={raw:?} \
                         (expected scalar|lanes|avx2); using detection"
                    );
                });
                detected_tier()
            }
        },
        Err(_) => detected_tier(),
    }
}

/// The tier every un-suffixed dispatch call routes to. Selected once — env
/// override first, CPU detection otherwise — then cached in an atomic;
/// subsequent calls are a single relaxed load.
pub fn active_tier() -> SimdTier {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            let tier = init_tier();
            ACTIVE.store(encode(tier), Ordering::Relaxed);
            tier
        }
        v => decode(v),
    }
}

/// Force the active tier for this process (tests and benches). The request
/// is resolved first — asking for AVX2 on a CPU without it installs the
/// lane tier — and the tier actually installed is returned. To restore,
/// capture [`active_tier`] beforehand and set it back.
pub fn set_tier(tier: SimdTier) -> SimdTier {
    let tier = tier.resolved();
    ACTIVE.store(encode(tier), Ordering::Relaxed);
    tier
}

// ---------------------------------------------------------------------------
// Portable implementations shared by the Scalar/Lanes arms (and the non-x86
// AVX2 stubs).
// ---------------------------------------------------------------------------

fn scalar_axpy(dst: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(dst.len(), x.len(), "axpy: length mismatch");
    for (d, &s) in dst.iter_mut().zip(x) {
        *d += a * s;
    }
}

fn scalar_accumulate(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "accumulate: length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `dst[j] += codes[j] as f32` — i8→f32 conversion is exact, so every tier
/// is bit-identical. The plain loop is the scalar *and* lane tier (the
/// auto-vectorizer widens it); AVX2 uses `_mm256_cvtepi8_epi32`.
fn portable_accumulate_i8(dst: &mut [f32], codes: &[i8]) {
    assert_eq!(dst.len(), codes.len(), "accumulate_i8: length mismatch");
    for (d, &c) in dst.iter_mut().zip(codes) {
        *d += f32::from(c);
    }
}

fn portable_axpy_i8(dst: &mut [f32], a: f32, codes: &[i8]) {
    assert_eq!(dst.len(), codes.len(), "axpy_i8: length mismatch");
    for (d, &c) in dst.iter_mut().zip(codes) {
        *d += a * f32::from(c);
    }
}

fn portable_axpy_bf16(dst: &mut [f32], a: f32, codes: &[u16]) {
    assert_eq!(dst.len(), codes.len(), "axpy_bf16: length mismatch");
    for (d, &c) in dst.iter_mut().zip(codes) {
        *d += a * f32::from_bits(u32::from(c) << 16);
    }
}

/// The legacy softmax loop, bit-for-bit: libm `exp`, running total, divide
/// (uniform fallback on a non-positive total). This *is* the pre-dispatch
/// `NaiveBackend::grouped_softmax` body, hoisted here so every backend
/// shares one definition.
fn softmax_seg_scalar(seg: &mut [f32]) {
    if seg.is_empty() {
        return;
    }
    let max = seg.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut total = 0.0f32;
    for v in seg.iter_mut() {
        *v = (*v - max).exp();
        total += *v;
    }
    if total > 0.0 {
        for v in seg.iter_mut() {
            *v /= total;
        }
    } else {
        let u = 1.0 / seg.len() as f32;
        for v in seg.iter_mut() {
            *v = u;
        }
    }
}

/// Lane-tier softmax: same structure as the scalar loop, but `exp` is the
/// shared polynomial ([`exp::exp_approx_x8`] eight lanes at a time, scalar
/// [`exp::exp_approx`] on the tail) and the eight per-lane partial totals
/// are reduced in lane order before the tail is added.
fn softmax_seg_lanes(seg: &mut [f32]) {
    if seg.is_empty() {
        return;
    }
    let max = seg.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut lane_totals = [0.0f32; super::LANES];
    let mut chunks = seg.chunks_exact_mut(super::LANES);
    for chunk in chunks.by_ref() {
        let mut xs = [0.0f32; super::LANES];
        for (x, &v) in xs.iter_mut().zip(chunk.iter()) {
            *x = v - max;
        }
        let es = exp::exp_approx_x8(xs);
        for ((c, e), t) in chunk.iter_mut().zip(es).zip(lane_totals.iter_mut()) {
            *c = e;
            *t += e;
        }
    }
    let mut total = 0.0f32;
    for t in lane_totals {
        total += t;
    }
    for v in chunks.into_remainder().iter_mut() {
        *v = exp::exp_approx(*v - max);
        total += *v;
    }
    if total > 0.0 {
        for v in seg.iter_mut() {
            *v /= total;
        }
    } else {
        let u = 1.0 / seg.len() as f32;
        for v in seg.iter_mut() {
            *v = u;
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatched kernels. Each comes in two forms: the un-suffixed function
// routes to [`active_tier`]; the `_with` form takes an explicit tier (it is
// re-resolved, so passing `Avx2` is safe on any machine).
// ---------------------------------------------------------------------------

/// `dst[j] += a · x[j]` on the given tier (bit-identical across tiers).
pub fn axpy_with(tier: SimdTier, dst: &mut [f32], a: f32, x: &[f32]) {
    match tier.resolved() {
        SimdTier::Scalar => scalar_axpy(dst, a, x),
        SimdTier::Lanes => super::axpy(dst, a, x),
        // SAFETY: `resolved()` returns Avx2 only when the runtime probe
        // confirmed avx2+fma on this CPU (never off x86-64).
        SimdTier::Avx2 => unsafe { avx2::axpy(dst, a, x) },
    }
}

/// `dst[j] += a · x[j]` on the active tier.
pub fn axpy(dst: &mut [f32], a: f32, x: &[f32]) {
    axpy_with(active_tier(), dst, a, x);
}

/// `dst[j] += src[j]` on the given tier (bit-identical across tiers).
pub fn accumulate_with(tier: SimdTier, dst: &mut [f32], src: &[f32]) {
    match tier.resolved() {
        SimdTier::Scalar => scalar_accumulate(dst, src),
        SimdTier::Lanes => super::accumulate(dst, src),
        // SAFETY: `resolved()` returns Avx2 only when the runtime probe
        // confirmed avx2+fma on this CPU (never off x86-64).
        SimdTier::Avx2 => unsafe { avx2::accumulate(dst, src) },
    }
}

/// `dst[j] += src[j]` on the active tier.
pub fn accumulate(dst: &mut [f32], src: &[f32]) {
    accumulate_with(active_tier(), dst, src);
}

/// Slice sum on the given tier. Scalar and lane tiers sum sequentially
/// (bit-identical); the AVX2 tier reassociates into eight partial sums, so
/// its result may differ in the last bits.
pub fn sum_with(tier: SimdTier, x: &[f32]) -> f32 {
    match tier.resolved() {
        SimdTier::Scalar | SimdTier::Lanes => super::sum(x),
        // SAFETY: `resolved()` returns Avx2 only when the runtime probe
        // confirmed avx2+fma on this CPU (never off x86-64).
        SimdTier::Avx2 => unsafe { avx2::sum(x) },
    }
}

/// Slice sum on the active tier.
pub fn sum(x: &[f32]) -> f32 {
    sum_with(active_tier(), x)
}

/// Index of the first maximum (0 for empty) on the given tier. All tiers
/// implement the exact scalar-scan semantics — strict `>`, first
/// occurrence, NaNs never win — so the index is identical everywhere.
pub fn argmax_with(tier: SimdTier, x: &[f32]) -> usize {
    match tier.resolved() {
        SimdTier::Scalar => crate::vector::argmax(x),
        SimdTier::Lanes => super::argmax(x),
        // SAFETY: `resolved()` returns Avx2 only when the runtime probe
        // confirmed avx2+fma on this CPU (never off x86-64).
        SimdTier::Avx2 => unsafe { avx2::argmax(x) },
    }
}

/// Index of the first maximum on the active tier.
pub fn argmax(x: &[f32]) -> usize {
    argmax_with(active_tier(), x)
}

/// Per-column sums into a reused buffer on the given tier (bit-identical:
/// every tier accumulates rows top to bottom).
pub fn col_sums_into_with(tier: SimdTier, m: &Matrix<f32>, out: &mut Vec<f32>) {
    match tier.resolved() {
        SimdTier::Scalar => reduce::col_sums_into(m, out),
        SimdTier::Lanes => super::col_sums_into(m, out),
        SimdTier::Avx2 => {
            out.clear();
            out.resize(m.cols(), 0.0);
            for row in m.iter_rows() {
                // SAFETY: `resolved()` returns Avx2 only when the runtime
                // probe confirmed avx2+fma on this CPU (never off x86-64).
                unsafe { avx2::accumulate(out, row) };
            }
        }
    }
}

/// Per-column sums into a reused buffer on the active tier.
pub fn col_sums_into(m: &Matrix<f32>, out: &mut Vec<f32>) {
    col_sums_into_with(active_tier(), m, out);
}

/// Per-row argmax into a reused buffer on the given tier (bit-identical,
/// same semantics as [`argmax_with`]).
pub fn row_argmax_into_with(tier: SimdTier, m: &Matrix<f32>, out: &mut Vec<usize>) {
    match tier.resolved() {
        SimdTier::Scalar => reduce::row_argmax_into(m, out),
        SimdTier::Lanes => super::row_argmax_into(m, out),
        SimdTier::Avx2 => {
            out.clear();
            // SAFETY: `resolved()` returns Avx2 only when the runtime probe
            // confirmed avx2+fma on this CPU (never off x86-64).
            out.extend(m.iter_rows().map(|row| unsafe { avx2::argmax(row) }));
        }
    }
}

/// Per-row argmax into a reused buffer on the active tier.
pub fn row_argmax_into(m: &Matrix<f32>, out: &mut Vec<usize>) {
    row_argmax_into_with(active_tier(), m, out);
}

/// Allocating convenience for [`row_argmax_into`] on the active tier (the
/// `predict` entry points, where the caller keeps the vector).
pub fn row_argmax(m: &Matrix<f32>) -> Vec<usize> {
    let mut out = Vec::new();
    row_argmax_into(m, &mut out);
    out
}

/// `dst[j] += codes[j] as f32` (int8 add-only fast path) on the given tier;
/// bit-identical across tiers (the conversion is exact).
pub fn accumulate_i8_with(tier: SimdTier, dst: &mut [f32], codes: &[i8]) {
    match tier.resolved() {
        SimdTier::Scalar | SimdTier::Lanes => portable_accumulate_i8(dst, codes),
        // SAFETY: `resolved()` returns Avx2 only when the runtime probe
        // confirmed avx2+fma on this CPU (never off x86-64).
        SimdTier::Avx2 => unsafe { avx2::accumulate_i8(dst, codes) },
    }
}

/// `dst[j] += codes[j] as f32` on the active tier.
pub fn accumulate_i8(dst: &mut [f32], codes: &[i8]) {
    accumulate_i8_with(active_tier(), dst, codes);
}

/// `dst[j] += a · (codes[j] as f32)` (int8 axpy) on the given tier;
/// bit-identical across tiers.
pub fn axpy_i8_with(tier: SimdTier, dst: &mut [f32], a: f32, codes: &[i8]) {
    match tier.resolved() {
        SimdTier::Scalar | SimdTier::Lanes => portable_axpy_i8(dst, a, codes),
        // SAFETY: `resolved()` returns Avx2 only when the runtime probe
        // confirmed avx2+fma on this CPU (never off x86-64).
        SimdTier::Avx2 => unsafe { avx2::axpy_i8(dst, a, codes) },
    }
}

/// `dst[j] += a · (codes[j] as f32)` on the active tier.
pub fn axpy_i8(dst: &mut [f32], a: f32, codes: &[i8]) {
    axpy_i8_with(active_tier(), dst, a, codes);
}

/// `dst[j] += a · bf16_decode(codes[j])` (bfloat16 axpy) on the given tier;
/// bit-identical across tiers (decoding is an exact bit shift).
pub fn axpy_bf16_with(tier: SimdTier, dst: &mut [f32], a: f32, codes: &[u16]) {
    match tier.resolved() {
        SimdTier::Scalar | SimdTier::Lanes => portable_axpy_bf16(dst, a, codes),
        // SAFETY: `resolved()` returns Avx2 only when the runtime probe
        // confirmed avx2+fma on this CPU (never off x86-64).
        SimdTier::Avx2 => unsafe { avx2::axpy_bf16(dst, a, codes) },
    }
}

/// `dst[j] += a · bf16_decode(codes[j])` on the active tier.
pub fn axpy_bf16(dst: &mut [f32], a: f32, codes: &[u16]) {
    axpy_bf16_with(active_tier(), dst, a, codes);
}

/// Softmax one contiguous group in place on the given tier: subtract-max,
/// exponentiate, normalise (uniform fallback when the total is not
/// positive, which only finite inputs never trigger).
///
/// The scalar tier is bit-for-bit the legacy libm loop; the lane and AVX2
/// tiers use the shared [`exp::exp_approx`] polynomial and agree with the
/// scalar tier within its documented ≤ 1e-6 relative error.
pub fn softmax_slice_with(tier: SimdTier, seg: &mut [f32]) {
    match tier.resolved() {
        SimdTier::Scalar => softmax_seg_scalar(seg),
        SimdTier::Lanes => softmax_seg_lanes(seg),
        // SAFETY: `resolved()` returns Avx2 only when the runtime probe
        // confirmed avx2+fma on this CPU (never off x86-64).
        SimdTier::Avx2 => unsafe { avx2::softmax_seg(seg) },
    }
}

/// Softmax one contiguous group in place on the active tier.
pub fn softmax_slice(seg: &mut [f32]) {
    softmax_slice_with(active_tier(), seg);
}

/// Grouped softmax over a matrix in place (the hypercolumn normalisation):
/// every row is split into `group`-wide segments and each segment softmaxed
/// independently via [`softmax_slice_with`]. Sequential over rows — the
/// shared definition behind `NaiveBackend::grouped_softmax` and the
/// quantized pipeline.
///
/// # Panics
/// Panics if `group` is zero or does not evenly divide the columns.
pub fn softmax_groups_into_with(tier: SimdTier, m: &mut Matrix<f32>, group: usize) {
    assert!(group > 0, "softmax group must be positive");
    assert_eq!(
        m.cols() % group,
        0,
        "softmax group {group} does not divide {} columns",
        m.cols()
    );
    let tier = tier.resolved();
    for r in 0..m.rows() {
        for seg in m.row_mut(r).chunks_mut(group) {
            softmax_slice_with(tier, seg);
        }
    }
}

/// Grouped softmax over a matrix in place on the active tier.
pub fn softmax_groups_into(m: &mut Matrix<f32>, group: usize) {
    softmax_groups_into_with(active_tier(), m, group);
}

/// [`softmax_groups_into`] parallelised over rows (same per-segment kernel,
/// same results — rows are independent): the variant the parallel backend
/// and the batch `predict_proba` paths call. Pass `group == cols` for a
/// plain per-row softmax.
///
/// # Panics
/// Panics if `group` is zero or does not evenly divide the columns.
pub fn softmax_row_groups_par(m: &mut Matrix<f32>, group: usize) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    assert!(group > 0, "softmax group must be positive");
    assert_eq!(
        cols % group,
        0,
        "softmax group {group} does not divide {cols} columns"
    );
    let tier = active_tier().resolved();
    par_chunks_mut(m.as_mut_slice(), cols, |_, row| {
        for seg in row.chunks_mut(group) {
            softmax_slice_with(tier, seg);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_canonical_names_and_aliases() {
        assert_eq!(SimdTier::parse("scalar"), Some(SimdTier::Scalar));
        assert_eq!(SimdTier::parse("LANES"), Some(SimdTier::Lanes));
        assert_eq!(SimdTier::parse(" avx2 "), Some(SimdTier::Avx2));
        assert_eq!(SimdTier::parse("libm"), Some(SimdTier::Scalar));
        assert_eq!(SimdTier::parse("portable"), Some(SimdTier::Lanes));
        assert_eq!(SimdTier::parse("avx512"), None);
        for t in [SimdTier::Scalar, SimdTier::Lanes, SimdTier::Avx2] {
            assert_eq!(SimdTier::parse(t.as_str()), Some(t));
        }
    }

    #[test]
    fn set_tier_installs_a_supported_tier() {
        let prev = active_tier();
        let got = set_tier(SimdTier::Avx2);
        // Either the CPU has AVX2 (tier sticks) or it degraded to lanes.
        assert!(got == SimdTier::Avx2 || got == SimdTier::Lanes);
        assert_eq!(active_tier(), got);
        assert_eq!(set_tier(prev), prev, "restoring a held tier is exact");
    }

    #[test]
    fn detected_tier_is_never_scalar() {
        assert_ne!(detected_tier(), SimdTier::Scalar);
    }

    #[test]
    fn cpu_features_is_nonempty() {
        assert!(!cpu_features().is_empty());
    }
}
