//! Matrix reductions: row/column sums, means, maxima, argmax, norms, and
//! grouped (per-hypercolumn) softmax.

use bcpnn_parallel::par_chunks_mut;

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::vector;

/// Sum of every element.
pub fn sum<S: Scalar>(m: &Matrix<S>) -> S {
    vector::sum(m.as_slice())
}

/// Mean of every element (0 for an empty matrix).
pub fn mean<S: Scalar>(m: &Matrix<S>) -> S {
    vector::mean(m.as_slice())
}

/// Frobenius norm.
pub fn frobenius_norm<S: Scalar>(m: &Matrix<S>) -> S {
    vector::norm2(m.as_slice())
}

/// Per-row sums (length `rows`).
pub fn row_sums<S: Scalar>(m: &Matrix<S>) -> Vec<S> {
    m.iter_rows().map(vector::sum).collect()
}

/// Per-row maxima (length `rows`).
pub fn row_max<S: Scalar>(m: &Matrix<S>) -> Vec<S> {
    m.iter_rows().map(|r| vector::max(r)).collect()
}

/// Per-row argmax (length `rows`).
pub fn row_argmax<S: Scalar>(m: &Matrix<S>) -> Vec<usize> {
    let mut out = Vec::new();
    row_argmax_into(m, &mut out);
    out
}

/// Per-row argmax written into a caller-provided buffer (cleared and
/// refilled; reusing it across batches avoids a per-batch allocation).
pub fn row_argmax_into<S: Scalar>(m: &Matrix<S>, out: &mut Vec<usize>) {
    out.clear();
    out.extend(m.iter_rows().map(vector::argmax));
}

/// Per-column sums (length `cols`).
pub fn col_sums<S: Scalar>(m: &Matrix<S>) -> Vec<S> {
    let mut out = Vec::new();
    col_sums_into(m, &mut out);
    out
}

/// Per-column sums written into a caller-provided buffer (cleared, resized
/// to `cols`, and refilled — bit-identical to [`col_sums`]).
pub fn col_sums_into<S: Scalar>(m: &Matrix<S>, out: &mut Vec<S>) {
    out.clear();
    out.resize(m.cols(), S::ZERO);
    for row in m.iter_rows() {
        for (o, &v) in out.iter_mut().zip(row.iter()) {
            *o += v;
        }
    }
}

/// Per-column means (length `cols`).
pub fn col_means<S: Scalar>(m: &Matrix<S>) -> Vec<S> {
    let mut out = col_sums(m);
    if m.rows() > 0 {
        let inv = S::ONE / S::from_usize(m.rows());
        for v in out.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// Per-column (population) variances (length `cols`).
pub fn col_variances<S: Scalar>(m: &Matrix<S>) -> Vec<S> {
    let means = col_means(m);
    let mut out = vec![S::ZERO; m.cols()];
    if m.rows() == 0 {
        return out;
    }
    for row in m.iter_rows() {
        for ((o, &v), &mu) in out.iter_mut().zip(row.iter()).zip(means.iter()) {
            let d = v - mu;
            *o += d * d;
        }
    }
    let inv = S::ONE / S::from_usize(m.rows());
    for v in out.iter_mut() {
        *v *= inv;
    }
    out
}

/// Apply an independent softmax to every row, in place (parallel over rows).
pub fn softmax_rows<S: Scalar>(m: &mut Matrix<S>) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    par_chunks_mut(m.as_mut_slice(), cols, |_, row| {
        vector::softmax_inplace(row);
    });
}

/// Apply a softmax independently to every contiguous group of `group` columns
/// of every row, in place.
///
/// This is the hypercolumn-wise normalisation of the BCPNN hidden layer: a
/// row holds the concatenated supports of all HCUs (`n_hcu * n_mcu` values),
/// and each HCU's `n_mcu`-wide segment must form its own probability
/// distribution.
///
/// # Panics
/// Panics if `group` does not evenly divide the number of columns.
pub fn softmax_row_groups<S: Scalar>(m: &mut Matrix<S>, group: usize) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    assert!(group > 0, "softmax_row_groups: group must be positive");
    assert_eq!(
        cols % group,
        0,
        "softmax_row_groups: group {group} does not divide cols {cols}"
    );
    par_chunks_mut(m.as_mut_slice(), cols, |_, row| {
        for seg in row.chunks_mut(group) {
            vector::softmax_inplace(seg);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<f64> {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn scalar_reductions() {
        let m = sample();
        assert_eq!(sum(&m), 21.0);
        assert_eq!(mean(&m), 3.5);
        assert!((frobenius_norm(&m) - (91.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn row_reductions() {
        let m = sample();
        assert_eq!(row_sums(&m), vec![6.0, 15.0]);
        assert_eq!(row_max(&m), vec![3.0, 6.0]);
        assert_eq!(row_argmax(&m), vec![2, 2]);
    }

    #[test]
    fn col_reductions() {
        let m = sample();
        assert_eq!(col_sums(&m), vec![5.0, 7.0, 9.0]);
        assert_eq!(col_means(&m), vec![2.5, 3.5, 4.5]);
        let v = col_variances(&m);
        for x in v {
            assert!((x - 2.25).abs() < 1e-12);
        }
    }

    #[test]
    fn into_reductions_match_allocating_twins() {
        let m = sample();
        let mut sums = vec![99.0; 7];
        col_sums_into(&m, &mut sums);
        assert_eq!(sums, col_sums(&m));
        let mut idx = vec![42usize; 5];
        row_argmax_into(&m, &mut idx);
        assert_eq!(idx, row_argmax(&m));
    }

    #[test]
    fn empty_matrix_reductions() {
        let m: Matrix<f32> = Matrix::zeros(0, 3);
        assert_eq!(sum(&m), 0.0);
        assert_eq!(col_sums(&m), vec![0.0; 3]);
        assert_eq!(col_variances(&m), vec![0.0; 3]);
        assert!(row_sums(&m).is_empty());
    }

    #[test]
    fn softmax_rows_normalises_each_row() {
        let mut m = sample().cast::<f32>();
        softmax_rows(&mut m);
        for r in 0..m.rows() {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_row_groups_normalises_each_group() {
        // 2 rows, 3 groups of 2 columns.
        let mut m = Matrix::<f32>::from_fn(2, 6, |r, c| (r * 6 + c) as f32 * 0.1);
        softmax_row_groups(&mut m, 2);
        for r in 0..2 {
            let row = m.row(r);
            for g in 0..3 {
                let s: f32 = row[g * 2..(g + 1) * 2].iter().sum();
                assert!((s - 1.0).abs() < 1e-5, "group {g} of row {r} sums to {s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn softmax_row_groups_rejects_bad_group() {
        let mut m = Matrix::<f32>::zeros(1, 5);
        softmax_row_groups(&mut m, 2);
    }

    #[test]
    fn softmax_row_groups_with_full_width_equals_softmax_rows() {
        let a = Matrix::<f32>::from_fn(3, 4, |r, c| ((r * 7 + c * 3) % 5) as f32);
        let mut g = a.clone();
        let mut s = a.clone();
        softmax_row_groups(&mut g, 4);
        softmax_rows(&mut s);
        assert!(g.max_abs_diff(&s) < 1e-6);
    }
}
