//! Property-based tests for the dense linear-algebra substrate.

use bcpnn_tensor::{gemm, gemm_blocked, gemm_naive, gemm_nt, gemm_tn, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with dimensions in [1, max_dim] and bounded entries.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix<f64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: a compatible (A, B) pair for GEMM with bounded dimensions.
fn gemm_pair(max_dim: usize) -> impl Strategy<Value = (Matrix<f64>, Matrix<f64>)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        let a =
            prop::collection::vec(-5.0f64..5.0, m * k).prop_map(move |d| Matrix::from_vec(m, k, d));
        let b =
            prop::collection::vec(-5.0f64..5.0, k * n).prop_map(move |d| Matrix::from_vec(k, n, d));
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involutive(m in matrix_strategy(12)) {
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn blocked_gemm_matches_naive((a, b) in gemm_pair(24)) {
        let mut c1 = Matrix::zeros(a.rows(), b.cols());
        let mut c2 = Matrix::zeros(a.rows(), b.cols());
        gemm_naive(1.0, &a, &b, 0.0, &mut c1);
        gemm_blocked(1.0, &a, &b, 0.0, &mut c2);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-9);
    }

    #[test]
    fn parallel_gemm_matches_naive((a, b) in gemm_pair(24)) {
        let mut c1 = Matrix::zeros(a.rows(), b.cols());
        let mut c2 = Matrix::zeros(a.rows(), b.cols());
        gemm_naive(1.0, &a, &b, 0.0, &mut c1);
        gemm(1.0, &a, &b, 0.0, &mut c2);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-9);
    }

    #[test]
    fn gemm_tn_equals_explicit_transpose((a, b) in gemm_pair(16)) {
        // gemm_tn takes A stored as k x m and computes Aᵀ·B. Passing aᵀ
        // (k x m) must therefore reproduce the plain product a·b.
        let a_t = a.transposed();
        let mut expected = Matrix::zeros(a.rows(), b.cols());
        gemm_naive(1.0, &a, &b, 0.0, &mut expected);
        let mut got = Matrix::zeros(a.rows(), b.cols());
        gemm_tn(1.0, &a_t, &b, 0.0, &mut got);
        prop_assert!(expected.max_abs_diff(&got) < 1e-9);
    }

    #[test]
    fn gemm_nt_equals_explicit_transpose((a, b) in gemm_pair(16)) {
        // C = A·Bᵀ with B given as n x k: reuse the pair by transposing b.
        let bt = b.transposed(); // n x k with n = b.cols()
        let mut expected = Matrix::zeros(a.rows(), b.cols());
        gemm_naive(1.0, &a, &b, 0.0, &mut expected);
        let mut got = Matrix::zeros(a.rows(), b.cols());
        gemm_nt(1.0, &a, &bt, 0.0, &mut got);
        prop_assert!(expected.max_abs_diff(&got) < 1e-9);
    }

    #[test]
    fn gemm_is_linear_in_alpha((a, b) in gemm_pair(12), alpha in -3.0f64..3.0) {
        let mut c_unit = Matrix::zeros(a.rows(), b.cols());
        gemm(1.0, &a, &b, 0.0, &mut c_unit);
        let mut c_alpha = Matrix::zeros(a.rows(), b.cols());
        gemm(alpha, &a, &b, 0.0, &mut c_alpha);
        let scaled = c_unit.map(|v| v * alpha);
        prop_assert!(scaled.max_abs_diff(&c_alpha) < 1e-8);
    }

    #[test]
    fn identity_is_neutral(m in matrix_strategy(16)) {
        let id = Matrix::identity(m.cols());
        let mut c = Matrix::zeros(m.rows(), m.cols());
        gemm(1.0, &m, &id, 0.0, &mut c);
        prop_assert!(c.max_abs_diff(&m) < 1e-12);
    }

    #[test]
    fn softmax_rows_always_normalises(m in matrix_strategy(16)) {
        let mut s = m.clone();
        bcpnn_tensor::reduce::softmax_rows(&mut s);
        for r in 0..s.rows() {
            let total: f64 = s.row(r).iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn row_sums_equal_total(m in matrix_strategy(16)) {
        let total: f64 = bcpnn_tensor::reduce::sum(&m);
        let by_rows: f64 = bcpnn_tensor::reduce::row_sums(&m).iter().sum();
        prop_assert!((total - by_rows).abs() < 1e-8);
    }

    #[test]
    fn io_roundtrip_preserves_matrix(m in matrix_strategy(10)) {
        let mut buf = Vec::new();
        bcpnn_tensor::write_matrix(&m, &mut buf).unwrap();
        let back: Matrix<f64> = bcpnn_tensor::read_matrix(&buf[..]).unwrap();
        prop_assert!(m.max_abs_diff(&back) < 1e-9);
    }

    #[test]
    fn quantile_boundaries_are_sorted(data in prop::collection::vec(-100.0f64..100.0, 20..200), k in 2usize..12) {
        let b = bcpnn_tensor::stats::quantile_boundaries(&data, k);
        prop_assert_eq!(b.len(), k - 1);
        prop_assert!(b.windows(2).all(|w| w[0] <= w[1]));
        // Every data point lands in a valid bin.
        for &x in &data {
            prop_assert!(bcpnn_tensor::stats::bin_index(&b, x) < k);
        }
    }
}
