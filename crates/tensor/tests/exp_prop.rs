//! Property tests for the shared softmax `exp` polynomial
//! (`simd::exp::exp_approx`), pinning the accuracy contract its module
//! docs promise: relative error ≤ 1e-6 against `f64` `exp` over the whole
//! non-overflowing domain, exactness at zero, finiteness everywhere, and
//! monotonicity up to the documented 2-ulp slack.

use bcpnn_tensor::simd::exp::{exp_approx, exp_approx_x8, EXP_HI, EXP_LO};
use proptest::prelude::*;

/// The documented relative-error bound.
const REL_ERR: f64 = 1e-6;

/// Documented monotonicity slack: ~2 ulp expressed multiplicatively.
const MONO_SLACK: f32 = 5.0e-7;

fn rel_err(x: f32) -> f64 {
    let want = f64::from(x).exp();
    let got = f64::from(exp_approx(x));
    ((got - want) / want).abs()
}

#[test]
fn exact_at_zero() {
    assert_eq!(exp_approx(0.0).to_bits(), 1.0f32.to_bits());
    assert_eq!(exp_approx(-0.0).to_bits(), 1.0f32.to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The softmax feeds max-subtracted supports: `[-87, 0]`. This range is
    /// the one end-to-end predict accuracy rides on.
    #[test]
    fn relative_error_bound_on_softmax_range(x in -87.0f32..=0.0) {
        prop_assert!(
            rel_err(x) <= REL_ERR,
            "exp_approx({x}) off by {} (> {REL_ERR})",
            rel_err(x)
        );
    }

    /// The bound holds over the whole non-overflowing domain, not just the
    /// softmax slice of it.
    #[test]
    fn relative_error_bound_on_full_domain(x in -87.0f32..=88.0) {
        prop_assert!(
            rel_err(x) <= REL_ERR,
            "exp_approx({x}) off by {} (> {REL_ERR})",
            rel_err(x)
        );
    }

    /// `a <= b` implies `exp_approx(a) <= exp_approx(b)` up to ~2 ulp —
    /// bitwise monotonicity is *not* promised at range-reduction seams
    /// (libm carries the same caveat), but violations stay inside the
    /// relative-error bound.
    #[test]
    fn monotone_within_documented_slack(a in -87.0f32..=88.0, b in -87.0f32..=88.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let e_lo = exp_approx(lo);
        let e_hi = exp_approx(hi);
        prop_assert!(
            e_lo <= e_hi * (1.0 + MONO_SLACK),
            "exp_approx({lo}) = {e_lo} > exp_approx({hi}) = {e_hi} beyond slack"
        );
    }

    /// Any finite input maps to a finite, strictly positive result — the
    /// clamp keeps both tails inside `f32` range.
    #[test]
    fn finite_inputs_map_to_finite_positive(x in prop::num::f32::NORMAL) {
        let y = exp_approx(x);
        prop_assert!(y.is_finite(), "exp_approx({x}) = {y}");
        prop_assert!(y > 0.0, "exp_approx({x}) = {y}");
        // Saturated tails land on the clamp images.
        if x <= EXP_LO {
            prop_assert_eq!(y.to_bits(), exp_approx(EXP_LO).to_bits());
        }
        if x >= EXP_HI {
            prop_assert_eq!(y.to_bits(), exp_approx(EXP_HI).to_bits());
        }
    }

    /// The 8-wide array form the lane tier uses is bit-identical to eight
    /// scalar calls.
    #[test]
    fn x8_is_bitwise_scalar(xs in prop::collection::vec(-90.0f32..=89.0, 8)) {
        let arr: [f32; 8] = xs.as_slice().try_into().unwrap();
        let out = exp_approx_x8(arr);
        for (x, o) in arr.iter().zip(out) {
            prop_assert_eq!(o.to_bits(), exp_approx(*x).to_bits());
        }
    }
}
