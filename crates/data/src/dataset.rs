//! The labeled dataset container shared by every experiment.

use bcpnn_tensor::{Matrix, MatrixRng};

/// A labeled dataset: a dense feature matrix (`n_samples x n_features`),
/// one integer label per row, and feature names for reporting / receptive
/// field inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature matrix, one row per sample.
    pub features: Matrix<f32>,
    /// Class label of each sample (`0 = background`, `1 = signal` for Higgs).
    pub labels: Vec<usize>,
    /// Human-readable feature names (length = `n_features`).
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Build a dataset, generating `f{i}` names when none are supplied.
    ///
    /// # Panics
    /// Panics if the label count does not match the number of rows, or the
    /// name count does not match the number of columns.
    pub fn new(
        features: Matrix<f32>,
        labels: Vec<usize>,
        feature_names: Option<Vec<String>>,
    ) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "Dataset: {} rows but {} labels",
            features.rows(),
            labels.len()
        );
        let names = feature_names
            .unwrap_or_else(|| (0..features.cols()).map(|i| format!("f{i}")).collect());
        assert_eq!(
            names.len(),
            features.cols(),
            "Dataset: {} names but {} features",
            names.len(),
            features.cols()
        );
        Self {
            features,
            labels,
            feature_names: names,
        }
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.features.rows()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.features.cols()
    }

    /// Number of distinct classes (max label + 1; 0 for an empty dataset).
    pub fn n_classes(&self) -> usize {
        self.labels.iter().max().map_or(0, |m| m + 1)
    }

    /// Per-class sample counts (length `n_classes`).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Extract the sub-dataset at the given row indices (in order).
    pub fn select(&self, indices: &[usize]) -> Self {
        Self {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            feature_names: self.feature_names.clone(),
        }
    }

    /// Return a copy with the rows shuffled.
    pub fn shuffled(&self, rng: &mut MatrixRng) -> Self {
        let order = rng.permutation(self.n_samples());
        self.select(&order)
    }

    /// One feature column as `f64` (used for quantile fitting).
    pub fn feature_column(&self, col: usize) -> Vec<f64> {
        assert!(col < self.n_features(), "feature column {col} out of range");
        (0..self.n_samples())
            .map(|r| self.features.get(r, col) as f64)
            .collect()
    }

    /// Indices of the samples belonging to a class.
    pub fn class_indices(&self, class: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect()
    }

    /// Concatenate two datasets with identical schemas.
    ///
    /// # Panics
    /// Panics if the feature counts or names differ.
    pub fn concat(&self, other: &Self) -> Self {
        assert_eq!(
            self.feature_names, other.feature_names,
            "concat: feature schemas differ"
        );
        let features = self.features.vstack(&other.features);
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Self {
            features,
            labels,
            feature_names: self.feature_names.clone(),
        }
    }

    /// A short human-readable summary (used by example binaries).
    pub fn summary(&self) -> String {
        format!(
            "{} samples x {} features, class counts {:?}",
            self.n_samples(),
            self.n_features(),
            self.class_counts()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f32);
        Dataset::new(features, vec![0, 1, 0, 1, 1, 0], None)
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy();
        assert_eq!(d.n_samples(), 6);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.class_counts(), vec![3, 3]);
        assert_eq!(d.feature_names[2], "f2");
        assert!(d.summary().contains("6 samples"));
    }

    #[test]
    #[should_panic(expected = "labels")]
    fn label_count_must_match() {
        let features = Matrix::zeros(3, 2);
        let _ = Dataset::new(features, vec![0, 1], None);
    }

    #[test]
    fn select_and_class_indices() {
        let d = toy();
        let sub = d.select(&[1, 3, 4]);
        assert_eq!(sub.n_samples(), 3);
        assert!(sub.labels.iter().all(|&l| l == 1));
        assert_eq!(d.class_indices(0), vec![0, 2, 5]);
    }

    #[test]
    fn shuffle_preserves_pairing() {
        let d = toy();
        let mut rng = MatrixRng::seed_from(1);
        let s = d.shuffled(&mut rng);
        assert_eq!(s.n_samples(), d.n_samples());
        // Every (row, label) pair of the shuffle must exist in the original.
        for r in 0..s.n_samples() {
            let row = s.features.row(r);
            let found =
                (0..d.n_samples()).any(|o| d.features.row(o) == row && d.labels[o] == s.labels[r]);
            assert!(found, "row {r} lost its label during shuffling");
        }
    }

    #[test]
    fn feature_column_extraction() {
        let d = toy();
        assert_eq!(d.feature_column(1), vec![1.0, 4.0, 7.0, 10.0, 13.0, 16.0]);
    }

    #[test]
    fn concat_stacks_rows() {
        let d = toy();
        let both = d.concat(&d);
        assert_eq!(both.n_samples(), 12);
        assert_eq!(both.class_counts(), vec![6, 6]);
    }
}
