//! Per-feature quantile binning.
//!
//! The paper's preprocessing (§V): "we compute the 10-quantiles and split
//! the distribution into ten groups with approximately even sizes". This
//! module fits those per-feature decile boundaries on the training set and
//! maps every value to its bin index; `crate::encode` then one-hot encodes
//! the bin indices into the 280-dimensional binary input the BCPNN layer
//! consumes.

use bcpnn_tensor::stats::{bin_index, quantile_boundaries};
use bcpnn_tensor::Matrix;

use crate::dataset::Dataset;

/// A fitted per-feature quantile binner.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileBinner {
    /// Interior bin boundaries per feature (`n_features` vectors of
    /// `n_bins - 1` ascending values).
    boundaries: Vec<Vec<f64>>,
    n_bins: usize,
}

impl QuantileBinner {
    /// Fit `n_bins`-quantile boundaries on every feature of the dataset
    /// (the paper uses `n_bins = 10`).
    ///
    /// # Panics
    /// Panics if the dataset is empty or `n_bins < 2`.
    pub fn fit(dataset: &Dataset, n_bins: usize) -> Self {
        Self::fit_matrix(&dataset.features, n_bins)
    }

    /// Fit `n_bins`-quantile boundaries on every column of a bare feature
    /// matrix (no labels or names needed) — the entry point the
    /// `bcpnn_core::model::Transformer` trait uses.
    ///
    /// # Panics
    /// Panics if the matrix has no rows or `n_bins < 2`.
    pub fn fit_matrix(features: &Matrix<f32>, n_bins: usize) -> Self {
        assert!(n_bins >= 2, "need at least two bins");
        assert!(features.rows() > 0, "cannot fit on an empty matrix");
        let boundaries = (0..features.cols())
            .map(|c| {
                let column: Vec<f64> = (0..features.rows())
                    .map(|r| features.get(r, c) as f64)
                    .collect();
                quantile_boundaries(&column, n_bins)
            })
            .collect();
        Self { boundaries, n_bins }
    }

    /// Reassemble a binner from previously fitted boundaries (used by the
    /// encoder's persistence; see [`crate::encode::QuantileEncoder::load`]).
    ///
    /// # Panics
    /// Panics if `n_bins < 2` or any boundary vector has the wrong length
    /// or is not ascending.
    pub fn from_parts(boundaries: Vec<Vec<f64>>, n_bins: usize) -> Self {
        assert!(n_bins >= 2, "need at least two bins");
        for (f, b) in boundaries.iter().enumerate() {
            assert_eq!(
                b.len(),
                n_bins - 1,
                "feature {f}: expected {} boundaries, got {}",
                n_bins - 1,
                b.len()
            );
            assert!(
                b.windows(2).all(|w| w[0] <= w[1]),
                "feature {f}: boundaries must be ascending"
            );
        }
        Self { boundaries, n_bins }
    }

    /// Number of bins per feature.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Number of features the binner was fitted on.
    pub fn n_features(&self) -> usize {
        self.boundaries.len()
    }

    /// The fitted interior boundaries of one feature.
    pub fn feature_boundaries(&self, feature: usize) -> &[f64] {
        &self.boundaries[feature]
    }

    /// Bin index of a single value of a single feature.
    pub fn bin_of(&self, feature: usize, value: f64) -> usize {
        bin_index(&self.boundaries[feature], value)
    }

    /// Map every value of the dataset to its bin index. The result is an
    /// `n_samples x n_features` matrix of integers stored as `f32`.
    ///
    /// # Panics
    /// Panics if the feature count differs from the fitted one.
    pub fn transform(&self, dataset: &Dataset) -> Matrix<f32> {
        assert_eq!(
            dataset.n_features(),
            self.n_features(),
            "binner was fitted on {} features, dataset has {}",
            self.n_features(),
            dataset.n_features()
        );
        Matrix::from_fn(dataset.n_samples(), dataset.n_features(), |r, c| {
            self.bin_of(c, dataset.features.get(r, c) as f64) as f32
        })
    }

    /// Histogram of bin occupancy for one feature of a dataset (diagnostic:
    /// on the fitting set every bin should hold ≈ `n / n_bins` samples).
    pub fn bin_occupancy(&self, dataset: &Dataset, feature: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_bins];
        for r in 0..dataset.n_samples() {
            counts[self.bin_of(feature, dataset.features.get(r, feature) as f64)] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::higgs::{generate, SyntheticHiggsConfig};
    use bcpnn_tensor::MatrixRng;

    fn higgs(n: usize, seed: u64) -> Dataset {
        generate(&SyntheticHiggsConfig {
            n_samples: n,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn decile_bins_are_roughly_balanced_on_the_fit_set() {
        let d = higgs(5000, 1);
        let binner = QuantileBinner::fit(&d, 10);
        assert_eq!(binner.n_bins(), 10);
        assert_eq!(binner.n_features(), 28);
        // Continuous features should land ~500 samples per decile.
        for &feature in &[0usize, 3, 5, 21, 25] {
            let occ = binner.bin_occupancy(&d, feature);
            assert_eq!(occ.iter().sum::<usize>(), 5000);
            for (b, &c) in occ.iter().enumerate() {
                assert!(
                    (c as f64 - 500.0).abs() < 150.0,
                    "feature {feature} bin {b} holds {c} samples"
                );
            }
        }
    }

    #[test]
    fn fit_matrix_matches_dataset_fit() {
        let d = higgs(800, 9);
        assert_eq!(
            QuantileBinner::fit(&d, 10),
            QuantileBinner::fit_matrix(&d.features, 10)
        );
    }

    #[test]
    fn transform_produces_valid_bin_indices() {
        let d = higgs(1000, 2);
        let binner = QuantileBinner::fit(&d, 10);
        let bins = binner.transform(&d);
        assert_eq!(bins.shape(), (1000, 28));
        for v in bins.as_slice() {
            assert!(*v >= 0.0 && *v < 10.0);
            assert_eq!(v.fract(), 0.0, "bin indices must be integral");
        }
    }

    #[test]
    fn transform_generalises_to_new_data() {
        let train = higgs(2000, 3);
        let test = higgs(500, 4);
        let binner = QuantileBinner::fit(&train, 10);
        let bins = binner.transform(&test);
        assert_eq!(bins.shape(), (500, 28));
        assert!(bins.as_slice().iter().all(|&v| v < 10.0));
    }

    #[test]
    fn monotone_transformation_of_values_preserves_bins() {
        // Quantile binning is invariant to monotone rescaling of a feature.
        let mut rng = MatrixRng::seed_from(5);
        let raw: Matrix<f32> = rng.uniform(500, 1, 0.0, 1.0);
        let scaled = raw.map(|v| v * 100.0 + 7.0);
        let d_raw = Dataset::new(raw, vec![0; 500], None);
        let d_scaled = Dataset::new(scaled, vec![0; 500], None);
        let b_raw = QuantileBinner::fit(&d_raw, 10).transform(&d_raw);
        let b_scaled = QuantileBinner::fit(&d_scaled, 10).transform(&d_scaled);
        assert_eq!(b_raw, b_scaled);
    }

    #[test]
    fn degenerate_constant_feature_goes_to_one_bin() {
        let features = Matrix::filled(100, 1, 3.5f32);
        let d = Dataset::new(features, vec![0; 100], None);
        let binner = QuantileBinner::fit(&d, 10);
        let bins = binner.transform(&d);
        let first = bins.get(0, 0);
        assert!(bins.as_slice().iter().all(|&v| v == first));
    }

    #[test]
    #[should_panic(expected = "fitted on")]
    fn transform_rejects_schema_mismatch() {
        let d = higgs(100, 6);
        let binner = QuantileBinner::fit(&d, 10);
        let other = Dataset::new(Matrix::zeros(5, 3), vec![0; 5], None);
        let _ = binner.transform(&other);
    }
}
