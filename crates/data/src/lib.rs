//! # bcpnn-data
//!
//! Dataset substrate for the Higgs-boson BCPNN reproduction: a synthetic
//! stand-in for the UCI HIGGS dataset, a loader for the real `HIGGS.csv`,
//! the paper's quantile one-hot preprocessing, splitting/batching helpers,
//! and a synthetic digit-pattern set for the receptive-field demos.
//!
//! The paper's pipeline (§V) is:
//!
//! 1. extract a balanced subset of the training set ([`split::balanced_subset`]),
//! 2. compute per-feature 10-quantiles ([`quantile::QuantileBinner`]),
//! 3. one-hot encode each feature's bin → 280 binary inputs
//!    ([`encode::QuantileEncoder`]),
//! 4. feed the binary code to the BCPNN layer (`bcpnn-core`).
//!
//! ```
//! use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
//! use bcpnn_data::encode::QuantileEncoder;
//! use bcpnn_data::split::stratified_split;
//!
//! let data = generate(&SyntheticHiggsConfig { n_samples: 2000, ..Default::default() });
//! let (train, test) = stratified_split(&data, 0.25, 1);
//! let encoder = QuantileEncoder::fit(&train, 10);
//! let x_train = encoder.transform(&train);
//! assert_eq!(x_train.cols(), 280);
//! assert_eq!(encoder.transform(&test).cols(), 280);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod csv;
pub mod dataset;
pub mod digits;
pub mod encode;
pub mod higgs;
pub mod quantile;
pub mod split;

pub use batch::BatchIterator;
pub use dataset::Dataset;
pub use encode::{QuantileEncoder, Standardizer, ThermometerEncoder};
pub use higgs::SyntheticHiggsConfig;
pub use quantile::QuantileBinner;
