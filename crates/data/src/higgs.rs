//! Synthetic Higgs-boson collision generator.
//!
//! The paper trains on the UCI HIGGS dataset (Baldi et al. 2014): 11 million
//! simulated collisions, each described by 21 low-level kinematic features
//! (lepton and jet momenta, angles, b-tags, missing energy) and 7 high-level
//! features (invariant masses derived from the low-level ones), labeled as
//! signal (a process producing a Higgs boson) or background.
//!
//! That 2 GB download is not available in this environment, so this module
//! generates a *statistically analogous* dataset (see DESIGN.md §2):
//!
//! * the same 28-feature schema and feature names,
//! * class-conditional latent "process" variables whose separation is
//!   controlled by [`SyntheticHiggsConfig::separation`],
//! * low-level features that are noisy nonlinear mixtures of the latents
//!   (heavy-tailed momenta, uniform angles, thresholded b-tags),
//! * high-level features computed as smoother functions of the latents, so
//!   they carry more per-feature discriminative power than the low-level
//!   ones — the property Baldi et al. highlight and the property that makes
//!   structural plasticity's feature selection interesting,
//! * an overall difficulty calibrated so that simple classifiers land in the
//!   60–75 % accuracy band the paper reports for BCPNN (the `data`
//!   integration tests pin this band).
//!
//! The real `HIGGS.csv` can be used instead through [`crate::csv::load_higgs_csv`].

use bcpnn_tensor::{Matrix, MatrixRng};

use crate::dataset::Dataset;

/// Number of low-level features in the HIGGS schema.
pub const N_LOW_LEVEL: usize = 21;
/// Number of high-level (derived) features in the HIGGS schema.
pub const N_HIGH_LEVEL: usize = 7;
/// Total number of features.
pub const N_FEATURES: usize = N_LOW_LEVEL + N_HIGH_LEVEL;

/// The canonical HIGGS feature names (same order as the UCI CSV columns).
pub const FEATURE_NAMES: [&str; N_FEATURES] = [
    "lepton_pt",
    "lepton_eta",
    "lepton_phi",
    "missing_energy_magnitude",
    "missing_energy_phi",
    "jet1_pt",
    "jet1_eta",
    "jet1_phi",
    "jet1_btag",
    "jet2_pt",
    "jet2_eta",
    "jet2_phi",
    "jet2_btag",
    "jet3_pt",
    "jet3_eta",
    "jet3_phi",
    "jet3_btag",
    "jet4_pt",
    "jet4_eta",
    "jet4_phi",
    "jet4_btag",
    "m_jj",
    "m_jjj",
    "m_lv",
    "m_jlv",
    "m_bb",
    "m_wbb",
    "m_wwbb",
];

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticHiggsConfig {
    /// Number of collisions to generate.
    pub n_samples: usize,
    /// Fraction of signal events (the UCI set is roughly balanced; the
    /// paper additionally extracts a balanced subset).
    pub signal_fraction: f64,
    /// Separation between the signal and background latent processes, in
    /// latent standard deviations. The default (0.45) is calibrated so the
    /// paper's BCPNN configurations land in the 60–75 % accuracy band
    /// (≈68 % for the 1-HCU reference setup, matching §V-A).
    pub separation: f64,
    /// Standard deviation of the observation noise added to the low-level
    /// features (relative to the latent scale).
    pub low_level_noise: f64,
    /// Standard deviation of the observation noise added to the high-level
    /// features. Smaller than `low_level_noise` so the derived features are
    /// more informative, as in the real dataset.
    pub high_level_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticHiggsConfig {
    fn default() -> Self {
        Self {
            n_samples: 20_000,
            signal_fraction: 0.5,
            separation: 0.45,
            low_level_noise: 1.0,
            high_level_noise: 0.35,
            seed: 2021,
        }
    }
}

impl SyntheticHiggsConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_samples == 0 {
            return Err("n_samples must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.signal_fraction) {
            return Err("signal_fraction must be in [0, 1]".into());
        }
        if self.separation < 0.0 {
            return Err("separation must be non-negative".into());
        }
        if self.low_level_noise < 0.0 || self.high_level_noise < 0.0 {
            return Err("noise levels must be non-negative".into());
        }
        Ok(())
    }
}

/// Latent "event" description drawn per collision.
struct LatentEvent {
    /// Heavy-boson mass-like latent (the main signal/background separator).
    mass: f64,
    /// Transverse-momentum scale of the event.
    pt_scale: f64,
    /// Angular latent (polar).
    eta_c: f64,
    /// b-quark content latent (signal events contain b-jets more often).
    btag_bias: f64,
    /// Secondary mass latent used by the multi-jet invariants.
    mass2: f64,
}

fn sample_latents(rng: &mut MatrixRng, is_signal: bool, sep: f64) -> LatentEvent {
    let shift = if is_signal { sep } else { 0.0 };
    // Signal: resonance around a shifted mass; background: broad tail.
    let mass: f64 = rng.normal_scalar(1.0 + shift, 0.55);
    // In signal events the secondary mass and the b-content track the
    // primary resonance (they come from the same decay chain); in
    // background events they are independent. This *interaction* structure
    // is what separates models that only see per-feature marginals (the
    // quantile one-hot code) from models that can combine features
    // non-linearly (the deep networks of Baldi et al.), reproducing the
    // AUC ordering in §VI of the paper.
    let mass2 = if is_signal {
        1.0 + 0.6 * sep + 0.55 * (mass - (1.0 + sep)) + rng.normal_scalar::<f64>(0.0, 0.45)
    } else {
        rng.normal_scalar::<f64>(1.0, 0.7)
    };
    let btag_bias = if is_signal {
        0.9 * sep + 0.5 * (mass - (1.0 + sep)) + rng.normal_scalar::<f64>(0.0, 0.9)
    } else {
        rng.normal_scalar::<f64>(0.0, 1.0)
    };
    LatentEvent {
        mass,
        pt_scale: rng.normal_scalar::<f64>(0.9 + 0.45 * shift, 0.6).abs() + 0.1,
        eta_c: rng.normal_scalar::<f64>(0.0, 1.0),
        btag_bias,
        mass2,
    }
}

/// Generate a synthetic Higgs dataset.
///
/// # Panics
/// Panics if the configuration is invalid (use
/// [`SyntheticHiggsConfig::validate`] to check first).
pub fn generate(config: &SyntheticHiggsConfig) -> Dataset {
    config.validate().expect("invalid SyntheticHiggsConfig");
    let mut rng = MatrixRng::seed_from(config.seed);
    let n = config.n_samples;
    let mut features = Matrix::zeros(n, N_FEATURES);
    let mut labels = Vec::with_capacity(n);
    for r in 0..n {
        let is_signal = rng.uniform_scalar::<f64>(0.0, 1.0) < config.signal_fraction;
        labels.push(usize::from(is_signal));
        let ev = sample_latents(&mut rng, is_signal, config.separation);
        let row = synthesize_features(&mut rng, &ev, config);
        for (c, v) in row.into_iter().enumerate() {
            features.set(r, c, v as f32);
        }
    }
    Dataset::new(
        features,
        labels,
        Some(FEATURE_NAMES.iter().map(|s| s.to_string()).collect()),
    )
}

/// Produce the 28 features of one event from its latents.
fn synthesize_features(
    rng: &mut MatrixRng,
    ev: &LatentEvent,
    config: &SyntheticHiggsConfig,
) -> Vec<f64> {
    let lo = config.low_level_noise;
    let hi = config.high_level_noise;
    let mut f = Vec::with_capacity(N_FEATURES);
    // --- low-level: lepton ------------------------------------------------
    let lepton_pt = (ev.pt_scale * rng.exponential_scalar::<f64>(1.2) + 0.2)
        * (1.0 + 0.15 * rng.normal_scalar::<f64>(0.0, lo));
    f.push(lepton_pt);
    f.push(ev.eta_c * 0.8 + rng.normal_scalar::<f64>(0.0, lo)); // lepton_eta
                                                                // lepton_phi (pure noise)
    f.push(rng.uniform_scalar::<f64>(-std::f64::consts::PI, std::f64::consts::PI));
    // --- low-level: missing energy ----------------------------------------
    let met = (0.6 * ev.mass + 0.4 * ev.pt_scale).abs() * rng.exponential_scalar::<f64>(1.5)
        + 0.3 * rng.normal_scalar::<f64>(0.0, lo).abs();
    f.push(met);
    // met_phi (pure noise)
    f.push(rng.uniform_scalar::<f64>(-std::f64::consts::PI, std::f64::consts::PI));
    // --- low-level: four jets ---------------------------------------------
    // Jet pT falls with jet index; each carries a noisy share of the event's
    // momentum scale. b-tags fire more often in signal events.
    for jet in 0..4 {
        let share = 1.0 / (1.0 + jet as f64 * 0.7);
        let pt = ev.pt_scale * share * (1.0 + 0.5 * rng.exponential_scalar::<f64>(2.0))
            + 0.2 * rng.normal_scalar::<f64>(0.0, lo).abs();
        f.push(pt); // jetN_pt
        f.push(ev.eta_c * 0.5 + rng.normal_scalar::<f64>(0.0, lo)); // jetN_eta
                                                                    // jetN_phi
        f.push(rng.uniform_scalar::<f64>(-std::f64::consts::PI, std::f64::consts::PI));
        // b-tag: a thresholded noisy latent; takes one of a few discrete
        // working-point values like the real feature.
        let tag_latent = ev.btag_bias + rng.normal_scalar::<f64>(0.0, 1.2);
        let tag = if tag_latent > 1.6 {
            2.17
        } else if tag_latent > 0.6 {
            1.09
        } else {
            0.0
        };
        f.push(tag); // jetN_btag
    }
    debug_assert_eq!(f.len(), N_LOW_LEVEL);
    // --- high-level: invariant-mass-like combinations ----------------------
    // Derived from the latents with *less* noise than the low-level
    // features, so each carries more class information (as in Baldi et al.).
    let m_jj = ev.mass2 * (1.0 + 0.2 * rng.normal_scalar::<f64>(0.0, hi));
    let m_jjj =
        (0.7 * ev.mass2 + 0.5 * ev.pt_scale) * (1.0 + 0.2 * rng.normal_scalar::<f64>(0.0, hi));
    let m_lv = (0.8 + 0.15 * ev.pt_scale) * (1.0 + 0.1 * rng.normal_scalar::<f64>(0.0, hi));
    let m_jlv = (0.6 * ev.mass + 0.5) * (1.0 + 0.2 * rng.normal_scalar::<f64>(0.0, hi));
    let m_bb = ev.mass * (1.0 + 0.25 * rng.normal_scalar::<f64>(0.0, hi));
    let m_wbb = (0.8 * ev.mass + 0.3 * ev.mass2) * (1.0 + 0.2 * rng.normal_scalar::<f64>(0.0, hi));
    let m_wwbb = (0.7 * ev.mass + 0.3 * ev.mass2 + 0.2 * ev.pt_scale)
        * (1.0 + 0.15 * rng.normal_scalar::<f64>(0.0, hi));
    f.extend_from_slice(&[m_jj, m_jjj, m_lv, m_jlv, m_bb, m_wbb, m_wwbb]);
    debug_assert_eq!(f.len(), N_FEATURES);
    f
}

/// Indices of the high-level (derived) features within the schema.
pub fn high_level_indices() -> Vec<usize> {
    (N_LOW_LEVEL..N_FEATURES).collect()
}

/// Indices of features that are pure noise by construction (the azimuthal
/// angles); useful for checking that structural plasticity learns to ignore
/// them.
pub fn noise_feature_indices() -> Vec<usize> {
    FEATURE_NAMES
        .iter()
        .enumerate()
        .filter(|(_, name)| name.ends_with("_phi"))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcpnn_tensor::stats;

    fn small(seed: u64) -> Dataset {
        generate(&SyntheticHiggsConfig {
            n_samples: 4000,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn schema_matches_the_uci_layout() {
        let d = small(1);
        assert_eq!(d.n_features(), 28);
        assert_eq!(d.feature_names.len(), 28);
        assert_eq!(d.feature_names[0], "lepton_pt");
        assert_eq!(d.feature_names[21], "m_jj");
        assert_eq!(FEATURE_NAMES.len(), N_FEATURES);
        assert_eq!(high_level_indices().len(), 7);
        assert_eq!(noise_feature_indices().len(), 6);
    }

    #[test]
    fn class_balance_follows_the_config() {
        let d = small(2);
        let counts = d.class_counts();
        let frac = counts[1] as f64 / d.n_samples() as f64;
        assert!((frac - 0.5).abs() < 0.05, "signal fraction {frac}");

        let skewed = generate(&SyntheticHiggsConfig {
            n_samples: 4000,
            signal_fraction: 0.2,
            seed: 3,
            ..Default::default()
        });
        let frac = skewed.class_counts()[1] as f64 / 4000.0;
        assert!((frac - 0.2).abs() < 0.05, "signal fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = small(7);
        let b = small(7);
        assert_eq!(a, b);
        let c = small(8);
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn all_features_are_finite() {
        let d = small(4);
        assert!(d.features.all_finite());
    }

    #[test]
    fn high_level_features_separate_classes_better_than_noise_features() {
        let d = small(5);
        let sig = d.class_indices(1);
        let bkg = d.class_indices(0);
        let mean_shift = |col: usize| {
            let column = d.feature_column(col);
            let s: Vec<f64> = sig.iter().map(|&i| column[i]).collect();
            let b: Vec<f64> = bkg.iter().map(|&i| column[i]).collect();
            let pooled = stats::std_dev(&column).max(1e-9);
            (stats::mean(&s) - stats::mean(&b)).abs() / pooled
        };
        // m_bb (high-level, index 25) must separate much better than
        // lepton_phi (pure noise, index 2).
        assert!(mean_shift(25) > 0.3, "m_bb shift {}", mean_shift(25));
        assert!(mean_shift(2) < 0.1, "lepton_phi shift {}", mean_shift(2));
        // Averaged over groups, high-level features are more informative
        // than low-level ones.
        let hi_avg: f64 = high_level_indices()
            .iter()
            .map(|&i| mean_shift(i))
            .sum::<f64>()
            / 7.0;
        let lo_avg: f64 = (0..N_LOW_LEVEL).map(mean_shift).sum::<f64>() / N_LOW_LEVEL as f64;
        assert!(
            hi_avg > lo_avg,
            "high-level features should be more discriminative ({hi_avg:.3} vs {lo_avg:.3})"
        );
    }

    #[test]
    fn zero_separation_removes_the_signal() {
        let d = generate(&SyntheticHiggsConfig {
            n_samples: 3000,
            separation: 0.0,
            seed: 6,
            ..Default::default()
        });
        // With no separation the class-conditional means of the main
        // discriminator coincide (up to sampling noise).
        let column = d.feature_column(25);
        let sig: Vec<f64> = d.class_indices(1).iter().map(|&i| column[i]).collect();
        let bkg: Vec<f64> = d.class_indices(0).iter().map(|&i| column[i]).collect();
        let shift =
            (stats::mean(&sig) - stats::mean(&bkg)).abs() / stats::std_dev(&column).max(1e-9);
        assert!(shift < 0.1, "residual shift {shift}");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SyntheticHiggsConfig {
            n_samples: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SyntheticHiggsConfig {
            signal_fraction: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SyntheticHiggsConfig {
            separation: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
