//! Mini-batch iteration over encoded datasets.

use bcpnn_tensor::{Matrix, MatrixRng};

/// An iterator yielding `(features, labels)` mini-batches from an encoded
/// feature matrix and its labels, in a (optionally shuffled) epoch order.
#[derive(Debug, Clone)]
pub struct BatchIterator<'a> {
    features: &'a Matrix<f32>,
    labels: &'a [usize],
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl<'a> BatchIterator<'a> {
    /// Create an iterator over sequential (unshuffled) batches.
    ///
    /// # Panics
    /// Panics if the label count does not match the feature rows or the
    /// batch size is zero.
    pub fn new(features: &'a Matrix<f32>, labels: &'a [usize], batch_size: usize) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "BatchIterator: {} rows but {} labels",
            features.rows(),
            labels.len()
        );
        assert!(batch_size > 0, "batch_size must be positive");
        Self {
            features,
            labels,
            order: (0..features.rows()).collect(),
            batch_size,
            cursor: 0,
        }
    }

    /// Create an iterator over shuffled batches.
    pub fn shuffled(
        features: &'a Matrix<f32>,
        labels: &'a [usize],
        batch_size: usize,
        rng: &mut MatrixRng,
    ) -> Self {
        let mut it = Self::new(features, labels, batch_size);
        it.order = rng.permutation(features.rows());
        it
    }

    /// Number of batches this iterator will yield.
    pub fn n_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchIterator<'_> {
    type Item = (Matrix<f32>, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        let x = self.features.select_rows(idx);
        let y = idx.iter().map(|&i| self.labels[i]).collect();
        Some((x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> (Matrix<f32>, Vec<usize>) {
        let x = Matrix::from_fn(n, 2, |r, c| (r * 2 + c) as f32);
        let y = (0..n).map(|i| i % 2).collect();
        (x, y)
    }

    #[test]
    fn batches_cover_every_sample_once() {
        let (x, y) = data(23);
        let it = BatchIterator::new(&x, &y, 5);
        assert_eq!(it.n_batches(), 5);
        let mut seen = [false; 23];
        let mut total = 0;
        for (xb, yb) in it {
            assert_eq!(xb.rows(), yb.len());
            assert!(xb.rows() <= 5);
            for r in 0..xb.rows() {
                let original = (xb.get(r, 0) / 2.0) as usize;
                assert!(!seen[original], "sample {original} seen twice");
                seen[original] = true;
                assert_eq!(yb[r], original % 2, "label follows its row");
            }
            total += xb.rows();
        }
        assert_eq!(total, 23);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffled_batches_still_cover_everything() {
        let (x, y) = data(40);
        let mut rng = MatrixRng::seed_from(1);
        let it = BatchIterator::shuffled(&x, &y, 7, &mut rng);
        let mut count = 0;
        let mut first_batch_first_row = None;
        for (xb, _) in it {
            if first_batch_first_row.is_none() {
                first_batch_first_row = Some(xb.get(0, 0));
            }
            count += xb.rows();
        }
        assert_eq!(count, 40);
        // With 40 rows the probability the shuffle starts at row 0 is 1/40;
        // the seeded shuffle used here does not.
        assert_ne!(first_batch_first_row, Some(0.0));
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn zero_batch_size_is_rejected() {
        let (x, y) = data(4);
        let _ = BatchIterator::new(&x, &y, 0);
    }
}
