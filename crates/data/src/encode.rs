//! Binary input encodings for the BCPNN layer.
//!
//! The paper encodes every feature "as a one-hot vector of size ten, with
//! the component being hot indicating which quantile the feature belongs
//! to", giving 28 × 10 = 280 binary inputs. [`QuantileEncoder`] implements
//! exactly that; [`ThermometerEncoder`] is the interval-code alternative
//! used by the encoding-ablation example.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use bcpnn_tensor::{IoError, Matrix};

use crate::dataset::Dataset;
use crate::quantile::QuantileBinner;

/// Magic tag of the serialized one-hot quantile encoder format.
const ENCODER_MAGIC: &str = "bcpnn-quantile-encoder";
/// Magic tag of the serialized thermometer encoder format.
const THERMOMETER_MAGIC: &str = "bcpnn-thermometer-encoder";
/// Magic tag of the serialized standardizer format.
const STANDARDIZER_MAGIC: &str = "bcpnn-standardizer";
/// Encoder format version.
const ENCODER_VERSION: &str = "v1";

/// Write a fitted binner in the shared text format (`<magic> v1 n_features
/// n_bins` header, one line of ascending boundaries per feature).
fn write_binner<W: Write>(mut w: W, magic: &str, binner: &QuantileBinner) -> Result<(), IoError> {
    writeln!(
        w,
        "{magic} {ENCODER_VERSION} {} {}",
        binner.n_features(),
        binner.n_bins()
    )?;
    for f in 0..binner.n_features() {
        let bounds = binner.feature_boundaries(f);
        let line: Vec<String> = bounds.iter().map(|b| b.to_string()).collect();
        writeln!(w, "{}", line.join(" "))?;
    }
    Ok(())
}

/// Read a binner previously written by [`write_binner`] under `magic`.
fn read_binner<R: BufRead>(r: R, magic: &str) -> Result<QuantileBinner, IoError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| IoError::Format("empty encoder file".into()))??;
    let mut parts = header.split_whitespace();
    if parts.next() != Some(magic) || parts.next() != Some(ENCODER_VERSION) {
        return Err(IoError::Format(format!("bad encoder header: {header:?}")));
    }
    let n_features: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| IoError::Format("encoder header missing feature count".into()))?;
    let n_bins: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| IoError::Format("encoder header missing bin count".into()))?;
    if n_bins < 2 {
        return Err(IoError::Format(format!("invalid bin count {n_bins}")));
    }
    let mut boundaries = Vec::with_capacity(n_features);
    for f in 0..n_features {
        let line = lines
            .next()
            .ok_or_else(|| IoError::Format(format!("encoder file ends before feature {f}")))??;
        let bounds: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse::<f64>).collect();
        let bounds =
            bounds.map_err(|_| IoError::Format(format!("feature {f}: non-numeric boundary")))?;
        if bounds.len() != n_bins - 1 {
            return Err(IoError::Format(format!(
                "feature {f}: expected {} boundaries, got {}",
                n_bins - 1,
                bounds.len()
            )));
        }
        if bounds.iter().any(|b| !b.is_finite()) {
            return Err(IoError::Format(format!("feature {f}: non-finite boundary")));
        }
        if bounds.windows(2).any(|w| w[0] > w[1]) {
            return Err(IoError::Format(format!(
                "feature {f}: boundaries are not ascending"
            )));
        }
        boundaries.push(bounds);
    }
    Ok(QuantileBinner::from_parts(boundaries, n_bins))
}

/// One-hot quantile encoder (the paper's preprocessing).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileEncoder {
    binner: QuantileBinner,
}

impl QuantileEncoder {
    /// Fit the per-feature quantile boundaries on a training set.
    pub fn fit(dataset: &Dataset, n_bins: usize) -> Self {
        Self {
            binner: QuantileBinner::fit(dataset, n_bins),
        }
    }

    /// Fit on a bare feature matrix (no labels or names needed) — the
    /// entry point the `bcpnn_core::model::Transformer` trait uses.
    ///
    /// # Panics
    /// Panics if the matrix has no rows or `n_bins < 2`.
    pub fn fit_matrix(features: &Matrix<f32>, n_bins: usize) -> Self {
        Self {
            binner: QuantileBinner::fit_matrix(features, n_bins),
        }
    }

    /// Number of bins per feature.
    pub fn n_bins(&self) -> usize {
        self.binner.n_bins()
    }

    /// Width of the encoded representation (`n_features · n_bins`).
    pub fn encoded_width(&self) -> usize {
        self.binner.n_features() * self.binner.n_bins()
    }

    /// The underlying binner.
    pub fn binner(&self) -> &QuantileBinner {
        &self.binner
    }

    /// Encode a dataset into the binary one-hot representation
    /// (`n_samples x encoded_width`, exactly one hot bit per feature block).
    pub fn transform(&self, dataset: &Dataset) -> Matrix<f32> {
        self.transform_rows(&dataset.features)
    }

    /// Encode a bare feature matrix (`n_rows x n_features`, no labels or
    /// names needed). This is the serving entry point: inference requests
    /// arrive as raw feature vectors, not full datasets.
    ///
    /// # Panics
    /// Panics if the feature count differs from the fitted one.
    pub fn transform_rows(&self, features: &Matrix<f32>) -> Matrix<f32> {
        let mut out = Matrix::zeros(0, 0);
        self.transform_rows_into(features, &mut out);
        out
    }

    /// Encode a bare feature matrix into a caller-provided buffer (reset to
    /// `n_rows x encoded_width`): the buffer-reusing twin of
    /// [`QuantileEncoder::transform_rows`], used by the zero-allocation
    /// serving data plane.
    ///
    /// # Panics
    /// Panics if the feature count differs from the fitted one.
    pub fn transform_rows_into(&self, features: &Matrix<f32>, out: &mut Matrix<f32>) {
        out.reset(features.rows(), self.encoded_width());
        for r in 0..features.rows() {
            self.encode_into(features.row(r), out.row_mut(r));
        }
    }

    /// Encode one raw feature vector into its binary one-hot code.
    ///
    /// # Panics
    /// Panics if the feature count differs from the fitted one.
    pub fn encode_row(&self, features: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.encoded_width()];
        self.encode_into(features, &mut out);
        out
    }

    /// The single authoritative one-hot layout: bit `f * n_bins + bin(f, v)`
    /// of `out` goes hot for every feature value.
    fn encode_into(&self, features: &[f32], out: &mut [f32]) {
        assert_eq!(
            features.len(),
            self.binner.n_features(),
            "encoder was fitted on {} features, row has {}",
            self.binner.n_features(),
            features.len()
        );
        let k = self.n_bins();
        for (f, &v) in features.iter().enumerate() {
            out[f * k + self.binner.bin_of(f, v as f64)] = 1.0;
        }
    }

    /// Number of raw features the encoder was fitted on.
    pub fn n_features(&self) -> usize {
        self.binner.n_features()
    }

    /// Write the fitted encoder to any writer in the text format.
    pub fn write_to<W: Write>(&self, w: W) -> Result<(), IoError> {
        write_binner(w, ENCODER_MAGIC, &self.binner)
    }

    /// Read an encoder previously written by [`QuantileEncoder::write_to`].
    pub fn read_from<R: BufRead>(r: R) -> Result<Self, IoError> {
        Ok(Self {
            binner: read_binner(r, ENCODER_MAGIC)?,
        })
    }

    /// Save the fitted encoder to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), IoError> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()?;
        Ok(())
    }

    /// Load an encoder previously written by [`QuantileEncoder::save`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, IoError> {
        Self::read_from(BufReader::new(File::open(path)?))
    }

    /// Human-readable name of one encoded input column
    /// (`<feature>@q<bin>`), used when rendering receptive fields.
    pub fn column_name(&self, dataset: &Dataset, column: usize) -> String {
        let k = self.n_bins();
        let feature = column / k;
        let bin = column % k;
        format!("{}@q{}", dataset.feature_names[feature], bin)
    }
}

/// Thermometer (cumulative interval) encoder: bit `b` of a feature block is
/// hot when the value lies in bin `b` **or above**. Same width as the
/// one-hot code but denser; used to ablate the encoding choice.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermometerEncoder {
    binner: QuantileBinner,
}

impl ThermometerEncoder {
    /// Fit the per-feature quantile boundaries on a training set.
    pub fn fit(dataset: &Dataset, n_bins: usize) -> Self {
        Self {
            binner: QuantileBinner::fit(dataset, n_bins),
        }
    }

    /// Fit on a bare feature matrix (no labels or names needed).
    ///
    /// # Panics
    /// Panics if the matrix has no rows or `n_bins < 2`.
    pub fn fit_matrix(features: &Matrix<f32>, n_bins: usize) -> Self {
        Self {
            binner: QuantileBinner::fit_matrix(features, n_bins),
        }
    }

    /// Number of bins per feature.
    pub fn n_bins(&self) -> usize {
        self.binner.n_bins()
    }

    /// Number of raw features the encoder was fitted on.
    pub fn n_features(&self) -> usize {
        self.binner.n_features()
    }

    /// Width of the encoded representation.
    pub fn encoded_width(&self) -> usize {
        self.binner.n_features() * self.binner.n_bins()
    }

    /// Encode a dataset into the cumulative binary representation.
    pub fn transform(&self, dataset: &Dataset) -> Matrix<f32> {
        self.transform_rows(&dataset.features)
    }

    /// Encode a bare feature matrix (`n_rows x n_features`).
    ///
    /// # Panics
    /// Panics if the feature count differs from the fitted one.
    pub fn transform_rows(&self, features: &Matrix<f32>) -> Matrix<f32> {
        let mut out = Matrix::zeros(0, 0);
        self.transform_rows_into(features, &mut out);
        out
    }

    /// Encode a bare feature matrix into a caller-provided buffer (reset to
    /// `n_rows x encoded_width`): the buffer-reusing twin of
    /// [`ThermometerEncoder::transform_rows`].
    ///
    /// # Panics
    /// Panics if the feature count differs from the fitted one.
    pub fn transform_rows_into(&self, features: &Matrix<f32>, out: &mut Matrix<f32>) {
        assert_eq!(
            features.cols(),
            self.n_features(),
            "encoder was fitted on {} features, matrix has {}",
            self.n_features(),
            features.cols()
        );
        let k = self.binner.n_bins();
        out.reset(features.rows(), self.encoded_width());
        for r in 0..features.rows() {
            let in_row = features.row(r);
            let out_row = out.row_mut(r);
            for (f, &v) in in_row.iter().enumerate() {
                let b = self.binner.bin_of(f, v as f64);
                for bit in 0..=b {
                    out_row[f * k + bit] = 1.0;
                }
            }
        }
    }

    /// Write the fitted encoder to any writer in the text format.
    pub fn write_to<W: Write>(&self, w: W) -> Result<(), IoError> {
        write_binner(w, THERMOMETER_MAGIC, &self.binner)
    }

    /// Read an encoder previously written by
    /// [`ThermometerEncoder::write_to`].
    pub fn read_from<R: BufRead>(r: R) -> Result<Self, IoError> {
        Ok(Self {
            binner: read_binner(r, THERMOMETER_MAGIC)?,
        })
    }

    /// Save the fitted encoder to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), IoError> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()?;
        Ok(())
    }

    /// Load an encoder previously written by [`ThermometerEncoder::save`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, IoError> {
        Self::read_from(BufReader::new(File::open(path)?))
    }
}

/// Standardise features to zero mean / unit variance (fit on the training
/// set). Used by the MLP / logistic-regression baselines that consume raw
/// continuous features rather than the binary code.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl Standardizer {
    /// Fit per-feature means and standard deviations.
    pub fn fit(dataset: &Dataset) -> Self {
        Self::fit_matrix(&dataset.features)
    }

    /// Fit on a bare feature matrix (no labels or names needed).
    pub fn fit_matrix(features: &Matrix<f32>) -> Self {
        let means = bcpnn_tensor::reduce::col_means(features);
        let vars = bcpnn_tensor::reduce::col_variances(features);
        let stds = vars.iter().map(|v| v.sqrt().max(1e-6)).collect();
        Self { means, stds }
    }

    /// Number of features the standardizer was fitted on.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Standardise a dataset's features.
    pub fn transform(&self, dataset: &Dataset) -> Matrix<f32> {
        self.transform_rows(&dataset.features)
    }

    /// Standardise a bare feature matrix (`n_rows x n_features`).
    ///
    /// # Panics
    /// Panics if the feature count differs from the fitted one.
    pub fn transform_rows(&self, features: &Matrix<f32>) -> Matrix<f32> {
        let mut out = Matrix::zeros(0, 0);
        self.transform_rows_into(features, &mut out);
        out
    }

    /// Standardise a bare feature matrix into a caller-provided buffer
    /// (resized to the input shape, every element overwritten): the
    /// buffer-reusing twin of [`Standardizer::transform_rows`].
    ///
    /// # Panics
    /// Panics if the feature count differs from the fitted one.
    pub fn transform_rows_into(&self, features: &Matrix<f32>, out: &mut Matrix<f32>) {
        assert_eq!(
            features.cols(),
            self.n_features(),
            "standardizer was fitted on a different schema"
        );
        out.resize(features.rows(), features.cols());
        for r in 0..features.rows() {
            let in_row = features.row(r);
            let out_row = out.row_mut(r);
            for (c, (o, &v)) in out_row.iter_mut().zip(in_row.iter()).enumerate() {
                *o = (v - self.means[c]) / self.stds[c];
            }
        }
    }

    /// Write the fitted standardizer to any writer in the text format.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), IoError> {
        writeln!(
            w,
            "{STANDARDIZER_MAGIC} {ENCODER_VERSION} {}",
            self.n_features()
        )?;
        let means: Vec<String> = self.means.iter().map(|m| m.to_string()).collect();
        let stds: Vec<String> = self.stds.iter().map(|s| s.to_string()).collect();
        writeln!(w, "{}", means.join(" "))?;
        writeln!(w, "{}", stds.join(" "))?;
        Ok(())
    }

    /// Read a standardizer previously written by [`Standardizer::write_to`].
    pub fn read_from<R: BufRead>(r: R) -> Result<Self, IoError> {
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| IoError::Format("empty standardizer file".into()))??;
        let mut parts = header.split_whitespace();
        if parts.next() != Some(STANDARDIZER_MAGIC) || parts.next() != Some(ENCODER_VERSION) {
            return Err(IoError::Format(format!(
                "bad standardizer header: {header:?}"
            )));
        }
        let n_features: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| IoError::Format("standardizer header missing feature count".into()))?;
        let mut read_row = |what: &str| -> Result<Vec<f32>, IoError> {
            let line = lines
                .next()
                .ok_or_else(|| IoError::Format(format!("standardizer file missing {what}")))??;
            let values: Result<Vec<f32>, _> =
                line.split_whitespace().map(str::parse::<f32>).collect();
            let values =
                values.map_err(|_| IoError::Format(format!("non-numeric {what} value")))?;
            if values.len() != n_features {
                return Err(IoError::Format(format!(
                    "expected {n_features} {what} values, got {}",
                    values.len()
                )));
            }
            Ok(values)
        };
        let means = read_row("means")?;
        let stds = read_row("stds")?;
        if means.iter().any(|m| !m.is_finite()) {
            return Err(IoError::Format("means must be finite".into()));
        }
        // The finiteness check rejects NaN, which `s <= 0.0` alone would
        // silently let through (NaN fails every ordering comparison).
        if stds.iter().any(|&s| !s.is_finite() || s <= 0.0) {
            return Err(IoError::Format(
                "standard deviations must be positive and finite".into(),
            ));
        }
        Ok(Self { means, stds })
    }

    /// Save the fitted standardizer to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), IoError> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()?;
        Ok(())
    }

    /// Load a standardizer previously written by [`Standardizer::save`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, IoError> {
        Self::read_from(BufReader::new(File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::higgs::{generate, SyntheticHiggsConfig};

    fn higgs(n: usize, seed: u64) -> Dataset {
        generate(&SyntheticHiggsConfig {
            n_samples: n,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn one_hot_encoding_has_the_paper_width_and_density() {
        let d = higgs(500, 1);
        let enc = QuantileEncoder::fit(&d, 10);
        assert_eq!(enc.encoded_width(), 280);
        let x = enc.transform(&d);
        assert_eq!(x.shape(), (500, 280));
        // Exactly one hot bit per 10-wide feature block.
        for r in 0..x.rows() {
            let row = x.row(r);
            for f in 0..28 {
                let s: f32 = row[f * 10..(f + 1) * 10].iter().sum();
                assert_eq!(s, 1.0, "row {r} feature {f} has {s} hot bits");
            }
        }
        // Overall density is exactly 1/10.
        let total: f32 = bcpnn_tensor::reduce::sum(&x);
        assert_eq!(total, 500.0 * 28.0);
    }

    #[test]
    fn encoding_only_contains_zeros_and_ones() {
        let d = higgs(200, 2);
        let enc = QuantileEncoder::fit(&d, 8);
        let x = enc.transform(&d);
        assert!(x.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn column_names_are_traceable_to_features() {
        let d = higgs(100, 3);
        let enc = QuantileEncoder::fit(&d, 10);
        assert_eq!(enc.column_name(&d, 0), "lepton_pt@q0");
        assert_eq!(enc.column_name(&d, 19), "lepton_eta@q9");
        assert_eq!(enc.column_name(&d, 279), "m_wwbb@q9");
    }

    #[test]
    fn thermometer_code_is_cumulative() {
        let d = higgs(300, 4);
        let one_hot = QuantileEncoder::fit(&d, 10).transform(&d);
        let thermo = ThermometerEncoder::fit(&d, 10).transform(&d);
        assert_eq!(thermo.shape(), one_hot.shape());
        // Thermometer rows are at least as dense as one-hot rows, and the
        // hot one-hot bit is always the highest thermometer bit set.
        for r in 0..d.n_samples() {
            let oh = one_hot.row(r);
            let th = thermo.row(r);
            for f in 0..28 {
                let block_oh = &oh[f * 10..(f + 1) * 10];
                let block_th = &th[f * 10..(f + 1) * 10];
                let hot = block_oh.iter().position(|&v| v == 1.0).unwrap();
                let th_count = block_th.iter().filter(|&&v| v == 1.0).count();
                assert_eq!(th_count, hot + 1);
                assert_eq!(block_th[hot], 1.0);
                if hot + 1 < 10 {
                    assert_eq!(block_th[hot + 1], 0.0);
                }
            }
        }
    }

    #[test]
    fn transform_rows_matches_dataset_transform() {
        let d = higgs(300, 6);
        let enc = QuantileEncoder::fit(&d, 10);
        let via_dataset = enc.transform(&d);
        let via_rows = enc.transform_rows(&d.features);
        assert_eq!(via_dataset, via_rows);
        // Single-row encoding agrees too.
        for r in 0..5 {
            assert_eq!(enc.encode_row(d.features.row(r)), via_dataset.row(r));
        }
    }

    #[test]
    fn transform_rows_into_matches_allocating_twins_on_stale_buffers() {
        let d = higgs(150, 15);
        let mut out = Matrix::filled(3, 2, f32::NAN);
        let one_hot = QuantileEncoder::fit(&d, 10);
        one_hot.transform_rows_into(&d.features, &mut out);
        assert_eq!(out, one_hot.transform_rows(&d.features));
        let thermo = ThermometerEncoder::fit(&d, 6);
        thermo.transform_rows_into(&d.features, &mut out);
        assert_eq!(out, thermo.transform_rows(&d.features));
        let std = Standardizer::fit(&d);
        std.transform_rows_into(&d.features, &mut out);
        assert_eq!(out, std.transform_rows(&d.features));
    }

    #[test]
    fn encoder_roundtrips_through_text() {
        let d = higgs(400, 7);
        let enc = QuantileEncoder::fit(&d, 10);
        let mut buf = Vec::new();
        enc.write_to(&mut buf).unwrap();
        let back = QuantileEncoder::read_from(&buf[..]).unwrap();
        assert_eq!(enc, back);
        // The loaded encoder produces identical codes on fresh data.
        let fresh = higgs(50, 8);
        assert_eq!(enc.transform(&fresh), back.transform(&fresh));
    }

    #[test]
    fn encoder_save_load_via_files() {
        let d = higgs(200, 9);
        let enc = QuantileEncoder::fit(&d, 8);
        let path =
            std::env::temp_dir().join(format!("bcpnn_encoder_test_{}.txt", std::process::id()));
        enc.save(&path).unwrap();
        let back = QuantileEncoder::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(enc, back);
    }

    #[test]
    fn corrupt_encoder_files_are_rejected() {
        assert!(QuantileEncoder::read_from(&b""[..]).is_err());
        assert!(QuantileEncoder::read_from(&b"wrong-magic v1 2 10\n"[..]).is_err());
        // Truncated: header promises 2 features, provides 1.
        let text = b"bcpnn-quantile-encoder v1 2 3\n0.5 1.5\n";
        assert!(QuantileEncoder::read_from(&text[..]).is_err());
        // Non-ascending boundaries.
        let text = b"bcpnn-quantile-encoder v1 1 3\n2.0 1.0\n";
        assert!(QuantileEncoder::read_from(&text[..]).is_err());
        // NaN boundaries parse as floats and defeat ordering comparisons;
        // they must be rejected with a typed error, not a downstream panic.
        let text = b"bcpnn-quantile-encoder v1 1 3\nNaN 1.0\n";
        assert!(QuantileEncoder::read_from(&text[..]).is_err());
    }

    #[test]
    fn matrix_fitting_matches_dataset_fitting() {
        let d = higgs(600, 10);
        assert_eq!(
            QuantileEncoder::fit(&d, 10),
            QuantileEncoder::fit_matrix(&d.features, 10)
        );
        assert_eq!(
            ThermometerEncoder::fit(&d, 10),
            ThermometerEncoder::fit_matrix(&d.features, 10)
        );
        assert_eq!(Standardizer::fit(&d), Standardizer::fit_matrix(&d.features));
    }

    #[test]
    fn thermometer_transform_rows_matches_independent_expectation() {
        let d = higgs(200, 11);
        let enc = ThermometerEncoder::fit(&d, 8);
        assert_eq!(enc.n_bins(), 8);
        assert_eq!(enc.n_features(), 28);
        let got = enc.transform_rows(&d.features);
        // Independent expectation: the binner's bin-index matrix with a
        // cumulative fill, computed without going through transform_rows.
        let bins = enc.binner.transform(&d);
        let k = enc.n_bins();
        let mut expected = Matrix::zeros(d.n_samples(), enc.encoded_width());
        for r in 0..d.n_samples() {
            let bin_row = bins.row(r);
            let out_row = expected.row_mut(r);
            for (f, &b) in bin_row.iter().enumerate() {
                for bit in 0..=(b as usize) {
                    out_row[f * k + bit] = 1.0;
                }
            }
        }
        assert_eq!(got, expected);
        assert_eq!(enc.transform(&d), got);
    }

    #[test]
    fn thermometer_encoder_roundtrips_through_text() {
        let d = higgs(300, 12);
        let enc = ThermometerEncoder::fit(&d, 10);
        let mut buf = Vec::new();
        enc.write_to(&mut buf).unwrap();
        let back = ThermometerEncoder::read_from(&buf[..]).unwrap();
        assert_eq!(enc, back);
        // A quantile-encoder file is rejected (wrong magic), and vice versa.
        assert!(QuantileEncoder::read_from(&buf[..]).is_err());
    }

    #[test]
    fn standardizer_roundtrips_through_text() {
        let d = higgs(250, 13);
        let std = Standardizer::fit(&d);
        let mut buf = Vec::new();
        std.write_to(&mut buf).unwrap();
        let back = Standardizer::read_from(&buf[..]).unwrap();
        assert_eq!(std, back);
        let fresh = higgs(40, 14);
        assert_eq!(
            std.transform_rows(&fresh.features),
            back.transform_rows(&fresh.features)
        );
        // Corrupt inputs give typed errors, not panics.
        assert!(Standardizer::read_from(&b""[..]).is_err());
        assert!(Standardizer::read_from(&b"wrong v1 2\n0 0\n1 1\n"[..]).is_err());
        let truncated = b"bcpnn-standardizer v1 2\n0.0 1.0\n";
        assert!(Standardizer::read_from(&truncated[..]).is_err());
        let bad_std = b"bcpnn-standardizer v1 1\n0.0\n-1.0\n";
        assert!(Standardizer::read_from(&bad_std[..]).is_err());
        // NaN/inf parse as valid floats but must still be rejected — `NaN
        // <= 0.0` is false, so a naive positivity check would let them in.
        let nan_std = b"bcpnn-standardizer v1 1\n0.0\nNaN\n";
        assert!(Standardizer::read_from(&nan_std[..]).is_err());
        let nan_mean = b"bcpnn-standardizer v1 1\nNaN\n1.0\n";
        assert!(Standardizer::read_from(&nan_mean[..]).is_err());
        let inf_std = b"bcpnn-standardizer v1 1\n0.0\ninf\n";
        assert!(Standardizer::read_from(&inf_std[..]).is_err());
    }

    #[test]
    fn standardizer_centres_and_scales() {
        let d = higgs(2000, 5);
        let std = Standardizer::fit(&d);
        let z = std.transform(&d);
        let means = bcpnn_tensor::reduce::col_means(&z);
        let vars = bcpnn_tensor::reduce::col_variances(&z);
        for (c, (&m, &v)) in means.iter().zip(vars.iter()).enumerate() {
            assert!(m.abs() < 1e-3, "feature {c} mean {m}");
            assert!((v - 1.0).abs() < 1e-2, "feature {c} variance {v}");
        }
    }
}
