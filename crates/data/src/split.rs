//! Dataset splitting and subsetting: train/test splits, the balanced-subset
//! extraction the paper performs before encoding, and stratified splits.

use bcpnn_tensor::MatrixRng;

use crate::dataset::Dataset;

/// Split a dataset into `(train, test)` with `test_fraction` of the samples
/// (uniformly at random) in the test part.
///
/// # Panics
/// Panics if `test_fraction` is outside `(0, 1)` or the dataset is empty.
pub fn train_test_split(dataset: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0, 1)"
    );
    assert!(
        dataset.n_samples() > 1,
        "need at least two samples to split"
    );
    let mut rng = MatrixRng::seed_from(seed);
    let order = rng.permutation(dataset.n_samples());
    let n_test = ((dataset.n_samples() as f64 * test_fraction).round() as usize)
        .clamp(1, dataset.n_samples() - 1);
    let test_idx = &order[..n_test];
    let train_idx = &order[n_test..];
    (dataset.select(train_idx), dataset.select(test_idx))
}

/// Stratified split: preserves the class proportions in both parts.
///
/// # Panics
/// Panics under the same conditions as [`train_test_split`], or if a class
/// has fewer than two samples.
pub fn stratified_split(dataset: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0, 1)"
    );
    let mut rng = MatrixRng::seed_from(seed);
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for class in 0..dataset.n_classes() {
        let mut idx = dataset.class_indices(class);
        if idx.is_empty() {
            continue;
        }
        assert!(
            idx.len() >= 2,
            "class {class} has fewer than two samples; cannot stratify"
        );
        rng.shuffle(&mut idx);
        let n_test = ((idx.len() as f64 * test_fraction).round() as usize).clamp(1, idx.len() - 1);
        test_idx.extend_from_slice(&idx[..n_test]);
        train_idx.extend_from_slice(&idx[n_test..]);
    }
    rng.shuffle(&mut train_idx);
    rng.shuffle(&mut test_idx);
    (dataset.select(&train_idx), dataset.select(&test_idx))
}

/// Extract a class-balanced subset with `per_class` samples of every class
/// (the paper: "we extract a balanced subset of the training set").
///
/// # Panics
/// Panics if some class has fewer than `per_class` samples.
pub fn balanced_subset(dataset: &Dataset, per_class: usize, seed: u64) -> Dataset {
    assert!(per_class > 0, "per_class must be positive");
    let mut rng = MatrixRng::seed_from(seed);
    let mut chosen = Vec::with_capacity(per_class * dataset.n_classes());
    for class in 0..dataset.n_classes() {
        let mut idx = dataset.class_indices(class);
        assert!(
            idx.len() >= per_class,
            "class {class} has only {} samples, requested {per_class}",
            idx.len()
        );
        rng.shuffle(&mut idx);
        chosen.extend_from_slice(&idx[..per_class]);
    }
    rng.shuffle(&mut chosen);
    dataset.select(&chosen)
}

/// K-fold cross-validation index sets: returns `k` `(train_indices,
/// validation_indices)` pairs covering the dataset.
///
/// # Panics
/// Panics if `k < 2` or `k` exceeds the number of samples.
pub fn k_fold_indices(n_samples: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(k <= n_samples, "k cannot exceed the number of samples");
    let mut rng = MatrixRng::seed_from(seed);
    let order = rng.permutation(n_samples);
    let fold_sizes: Vec<usize> = (0..k)
        .map(|f| n_samples / k + usize::from(f < n_samples % k))
        .collect();
    let mut folds = Vec::with_capacity(k);
    let mut start = 0usize;
    for size in fold_sizes {
        folds.push(order[start..start + size].to_vec());
        start += size;
    }
    (0..k)
        .map(|f| {
            let val = folds[f].clone();
            let train: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != f)
                .flat_map(|(_, fold)| fold.iter().copied())
                .collect();
            (train, val)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::higgs::{generate, SyntheticHiggsConfig};

    fn higgs(n: usize, signal_fraction: f64, seed: u64) -> Dataset {
        generate(&SyntheticHiggsConfig {
            n_samples: n,
            signal_fraction,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn train_test_split_partitions_the_data() {
        let d = higgs(1000, 0.5, 1);
        let (train, test) = train_test_split(&d, 0.2, 2);
        assert_eq!(train.n_samples() + test.n_samples(), 1000);
        assert_eq!(test.n_samples(), 200);
        assert_eq!(train.n_features(), 28);
    }

    #[test]
    fn stratified_split_preserves_class_balance() {
        let d = higgs(2000, 0.3, 3);
        let (train, test) = stratified_split(&d, 0.25, 4);
        let frac = |ds: &Dataset| ds.class_counts()[1] as f64 / ds.n_samples() as f64;
        assert!(
            (frac(&train) - 0.3).abs() < 0.03,
            "train fraction {}",
            frac(&train)
        );
        assert!(
            (frac(&test) - 0.3).abs() < 0.03,
            "test fraction {}",
            frac(&test)
        );
        assert_eq!(train.n_samples() + test.n_samples(), 2000);
    }

    #[test]
    fn balanced_subset_has_equal_classes() {
        let d = higgs(3000, 0.3, 5);
        let sub = balanced_subset(&d, 400, 6);
        assert_eq!(sub.n_samples(), 800);
        assert_eq!(sub.class_counts(), vec![400, 400]);
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn balanced_subset_rejects_oversampling() {
        let d = higgs(100, 0.1, 7);
        let _ = balanced_subset(&d, 90, 8);
    }

    #[test]
    fn splits_are_deterministic_per_seed() {
        let d = higgs(500, 0.5, 9);
        let (a_train, a_test) = train_test_split(&d, 0.3, 10);
        let (b_train, b_test) = train_test_split(&d, 0.3, 10);
        assert_eq!(a_train, b_train);
        assert_eq!(a_test, b_test);
        let (c_train, _) = train_test_split(&d, 0.3, 11);
        assert_ne!(a_train, c_train);
    }

    #[test]
    fn no_sample_appears_in_both_parts() {
        // Give every sample a unique fingerprint via its index feature.
        let features = bcpnn_tensor::Matrix::from_fn(200, 1, |r, _| r as f32);
        let d = Dataset::new(features, (0..200).map(|i| i % 2).collect(), None);
        let (train, test) = stratified_split(&d, 0.25, 12);
        let train_ids: std::collections::HashSet<i64> = (0..train.n_samples())
            .map(|r| train.features.get(r, 0) as i64)
            .collect();
        for r in 0..test.n_samples() {
            assert!(!train_ids.contains(&(test.features.get(r, 0) as i64)));
        }
    }

    #[test]
    fn k_fold_covers_every_sample_exactly_once_as_validation() {
        let folds = k_fold_indices(103, 5, 13);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; 103];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 103);
            for &i in val {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn split_rejects_bad_fraction() {
        let d = higgs(10, 0.5, 14);
        let _ = train_test_split(&d, 1.5, 15);
    }
}
