//! Loader/writer for the UCI `HIGGS.csv` format.
//!
//! Each line of the UCI file is `label,f1,...,f28` with `label` being `1.0`
//! for signal and `0.0` for background and the 28 features in the order of
//! [`crate::higgs::FEATURE_NAMES`]. When the real 2 GB file is available it
//! can be dropped into any experiment through [`load_higgs_csv`]; the
//! synthetic generator writes the same format so the two paths are
//! interchangeable.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use bcpnn_tensor::Matrix;

use crate::dataset::Dataset;
use crate::higgs::{FEATURE_NAMES, N_FEATURES};

/// Errors produced while reading or writing CSV files.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (wrong column count, non-numeric value, bad label).
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parse HIGGS-format CSV from any reader. `max_rows` bounds how many events
/// are read (the UCI file has 11 million rows; the paper uses a subset).
pub fn read_higgs_csv<R: BufRead>(reader: R, max_rows: Option<usize>) -> Result<Dataset, CsvError> {
    let mut rows: Vec<f32> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for (line_no, line) in reader.lines().enumerate() {
        if let Some(limit) = max_rows {
            if labels.len() >= limit {
                break;
            }
        }
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut values = trimmed.split(',');
        let label_tok = values.next().ok_or_else(|| CsvError::Parse {
            line: line_no + 1,
            message: "empty line".into(),
        })?;
        let label_val: f64 = label_tok.trim().parse().map_err(|_| CsvError::Parse {
            line: line_no + 1,
            message: format!("bad label {label_tok:?}"),
        })?;
        let label = if (label_val - 1.0).abs() < 1e-6 {
            1usize
        } else if label_val.abs() < 1e-6 {
            0usize
        } else {
            return Err(CsvError::Parse {
                line: line_no + 1,
                message: format!("label must be 0 or 1, got {label_val}"),
            });
        };
        let mut count = 0usize;
        for tok in values {
            let v: f32 = tok.trim().parse().map_err(|_| CsvError::Parse {
                line: line_no + 1,
                message: format!("bad value {tok:?}"),
            })?;
            rows.push(v);
            count += 1;
        }
        if count != N_FEATURES {
            return Err(CsvError::Parse {
                line: line_no + 1,
                message: format!("expected {N_FEATURES} features, found {count}"),
            });
        }
        labels.push(label);
    }
    let n = labels.len();
    let features = Matrix::from_vec(n, N_FEATURES, rows);
    Ok(Dataset::new(
        features,
        labels,
        Some(FEATURE_NAMES.iter().map(|s| s.to_string()).collect()),
    ))
}

/// Load a HIGGS-format CSV file from disk.
pub fn load_higgs_csv<P: AsRef<Path>>(
    path: P,
    max_rows: Option<usize>,
) -> Result<Dataset, CsvError> {
    let f = File::open(path)?;
    read_higgs_csv(BufReader::new(f), max_rows)
}

/// Write a dataset in HIGGS CSV format (inverse of [`read_higgs_csv`]).
///
/// # Panics
/// Panics if the dataset does not have exactly 28 features.
pub fn write_higgs_csv<W: Write>(dataset: &Dataset, mut writer: W) -> Result<(), CsvError> {
    assert_eq!(
        dataset.n_features(),
        N_FEATURES,
        "HIGGS CSV requires exactly {N_FEATURES} features"
    );
    for r in 0..dataset.n_samples() {
        write!(writer, "{:.1}", dataset.labels[r] as f64)?;
        for &v in dataset.features.row(r) {
            write!(writer, ",{v}")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Save a dataset as a HIGGS-format CSV file.
pub fn save_higgs_csv<P: AsRef<Path>>(dataset: &Dataset, path: P) -> Result<(), CsvError> {
    let f = File::create(path)?;
    write_higgs_csv(dataset, BufWriter::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::higgs::{generate, SyntheticHiggsConfig};

    #[test]
    fn roundtrip_preserves_the_dataset() {
        let d = generate(&SyntheticHiggsConfig {
            n_samples: 50,
            seed: 1,
            ..Default::default()
        });
        let mut buf = Vec::new();
        write_higgs_csv(&d, &mut buf).unwrap();
        let back = read_higgs_csv(&buf[..], None).unwrap();
        assert_eq!(back.n_samples(), 50);
        assert_eq!(back.labels, d.labels);
        assert!(back.features.max_abs_diff(&d.features) < 1e-4);
    }

    #[test]
    fn max_rows_limits_the_read() {
        let d = generate(&SyntheticHiggsConfig {
            n_samples: 30,
            seed: 2,
            ..Default::default()
        });
        let mut buf = Vec::new();
        write_higgs_csv(&d, &mut buf).unwrap();
        let back = read_higgs_csv(&buf[..], Some(10)).unwrap();
        assert_eq!(back.n_samples(), 10);
    }

    #[test]
    fn rejects_wrong_column_counts() {
        let data = b"1.0,0.5,0.5\n";
        let err = read_higgs_csv(&data[..], None).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_labels_and_values() {
        let mut good_row = String::from("2.0");
        for _ in 0..N_FEATURES {
            good_row.push_str(",0.1");
        }
        good_row.push('\n');
        let err = read_higgs_csv(good_row.as_bytes(), None).unwrap_err();
        assert!(format!("{err}").contains("label"));

        let mut bad_value = String::from("1.0");
        for i in 0..N_FEATURES {
            bad_value.push_str(if i == 3 { ",oops" } else { ",0.1" });
        }
        bad_value.push('\n');
        let err = read_higgs_csv(bad_value.as_bytes(), None).unwrap_err();
        assert!(format!("{err}").contains("bad value"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let d = generate(&SyntheticHiggsConfig {
            n_samples: 3,
            seed: 3,
            ..Default::default()
        });
        let mut buf = Vec::new();
        write_higgs_csv(&d, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n');
        text.push('\n');
        let back = read_higgs_csv(text.as_bytes(), None).unwrap();
        assert_eq!(back.n_samples(), 3);
    }

    #[test]
    fn file_roundtrip() {
        let d = generate(&SyntheticHiggsConfig {
            n_samples: 20,
            seed: 4,
            ..Default::default()
        });
        let path = std::env::temp_dir().join(format!("bcpnn_higgs_{}.csv", std::process::id()));
        save_higgs_csv(&d, &path).unwrap();
        let back = load_higgs_csv(&path, None).unwrap();
        assert_eq!(back.n_samples(), 20);
        std::fs::remove_file(&path).ok();
    }
}
