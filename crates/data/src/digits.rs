//! Synthetic digit-like image patterns.
//!
//! Fig. 1 of the paper illustrates structural plasticity on MNIST: the
//! receptive fields of three HCUs converge onto the informative centre of
//! the images. MNIST itself is not bundled here, so this module generates
//! small binary images of simple stroke patterns (vertical / horizontal
//! bars, crosses, boxes, diagonals) whose informative pixels sit in the
//! centre of the canvas while the border is noise — the property the
//! receptive-field demo needs.

use bcpnn_tensor::{Matrix, MatrixRng};

use crate::dataset::Dataset;

/// The stroke patterns that play the role of digit classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// A vertical bar through the centre.
    VerticalBar,
    /// A horizontal bar through the centre.
    HorizontalBar,
    /// A plus-shaped cross.
    Cross,
    /// A hollow box.
    Box,
    /// A main-diagonal stroke.
    Diagonal,
}

impl Pattern {
    /// All supported patterns, indexed by class label.
    pub const ALL: [Pattern; 5] = [
        Pattern::VerticalBar,
        Pattern::HorizontalBar,
        Pattern::Cross,
        Pattern::Box,
        Pattern::Diagonal,
    ];

    /// Whether pixel `(row, col)` of a `size x size` canvas belongs to the
    /// clean stroke of this pattern.
    fn contains(self, row: usize, col: usize, size: usize) -> bool {
        let c = size / 2;
        let margin = size / 4;
        let in_core = |v: usize| v >= margin && v < size - margin;
        match self {
            Pattern::VerticalBar => in_core(row) && (col == c || col + 1 == c),
            Pattern::HorizontalBar => in_core(col) && (row == c || row + 1 == c),
            Pattern::Cross => {
                (in_core(row) && (col == c || col + 1 == c))
                    || (in_core(col) && (row == c || row + 1 == c))
            }
            Pattern::Box => {
                in_core(row)
                    && in_core(col)
                    && (row == margin
                        || row == size - margin - 1
                        || col == margin
                        || col == size - margin - 1)
            }
            Pattern::Diagonal => in_core(row) && in_core(col) && (row == col || row + 1 == col),
        }
    }
}

/// Configuration of the synthetic digit generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DigitsConfig {
    /// Canvas side length (images are `size x size`, flattened row-major).
    pub size: usize,
    /// Number of images to generate.
    pub n_samples: usize,
    /// Probability of flipping a stroke pixel off.
    pub dropout: f64,
    /// Probability of turning a background pixel on (salt noise).
    pub salt: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DigitsConfig {
    fn default() -> Self {
        Self {
            size: 16,
            n_samples: 1000,
            dropout: 0.1,
            salt: 0.02,
            seed: 7,
        }
    }
}

/// Generate the synthetic digit-pattern dataset. Labels are indices into
/// [`Pattern::ALL`]; features are flattened binary pixels.
pub fn generate(config: &DigitsConfig) -> Dataset {
    assert!(config.size >= 8, "canvas must be at least 8x8");
    assert!(config.n_samples > 0, "n_samples must be positive");
    let mut rng = MatrixRng::seed_from(config.seed);
    let d = config.size * config.size;
    let mut features = Matrix::zeros(config.n_samples, d);
    let mut labels = Vec::with_capacity(config.n_samples);
    for r in 0..config.n_samples {
        let class = r % Pattern::ALL.len();
        labels.push(class);
        let pattern = Pattern::ALL[class];
        for row in 0..config.size {
            for col in 0..config.size {
                let stroke = pattern.contains(row, col, config.size);
                let on = if stroke {
                    rng.uniform_scalar::<f64>(0.0, 1.0) >= config.dropout
                } else {
                    rng.uniform_scalar::<f64>(0.0, 1.0) < config.salt
                };
                if on {
                    features.set(r, row * config.size + col, 1.0);
                }
            }
        }
    }
    let names = (0..d)
        .map(|i| format!("px_{}_{}", i / config.size, i % config.size))
        .collect();
    Dataset::new(features, labels, Some(names))
}

/// Fraction of "on" pixels per image position, per class — the ideal
/// receptive field an HCU specialising on that class should discover.
pub fn class_prototype(dataset: &Dataset, class: usize, size: usize) -> Matrix<f32> {
    let idx = dataset.class_indices(class);
    let mut proto = Matrix::zeros(size, size);
    if idx.is_empty() {
        return proto;
    }
    for &i in &idx {
        for row in 0..size {
            for col in 0..size {
                proto.add_at(row, col, dataset.features.get(i, row * size + col));
            }
        }
    }
    proto.map_inplace(|v| v / idx.len() as f32);
    proto
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape_and_classes() {
        let d = generate(&DigitsConfig {
            n_samples: 250,
            ..Default::default()
        });
        assert_eq!(d.n_samples(), 250);
        assert_eq!(d.n_features(), 256);
        assert_eq!(d.n_classes(), 5);
        assert_eq!(d.class_counts(), vec![50; 5]);
        assert!(d.features.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn strokes_are_centre_heavy() {
        let cfg = DigitsConfig {
            n_samples: 500,
            ..Default::default()
        };
        let d = generate(&cfg);
        let size = cfg.size;
        // Mean activity of the centre 8x8 block vs the border ring.
        let mut centre = 0.0f64;
        let mut centre_n = 0usize;
        let mut border = 0.0f64;
        let mut border_n = 0usize;
        for r in 0..d.n_samples() {
            for row in 0..size {
                for col in 0..size {
                    let v = d.features.get(r, row * size + col) as f64;
                    let is_border = row == 0 || col == 0 || row == size - 1 || col == size - 1;
                    if is_border {
                        border += v;
                        border_n += 1;
                    } else if (4..12).contains(&row) && (4..12).contains(&col) {
                        centre += v;
                        centre_n += 1;
                    }
                }
            }
        }
        let centre_rate = centre / centre_n as f64;
        let border_rate = border / border_n as f64;
        assert!(
            centre_rate > 5.0 * border_rate,
            "centre {centre_rate:.3} vs border {border_rate:.3}"
        );
    }

    #[test]
    fn patterns_are_distinguishable() {
        let cfg = DigitsConfig {
            n_samples: 500,
            dropout: 0.0,
            salt: 0.0,
            ..Default::default()
        };
        let d = generate(&cfg);
        // Noise-free prototypes of different classes must differ.
        let p0 = class_prototype(&d, 0, cfg.size);
        let p1 = class_prototype(&d, 1, cfg.size);
        assert!(p0.max_abs_diff(&p1) > 0.5);
    }

    #[test]
    fn determinism_per_seed() {
        let a = generate(&DigitsConfig {
            n_samples: 64,
            ..Default::default()
        });
        let b = generate(&DigitsConfig {
            n_samples: 64,
            ..Default::default()
        });
        assert_eq!(a, b);
    }
}
