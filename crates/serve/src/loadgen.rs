//! Synthetic-Higgs load generator: drives any [`ServeTarget`] from
//! concurrent client threads, verifying responses as they arrive.
//!
//! Used by the `bcpnn-serve` demo binary, the serving benchmark, and the
//! hot-swap integration test to put realistic concurrent load on the
//! micro-batcher. The request payloads come from [`request_stream`], a
//! deterministic flat-matrix stream of synthetic Higgs events:
//!
//! ```
//! use bcpnn_serve::loadgen::request_stream;
//!
//! let stream = request_stream(16, 7);
//! assert_eq!((stream.len(), stream.width()), (16, 28));
//! // Deterministic: the same seed always produces the same stream.
//! assert_eq!(stream.row(3), request_stream(16, 7).row(3));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_tensor::Matrix;

use crate::error::ServeResult;
use crate::metrics::MetricsSnapshot;
use crate::registry::ModelRegistry;
use crate::server::{InferenceServer, PredictionHandle, SubmitOptions};
use crate::shard::ShardedServer;

/// A submission sink over the serving stack: the single-pool
/// [`InferenceServer`] or the [`ShardedServer`], behind one object-safe
/// surface.
///
/// This is what generalizes "something that serves models": the load
/// generator drives one to produce traffic, and the HTTP gateway
/// (`bcpnn-gateway`) exposes one on the wire — both without caring how
/// many collector/worker pools sit behind it. A `ServeTarget` can accept
/// option-carrying submissions, report its shared [`ModelRegistry`] (for
/// listings and hot-swap), and export its metrics.
pub trait ServeTarget: Send + Sync {
    /// Enqueue one raw feature vector with explicit priority/deadline
    /// options; returns a handle to wait on.
    fn submit_with_options(
        &self,
        model: &str,
        features: Vec<f32>,
        options: SubmitOptions,
    ) -> ServeResult<PredictionHandle>;

    /// The registry this target resolves models from. Publishing to it
    /// hot-swaps what subsequent batches use.
    fn registry(&self) -> &Arc<ModelRegistry>;

    /// Point-in-time metrics (aggregated across shards where relevant).
    fn metrics(&self) -> MetricsSnapshot;

    /// Prometheus text exposition of the target's metrics (per-shard and
    /// aggregate samples for a sharded target).
    fn to_prometheus(&self) -> String;

    /// Blocking single-request round trip with default options.
    fn predict(&self, model: &str, features: Vec<f32>) -> ServeResult<Vec<f32>> {
        self.submit_with_options(model, features, SubmitOptions::default())?
            .wait()
    }

    /// Class count of the named model, for response validation.
    fn n_classes_of(&self, model: &str) -> Option<usize> {
        self.registry()
            .lookup(model)
            .map(|m| m.predictor().n_classes())
    }
}

impl ServeTarget for InferenceServer {
    fn submit_with_options(
        &self,
        model: &str,
        features: Vec<f32>,
        options: SubmitOptions,
    ) -> ServeResult<PredictionHandle> {
        InferenceServer::submit_with_options(self, model, features, options)
    }

    fn registry(&self) -> &Arc<ModelRegistry> {
        InferenceServer::registry(self)
    }

    fn metrics(&self) -> MetricsSnapshot {
        InferenceServer::metrics(self)
    }

    fn to_prometheus(&self) -> String {
        InferenceServer::to_prometheus(self)
    }
}

impl ServeTarget for ShardedServer {
    fn submit_with_options(
        &self,
        model: &str,
        features: Vec<f32>,
        options: SubmitOptions,
    ) -> ServeResult<PredictionHandle> {
        ShardedServer::submit_with_options(self, model, features, options)
    }

    fn registry(&self) -> &Arc<ModelRegistry> {
        ShardedServer::registry(self)
    }

    fn metrics(&self) -> MetricsSnapshot {
        ShardedServer::metrics(self)
    }

    fn to_prometheus(&self) -> String {
        ShardedServer::to_prometheus(self)
    }
}

/// Load-generation knobs.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Registry name of the model to hit.
    pub model: String,
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Requests each client sends.
    pub requests_per_client: usize,
    /// Seed of the synthetic-Higgs request stream.
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            model: "higgs".to_string(),
            clients: 4,
            requests_per_client: 250,
            seed: 7,
        }
    }
}

/// Outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Successful responses received across all clients.
    pub responses: u64,
    /// Error responses received across all clients.
    pub errors: u64,
    /// Responses whose probabilities failed validation (wrong length or not
    /// summing to one) — always zero for a healthy server.
    pub invalid: u64,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

impl LoadReport {
    /// Successful responses per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.responses as f64 / self.wall.as_secs_f64()
        }
    }
}

/// A deterministic stream of raw feature vectors, stored as one flat
/// row-major buffer.
///
/// The previous spelling (`Vec<Vec<f32>>`) cost one heap allocation per
/// synthetic request before a single request had even been sent. The
/// stream now keeps the generator's feature matrix as-is — one allocation
/// for the whole stream — and hands out borrowed row views; callers that
/// need an owned payload (the submit API takes `Vec<f32>`) copy exactly
/// the rows they send.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestStream {
    features: Matrix<f32>,
}

impl RequestStream {
    /// Number of request vectors in the stream.
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.features.rows() == 0
    }

    /// Width of every request vector.
    pub fn width(&self) -> usize {
        self.features.cols()
    }

    /// Borrowed view of request `i` (no allocation).
    ///
    /// # Panics
    /// Panics if `i >= len()` (debug assertion, like [`Matrix::row`]).
    pub fn row(&self, i: usize) -> &[f32] {
        self.features.row(i)
    }

    /// Iterate over the request vectors as borrowed row views.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.features.iter_rows()
    }

    /// The whole stream as its backing feature matrix.
    pub fn features(&self) -> &Matrix<f32> {
        &self.features
    }
}

/// A deterministic stream of raw Higgs feature vectors for requests.
pub fn request_stream(n: usize, seed: u64) -> RequestStream {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: n.max(1),
        seed,
        ..Default::default()
    });
    RequestStream {
        features: data.features,
    }
}

/// Drive a server (single-pool or sharded) from `config.clients` concurrent
/// threads, each sending its slice of a shared synthetic request stream and
/// validating every response. Blocks until all clients finish.
pub fn run<T: ServeTarget>(server: &T, config: &LoadGenConfig) -> LoadReport {
    let total = config.clients * config.requests_per_client;
    let stream = request_stream(total, config.seed);
    let n_classes = server.n_classes_of(&config.model).unwrap_or(2);
    let responses = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let invalid = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..config.clients {
            let stream = &stream;
            let responses = &responses;
            let errors = &errors;
            let invalid = &invalid;
            let model = &config.model;
            let per_client = config.requests_per_client;
            scope.spawn(move || {
                for i in 0..per_client {
                    // The only per-request allocation left: the owned
                    // payload the submit API hands to the batcher.
                    let features = stream.row(client * per_client + i).to_vec();
                    match server.predict(model, features) {
                        Ok(proba) => {
                            responses.fetch_add(1, Ordering::Relaxed);
                            let sum: f32 = proba.iter().sum();
                            if proba.len() != n_classes || (sum - 1.0).abs() > 1e-3 {
                                invalid.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    LoadReport {
        responses: responses.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        invalid: invalid.load(Ordering::Relaxed),
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelRegistry, ServedModel};
    use crate::server::BatchConfig;
    use crate::testutil::tiny_pipeline;
    use std::sync::Arc;

    #[test]
    fn stream_is_deterministic_and_wide_enough() {
        let a = request_stream(50, 3);
        let b = request_stream(50, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(!a.is_empty());
        assert_eq!(a.width(), 28);
        assert!(a.iter().all(|row| row.len() == 28));
        assert_ne!(a, request_stream(50, 4));
        // Row views are windows into one flat buffer, not copies.
        assert_eq!(a.row(7), a.features().row(7));
        assert_eq!(a.features().shape(), (50, 28));
    }

    #[test]
    fn throughput_is_zero_for_empty_or_instant_runs() {
        // A run that finished in zero wall-clock time (or never ran) must
        // report 0 req/s, not inf or NaN.
        let instant = LoadReport {
            responses: 100,
            errors: 0,
            invalid: 0,
            wall: Duration::ZERO,
        };
        assert_eq!(instant.throughput_rps(), 0.0);
        let empty = LoadReport {
            responses: 0,
            errors: 0,
            invalid: 0,
            wall: Duration::ZERO,
        };
        assert_eq!(empty.throughput_rps(), 0.0);
        assert!(empty.throughput_rps().is_finite());
        // A normal run still divides.
        let normal = LoadReport {
            responses: 100,
            errors: 0,
            invalid: 0,
            wall: Duration::from_secs(2),
        };
        assert_eq!(normal.throughput_rps(), 50.0);
    }

    #[test]
    fn loadgen_drives_a_sharded_server() {
        use crate::shard::{ShardConfig, ShardedServer};
        let (pipeline, _) = tiny_pipeline(41);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(ServedModel::new("higgs", 1, pipeline));
        let server = ShardedServer::start(registry, ShardConfig::new(2));
        let report = run(
            &server,
            &LoadGenConfig {
                clients: 2,
                requests_per_client: 20,
                ..Default::default()
            },
        );
        assert_eq!(report.responses, 40);
        assert_eq!(report.errors, 0);
        assert_eq!(report.invalid, 0);
        assert_eq!(server.metrics().responses, 40);
    }

    #[test]
    fn concurrent_load_completes_without_invalid_responses() {
        let (pipeline, _) = tiny_pipeline(40);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(ServedModel::new("higgs", 1, pipeline));
        let server = InferenceServer::start(registry, BatchConfig::default());
        let report = run(
            &server,
            &LoadGenConfig {
                clients: 4,
                requests_per_client: 25,
                ..Default::default()
            },
        );
        assert_eq!(report.responses, 100);
        assert_eq!(report.errors, 0);
        assert_eq!(report.invalid, 0);
        assert!(report.throughput_rps() > 0.0);
        let m = server.metrics();
        assert_eq!(m.responses, 100);
        assert!(
            m.mean_batch_size > 1.0,
            "4 concurrent clients must co-batch at least sometimes (mean {})",
            m.mean_batch_size
        );
    }
}
