//! # bcpnn-serve
//!
//! Micro-batched inference serving for StreamBrain-rs: the subsystem that
//! turns trained BCPNN models into a concurrent, hot-swappable prediction
//! service.
//!
//! The paper's throughput story is batch-parallel HCU updates — amortize
//! per-item overhead by processing vectorized batches. This crate applies
//! the same insight to the serving workload:
//!
//! * Models are served through the core
//!   [`Predictor`](bcpnn_core::model::Predictor) trait: any fitted
//!   artifact publishes. The common case is [`Pipeline`] (re-exported from
//!   `bcpnn_core::model`) — a chain of fitted transformer stages bundled
//!   with a trained [`bcpnn_core::Network`], so requests carry *raw*
//!   feature vectors.
//! * [`ModelRegistry`] — named, versioned models shared as
//!   `Arc<ServedModel>`, with atomic zero-downtime **hot-swap**: in-flight
//!   batches finish on the version they started with.
//! * [`InferenceServer`] — the micro-batching scheduler: a collector thread
//!   coalesces single-vector requests into batches (bounded by
//!   [`BatchConfig::max_batch`] / [`BatchConfig::max_wait`]) and worker
//!   threads run each batch as one vectorized encode → forward → readout
//!   pass.
//! * [`ShardedServer`] — one model partitioned across `N` independent
//!   collector+worker pools sharing a registry, routed by a stable hash of
//!   the feature vector, round-robin, or live pending-queue depth
//!   ([`ShardRouting::LeastLoaded`]), with per-shard and aggregated
//!   metrics.
//! * [`BatchExecutor`] — each worker's persistent batch-assembly matrix +
//!   model [`Workspace`] + output buffer: the steady-state micro-batch
//!   compute loop performs zero heap allocations after warmup
//!   (`tests/alloc_regression.rs` enforces it with a counting allocator).
//! * [`SubmitOptions`] — per-request [`Priority`] (high-priority requests
//!   drain first), deadline (expired requests fail with
//!   [`ServeError::DeadlineExceeded`] instead of wasting a forward pass),
//!   and a confidence floor ([`SubmitOptions::abstain_below`]): requests
//!   whose prediction margin falls below it fail with
//!   [`ServeError::Abstained`] instead of returning a low-confidence
//!   answer.
//! * [`CascadeModel`] — the quantized→f32 **cascade**: a cheap tier
//!   answers the confident rows and only low-margin rows escalate to the
//!   full-precision parent, bit-identically to running it alone
//!   (`bcpnn_cascade_*_total` counters ride along on the same scrape).
//! * [`ServingMetrics`] — request/batch counters, batch-size histogram, and
//!   p50/p99 latency estimates, exposed as a [`MetricsSnapshot`] that also
//!   renders Prometheus text exposition format
//!   ([`MetricsSnapshot::to_prometheus`], structural validity checkable
//!   with [`validate_prometheus`]).
//! * [`ServeTarget`] — the object-safe submission surface both server
//!   shapes share (options-carrying submit, registry access, metrics
//!   export); the load generator drives one and the `bcpnn-gateway` HTTP
//!   front-end exposes one on the wire.
//! * [`loadgen`] — a synthetic-Higgs load generator used by the
//!   `bcpnn-serve` demo binary and the serving benchmarks.
//!
//! ```
//! use std::sync::Arc;
//! use bcpnn_backend::BackendKind;
//! use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams};
//! use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
//! use bcpnn_serve::{BatchConfig, InferenceServer, ModelRegistry, ServedModel};
//!
//! // Train a tiny model on synthetic Higgs collisions: the one-call
//! // fit → (encoder + network) pipeline from the core model API.
//! let data = generate(&SyntheticHiggsConfig { n_samples: 300, ..Default::default() });
//! let (pipeline, _report) = Pipeline::fit(
//!     &data,
//!     10,
//!     Network::builder()
//!         .hidden(2, 4, 0.3)
//!         .classes(2)
//!         .readout(ReadoutKind::Hybrid)
//!         .backend(BackendKind::Naive)
//!         .seed(1),
//!     TrainingParams {
//!         unsupervised_epochs: 1,
//!         supervised_epochs: 1,
//!         batch_size: 50,
//!         ..Default::default()
//!     },
//! )
//! .unwrap();
//!
//! // Publish it and serve raw feature vectors through the micro-batcher.
//! let registry = Arc::new(ModelRegistry::new());
//! registry.publish(ServedModel::new("higgs", 1, pipeline));
//! let server = InferenceServer::start(Arc::clone(&registry), BatchConfig::default());
//!
//! let proba = server.predict("higgs", data.features.row(0).to_vec()).unwrap();
//! assert_eq!(proba.len(), 2);
//! assert!((proba.iter().sum::<f32>() - 1.0).abs() < 1e-4);
//! assert_eq!(server.metrics().responses, 1);
//! ```

#![warn(missing_docs)]

pub mod cascade;
mod error;
pub mod loadgen;
mod metrics;
mod registry;
mod server;
mod shard;
#[cfg(test)]
mod testutil;

/// The serving artifact: re-exported from `bcpnn_core::model`, where the
/// unified estimator/transformer API lives.
pub use bcpnn_core::model::Pipeline;
/// Per-worker scratch for the zero-allocation data plane: re-exported from
/// `bcpnn_core::workspace`.
pub use bcpnn_core::Workspace;
pub use cascade::{CascadeModel, CascadeStats};
pub use error::{ServeError, ServeResult};
pub use loadgen::ServeTarget;
pub use metrics::{validate_prometheus, MetricsSnapshot, ServingMetrics};
pub use registry::{ModelRegistry, ServedModel};
pub use server::{
    BatchConfig, BatchExecutor, InferenceServer, PredictionHandle, Priority, SubmitOptions,
};
pub use shard::{RouteMode, ShardConfig, ShardRouting, ShardedServer};
