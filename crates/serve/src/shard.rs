//! Sharded serving: one model partitioned across several independent
//! collector+worker pools.
//!
//! Once a single micro-batching pool saturates — one collector thread, one
//! batch queue — the next scaling step is the one the message-passing
//! cluster literature takes for Swendsen-Wang: partition the work across
//! independent workers and keep the per-worker batch vectorization. A
//! [`ShardedServer`] owns `N` full [`InferenceServer`] pools over one
//! shared [`ModelRegistry`], so a hot-swap still flips every shard
//! atomically, and each shard batches, schedules, and measures
//! independently.
//!
//! Routing is deterministic by default: a stable FNV-1a hash of the raw
//! feature bytes picks the shard, so identical requests land on the same
//! pool (cache-friendly, reproducible). [`ShardRouting::RoundRobin`]
//! spreads strictly uniformly instead, for workloads with hot duplicate
//! vectors.
//!
//! Per-shard [`MetricsSnapshot`]s aggregate exactly (counters and
//! histograms add) into one server-wide view, and both levels render in
//! Prometheus text exposition format via [`ShardedServer::to_prometheus`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::ServeResult;
use crate::metrics::MetricsSnapshot;
use crate::registry::ModelRegistry;
use crate::server::{BatchConfig, InferenceServer, PredictionHandle, SubmitOptions};

/// How a [`ShardedServer`] assigns requests to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardRouting {
    /// Stable FNV-1a hash of the request's feature bytes: identical
    /// vectors always hit the same shard.
    #[default]
    FeatureHash,
    /// Strict rotation across shards: perfectly uniform load regardless of
    /// the feature distribution.
    RoundRobin,
    /// Load-aware: send each request to the shard with the smallest
    /// pending-queue depth (accepted requests without a terminal outcome;
    /// ties break toward the lowest shard id). Unlike the static policies
    /// above this adapts when one shard falls behind — a slow batch, a
    /// skewed hash, a noisy neighbour — at the cost of three atomic loads
    /// per shard on the submit path.
    LeastLoaded,
}

/// Alias for [`ShardRouting`]: the request-to-shard route mode.
pub type RouteMode = ShardRouting;

/// Configuration for a [`ShardedServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of independent collector+worker pools.
    pub shards: usize,
    /// Batching defaults applied inside every shard (per-model policies
    /// published to the registry still override them).
    pub batch: BatchConfig,
    /// Request-to-shard assignment strategy.
    pub routing: ShardRouting,
}

impl ShardConfig {
    /// `shards` pools with default batching and hash routing.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            batch: BatchConfig::default(),
            routing: ShardRouting::default(),
        }
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self::new(4)
    }
}

/// `N` independent [`InferenceServer`] pools over one shared registry,
/// with deterministic request routing and aggregated metrics.
///
/// ```
/// use std::sync::Arc;
/// use bcpnn_backend::BackendKind;
/// use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams};
/// use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
/// use bcpnn_serve::{ModelRegistry, ServedModel, ShardConfig, ShardedServer};
///
/// let data = generate(&SyntheticHiggsConfig { n_samples: 300, ..Default::default() });
/// let (pipeline, _) = Pipeline::fit(
///     &data,
///     10,
///     Network::builder()
///         .hidden(2, 4, 0.3)
///         .classes(2)
///         .readout(ReadoutKind::Hybrid)
///         .backend(BackendKind::Naive)
///         .seed(1),
///     TrainingParams {
///         unsupervised_epochs: 1,
///         supervised_epochs: 1,
///         batch_size: 50,
///         ..Default::default()
///     },
/// )
/// .unwrap();
///
/// let registry = Arc::new(ModelRegistry::new());
/// registry.publish(ServedModel::new("higgs", 1, pipeline));
/// let server = ShardedServer::start(Arc::clone(&registry), ShardConfig::new(2));
/// assert_eq!(server.n_shards(), 2);
///
/// // Requests route to a shard; a hot-swap through the shared registry
/// // flips every shard at once.
/// let proba = server.predict("higgs", data.features.row(0).to_vec()).unwrap();
/// assert_eq!(proba.len(), 2);
///
/// // Per-shard and aggregate samples render into one scrape.
/// let text = server.to_prometheus();
/// assert!(text.contains(r#"bcpnn_serve_requests_total{shard="all"} 1"#));
/// ```
pub struct ShardedServer {
    registry: Arc<ModelRegistry>,
    shards: Vec<InferenceServer>,
    routing: ShardRouting,
    next: AtomicUsize,
}

impl ShardedServer {
    /// Start `config.shards` full collector+worker pools over `registry`.
    pub fn start(registry: Arc<ModelRegistry>, config: ShardConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        let shards = (0..config.shards)
            .map(|_| InferenceServer::start(Arc::clone(&registry), config.batch))
            .collect();
        Self {
            registry,
            shards,
            routing: config.routing,
            next: AtomicUsize::new(0),
        }
    }

    /// The shared registry. Publishing to it hot-swaps the model on every
    /// shard at once (each shard resolves the current version per batch).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a feature vector routes to under the configured policy.
    /// Round-robin routing advances the rotation, so consecutive calls
    /// return consecutive shards; least-loaded routing reads each shard's
    /// live queue depth.
    pub fn route(&self, features: &[f32]) -> usize {
        match self.routing {
            ShardRouting::FeatureHash => fnv1a_f32(features) as usize % self.shards.len(),
            ShardRouting::RoundRobin => {
                self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len()
            }
            ShardRouting::LeastLoaded => {
                argmin(self.shards.iter().map(InferenceServer::queue_depth))
            }
        }
    }

    /// Live pending-queue depth of every shard, indexed by shard id (what
    /// [`ShardRouting::LeastLoaded`] balances on).
    #[must_use]
    pub fn queue_depths(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(InferenceServer::queue_depth)
            .collect()
    }

    /// Enqueue one feature vector with default options on its shard.
    pub fn submit(&self, model: &str, features: Vec<f32>) -> ServeResult<PredictionHandle> {
        self.submit_with_options(model, features, SubmitOptions::default())
    }

    /// Enqueue one feature vector with explicit priority/deadline options
    /// on its shard.
    pub fn submit_with_options(
        &self,
        model: &str,
        features: Vec<f32>,
        options: SubmitOptions,
    ) -> ServeResult<PredictionHandle> {
        let shard = self.route(&features);
        self.shards[shard].submit_with_options(model, features, options)
    }

    /// Submit and block until the class probabilities arrive.
    pub fn predict(&self, model: &str, features: Vec<f32>) -> ServeResult<Vec<f32>> {
        self.submit(model, features)?.wait()
    }

    /// Aggregated metrics across every shard (counters and histograms add
    /// exactly; means and percentiles are recomputed from the merged
    /// histograms).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot::aggregate(&self.shard_metrics())
    }

    /// Point-in-time metrics of each shard, indexed by shard id.
    #[must_use]
    pub fn shard_metrics(&self) -> Vec<MetricsSnapshot> {
        self.shards.iter().map(|s| s.metrics()).collect()
    }

    /// Prometheus text exposition for the whole server. Each metric is
    /// declared (`# HELP`/`# TYPE`) exactly once and carries one sample
    /// per shard labeled `shard="0"`..`shard="N-1"`, plus the aggregate
    /// labeled `shard="all"` — distinguishable so a PromQL
    /// `sum by (...) (metric{shard!="all"})` never double-counts. Live
    /// [`CascadeModel`](crate::CascadeModel) counters are appended
    /// ([`crate::cascade::prometheus_exposition`]).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let per_shard = self.shard_metrics();
        let aggregate = MetricsSnapshot::aggregate(&per_shard);
        let shard_ids: Vec<String> = (0..per_shard.len()).map(|i| i.to_string()).collect();
        let mut series: Vec<(Vec<(&str, &str)>, &MetricsSnapshot)> =
            vec![(vec![("shard", "all")], &aggregate)];
        for (id, snapshot) in shard_ids.iter().zip(&per_shard) {
            series.push((vec![("shard", id.as_str())], snapshot));
        }
        let mut out = crate::metrics::render_prometheus(&series);
        out.push_str(&crate::cascade::prometheus_exposition());
        out
    }
}

impl std::fmt::Debug for ShardedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedServer")
            .field("shards", &self.shards.len())
            .field("routing", &self.routing)
            .field("models", &self.registry.model_names())
            .finish()
    }
}

/// Index of the smallest value, ties breaking toward the lowest index.
///
/// # Panics
/// Panics on an empty iterator (a sharded server always has ≥ 1 shard).
fn argmin<I: Iterator<Item = u64>>(values: I) -> usize {
    let mut best = None;
    for (i, v) in values.enumerate() {
        match best {
            Some((_, bv)) if v >= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.expect("argmin of no shards").0
}

/// FNV-1a over the IEEE-754 bit patterns of the features: stable across
/// runs and platforms, cheap enough to sit on the submit path.
fn fnv1a_f32(features: &[f32]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &f in features {
        for byte in f.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ServedModel;
    use crate::server::Priority;
    use crate::testutil::tiny_pipeline;
    use crate::ServeError;
    use std::time::Duration;

    fn sharded(seed: u64, routing: ShardRouting) -> (ShardedServer, bcpnn_data::Dataset) {
        let (pipeline, data) = tiny_pipeline(seed);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(ServedModel::new("higgs", 1, pipeline));
        let server = ShardedServer::start(
            registry,
            ShardConfig {
                shards: 4,
                batch: BatchConfig {
                    max_batch: 8,
                    max_wait: Duration::from_millis(1),
                    workers: 1,
                },
                routing,
            },
        );
        (server, data)
    }

    #[test]
    fn hash_routing_is_stable_and_in_range() {
        let (server, data) = sharded(50, ShardRouting::FeatureHash);
        for r in 0..20 {
            let row = data.features.row(r);
            let shard = server.route(row);
            assert!(shard < 4);
            assert_eq!(shard, server.route(row), "same vector, same shard");
        }
        // 20 distinct vectors across 4 shards: the hash must actually
        // spread (a constant router would put all 20 on one shard).
        let distinct: std::collections::HashSet<usize> = (0..20)
            .map(|r| server.route(data.features.row(r)))
            .collect();
        assert!(distinct.len() > 1, "hash routing must spread load");
    }

    #[test]
    fn round_robin_routing_rotates_uniformly() {
        let (server, data) = sharded(51, ShardRouting::RoundRobin);
        let row = data.features.row(0);
        let shards: Vec<usize> = (0..8).map(|_| server.route(row)).collect();
        assert_eq!(shards, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn argmin_picks_the_smallest_with_stable_ties() {
        assert_eq!(argmin([3u64, 1, 2].into_iter()), 1);
        assert_eq!(argmin([0u64, 0, 0].into_iter()), 0, "ties break low");
        assert_eq!(argmin([5u64, 2, 2, 7].into_iter()), 1);
        assert_eq!(argmin([9u64].into_iter()), 0);
    }

    #[test]
    fn least_loaded_routing_avoids_the_busy_shard() {
        // A model policy that holds requests pending for a long linger
        // window, so submitted work stays visibly queued.
        let (pipeline, data) = tiny_pipeline(56);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(ServedModel::new("higgs", 1, pipeline));
        let server = ShardedServer::start(
            registry,
            ShardConfig {
                shards: 3,
                batch: BatchConfig {
                    max_batch: 1024,
                    max_wait: Duration::from_secs(30),
                    workers: 1,
                },
                routing: ShardRouting::LeastLoaded,
            },
        );
        // All depths are zero: ties break toward shard 0.
        assert_eq!(server.route(data.features.row(0)), 0);
        assert_eq!(server.queue_depths(), vec![0, 0, 0]);
        // One pending request on shard 0 steers the next one to shard 1,
        // the next to shard 2, then back to 0 — queue depth, not rotation.
        let h0 = server
            .submit("higgs", data.features.row(0).to_vec())
            .unwrap();
        assert_eq!(server.queue_depths(), vec![1, 0, 0]);
        assert_eq!(server.route(data.features.row(0)), 1);
        let h1 = server
            .submit("higgs", data.features.row(1).to_vec())
            .unwrap();
        let h2 = server
            .submit("higgs", data.features.row(2).to_vec())
            .unwrap();
        assert_eq!(server.queue_depths(), vec![1, 1, 1]);
        assert_eq!(server.route(data.features.row(3)), 0);
        // Shutdown flushes the lingering batches; every caller still gets a
        // terminal answer.
        drop(server);
        for handle in [h0, h1, h2] {
            match handle.wait() {
                Ok(proba) => assert_eq!(proba.len(), 2),
                Err(ServeError::Disconnected) => {}
                Err(other) => panic!("unexpected error {other}"),
            }
        }
    }

    #[test]
    fn least_loaded_serving_still_returns_correct_predictions() {
        let (server, data) = sharded(57, ShardRouting::LeastLoaded);
        let direct = server
            .registry()
            .get("higgs")
            .unwrap()
            .predictor()
            .predict_proba(&data.features)
            .unwrap();
        let handles: Vec<_> = (0..30)
            .map(|r| {
                server
                    .submit("higgs", data.features.row(r).to_vec())
                    .unwrap()
            })
            .collect();
        for (r, handle) in handles.into_iter().enumerate() {
            let got = handle.wait().unwrap();
            for (c, v) in got.iter().enumerate() {
                assert!((v - direct.get(r, c)).abs() < 1e-5, "row {r} col {c}");
            }
        }
        let m = server.metrics();
        assert_eq!(m.responses, 30);
        assert_eq!(m.pending, 0, "drained server has no pending requests");
    }

    #[test]
    fn sharded_predictions_match_direct_inference() {
        let (server, data) = sharded(52, ShardRouting::FeatureHash);
        let direct = server
            .registry()
            .get("higgs")
            .unwrap()
            .predictor()
            .predict_proba(&data.features)
            .unwrap();
        let handles: Vec<_> = (0..40)
            .map(|r| {
                server
                    .submit("higgs", data.features.row(r).to_vec())
                    .unwrap()
            })
            .collect();
        for (r, handle) in handles.into_iter().enumerate() {
            let got = handle.wait().unwrap();
            for (c, v) in got.iter().enumerate() {
                assert!(
                    (v - direct.get(r, c)).abs() < 1e-5,
                    "row {r} col {c}: {v} vs {}",
                    direct.get(r, c)
                );
            }
        }
        let m = server.metrics();
        assert_eq!(m.responses, 40);
        assert_eq!(m.errors, 0);
        assert_eq!(
            m.responses,
            server
                .shard_metrics()
                .iter()
                .map(|s| s.responses)
                .sum::<u64>()
        );
    }

    #[test]
    fn round_robin_spreads_load_across_all_shards() {
        let (server, data) = sharded(53, ShardRouting::RoundRobin);
        let handles: Vec<_> = (0..40)
            .map(|r| {
                server
                    .submit("higgs", data.features.row(r).to_vec())
                    .unwrap()
            })
            .collect();
        for handle in handles {
            handle.wait().unwrap();
        }
        let per_shard = server.shard_metrics();
        assert_eq!(per_shard.len(), 4);
        for (i, m) in per_shard.iter().enumerate() {
            assert_eq!(m.requests, 10, "shard {i} must take exactly 1/4 the load");
        }
    }

    #[test]
    fn options_flow_through_to_the_shard() {
        let (server, data) = sharded(54, ShardRouting::FeatureHash);
        let expired = server
            .submit_with_options(
                "higgs",
                data.features.row(0).to_vec(),
                SubmitOptions::new().deadline(Duration::ZERO),
            )
            .unwrap()
            .wait();
        assert!(matches!(expired, Err(ServeError::DeadlineExceeded)));
        let ok = server
            .submit_with_options(
                "higgs",
                data.features.row(1).to_vec(),
                SubmitOptions::new().priority(Priority::High),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(ok.len(), 2);
        let m = server.metrics();
        assert_eq!(m.expired, 1);
        assert_eq!(m.responses, 1);
    }

    #[test]
    fn prometheus_export_covers_aggregate_and_every_shard() {
        let (server, data) = sharded(55, ShardRouting::RoundRobin);
        for r in 0..8 {
            server
                .predict("higgs", data.features.row(r).to_vec())
                .unwrap();
        }
        let text = server.to_prometheus();
        // One declaration per metric; the aggregate is labeled shard="all"
        // so summing over the real shards never double-counts.
        assert_eq!(text.matches("# TYPE bcpnn_serve_requests_total").count(), 1);
        assert!(text.contains("bcpnn_serve_requests_total{shard=\"all\"} 8"));
        for shard in 0..4 {
            assert!(
                text.contains(&format!(
                    "bcpnn_serve_requests_total{{shard=\"{shard}\"}} 2"
                )),
                "missing shard {shard} samples"
            );
        }
    }

    #[test]
    fn sharded_server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedServer>();
    }
}
