//! The [`Pipeline`] serving artifact: a fitted input encoder bundled with a
//! trained network, so the server accepts *raw* feature vectors end-to-end.
//!
//! Offline experiments encode the whole dataset once and train on the
//! binary code; a serving system cannot ask its clients to do that. The
//! pipeline closes the gap: requests carry the 28 raw Higgs features, and
//! encode → hidden forward → readout all happen inside one batched call.

use std::path::Path;

use bcpnn_backend::BackendKind;
use bcpnn_core::{load_network_with_encoder, save_network_with_encoder, Network};
use bcpnn_data::QuantileEncoder;
use bcpnn_tensor::Matrix;

use crate::error::{ServeError, ServeResult};

/// A complete inference artifact: optional raw-feature encoder + network.
///
/// With an encoder, [`Pipeline::predict_proba`] expects raw feature rows
/// (e.g. 28 columns for Higgs); without one it expects already-encoded
/// rows matching the network's input width.
#[derive(Debug)]
pub struct Pipeline {
    network: Network,
    encoder: Option<QuantileEncoder>,
}

impl Pipeline {
    /// Bundle a network with an optional fitted encoder.
    ///
    /// Fails if the encoder's output width does not match the network's
    /// input width.
    pub fn new(network: Network, encoder: Option<QuantileEncoder>) -> ServeResult<Self> {
        if let Some(enc) = &encoder {
            let expected = network.hidden().params().n_inputs;
            if enc.encoded_width() != expected {
                return Err(ServeError::Model(format!(
                    "encoder produces {} columns but the network expects {}",
                    enc.encoded_width(),
                    expected
                )));
            }
        }
        Ok(Self { network, encoder })
    }

    /// The wrapped network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The bundled encoder, if any.
    pub fn encoder(&self) -> Option<&QuantileEncoder> {
        self.encoder.as_ref()
    }

    /// Width of the feature vectors requests must supply: the raw feature
    /// count when an encoder is bundled, the encoded width otherwise.
    pub fn input_width(&self) -> usize {
        match &self.encoder {
            Some(enc) => enc.n_features(),
            None => self.network.hidden().params().n_inputs,
        }
    }

    /// Number of output classes.
    pub fn n_classes(&self) -> usize {
        self.network.n_classes()
    }

    /// Class probabilities for a batch of feature rows (raw features when an
    /// encoder is bundled). This is the single vectorized pass the
    /// micro-batcher amortizes request overhead into.
    pub fn predict_proba(&self, rows: &Matrix<f32>) -> ServeResult<Matrix<f32>> {
        if rows.cols() != self.input_width() {
            return Err(ServeError::ShapeMismatch {
                expected: self.input_width(),
                got: rows.cols(),
            });
        }
        let proba = match &self.encoder {
            Some(enc) => self.network.predict_proba(&enc.transform_rows(rows))?,
            None => self.network.predict_proba(rows)?,
        };
        Ok(proba)
    }

    /// Save the artifact as a (v2) model directory.
    pub fn save<P: AsRef<Path>>(&self, dir: P) -> ServeResult<()> {
        save_network_with_encoder(&self.network, self.encoder.as_ref(), dir)?;
        Ok(())
    }

    /// Load an artifact from a model directory, instantiating the network
    /// on the given backend.
    pub fn load<P: AsRef<Path>>(dir: P, backend: BackendKind) -> ServeResult<Self> {
        let (network, encoder) = load_network_with_encoder(dir, backend)?;
        Pipeline::new(network, encoder)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use bcpnn_core::{ReadoutKind, Trainer, TrainingParams};
    use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};

    pub(crate) fn tiny_pipeline(seed: u64) -> (Pipeline, bcpnn_data::Dataset) {
        let data = generate(&SyntheticHiggsConfig {
            n_samples: 400,
            seed,
            ..Default::default()
        });
        let encoder = QuantileEncoder::fit(&data, 10);
        let x = encoder.transform(&data);
        let mut network = Network::builder()
            .input(encoder.encoded_width())
            .hidden(2, 4, 0.3)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(seed)
            .build()
            .unwrap();
        Trainer::new(TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 50,
            ..Default::default()
        })
        .fit(&mut network, &x, &data.labels)
        .unwrap();
        (Pipeline::new(network, Some(encoder)).unwrap(), data)
    }

    #[test]
    fn pipeline_accepts_raw_features() {
        let (pipeline, data) = tiny_pipeline(1);
        assert_eq!(pipeline.input_width(), 28);
        assert_eq!(pipeline.n_classes(), 2);
        let proba = pipeline.predict_proba(&data.features).unwrap();
        assert_eq!(proba.shape(), (data.n_samples(), 2));
        for r in 0..proba.rows() {
            let s: f32 = proba.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
        }
    }

    #[test]
    fn pipeline_matches_manual_encode_then_predict() {
        let (pipeline, data) = tiny_pipeline(2);
        let manual = pipeline
            .network()
            .predict_proba(&pipeline.encoder().unwrap().transform_rows(&data.features))
            .unwrap();
        let auto = pipeline.predict_proba(&data.features).unwrap();
        assert!(manual.max_abs_diff(&auto) < 1e-6);
    }

    #[test]
    fn wrong_width_is_rejected() {
        let (pipeline, _) = tiny_pipeline(3);
        let bad = Matrix::zeros(2, 5);
        assert!(matches!(
            pipeline.predict_proba(&bad),
            Err(ServeError::ShapeMismatch {
                expected: 28,
                got: 5
            })
        ));
    }

    #[test]
    fn mismatched_encoder_is_rejected_at_construction() {
        let (pipeline, _) = tiny_pipeline(4);
        let (other, _) = tiny_pipeline(5);
        let narrow_net = Network::builder()
            .input(16)
            .hidden(2, 4, 0.5)
            .classes(2)
            .backend(BackendKind::Naive)
            .build()
            .unwrap();
        let enc = other.encoder.unwrap();
        assert!(Pipeline::new(narrow_net, Some(enc)).is_err());
        drop(pipeline);
    }

    #[test]
    fn save_load_roundtrip_preserves_serving_behavior() {
        let (pipeline, data) = tiny_pipeline(6);
        let dir = std::env::temp_dir()
            .join("bcpnn_serve_pipeline_tests")
            .join(format!("roundtrip_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        pipeline.save(&dir).unwrap();
        let loaded = Pipeline::load(&dir, BackendKind::Naive).unwrap();
        assert!(loaded.encoder().is_some());
        let a = pipeline.predict_proba(&data.features).unwrap();
        let b = loaded.predict_proba(&data.features).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
