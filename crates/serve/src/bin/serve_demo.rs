//! `bcpnn-serve` demo: train a Higgs classifier, serve it through the
//! micro-batcher under concurrent synthetic load, hot-swap a retrained
//! version mid-flight, and report the serving metrics.
//!
//! ```text
//! bcpnn-serve [--clients N] [--requests N] [--train-samples N]
//!             [--max-batch N] [--max-wait-us N] [--workers N]
//!             [--shards N] [--prometheus]
//! ```

use std::sync::Arc;
use std::time::Duration;

use bcpnn_backend::BackendKind;
use bcpnn_core::{Network, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_serve::loadgen::{self, LoadGenConfig};
use bcpnn_serve::{
    BatchConfig, ModelRegistry, Pipeline, ServedModel, ShardConfig, ShardRouting, ShardedServer,
};

struct Args {
    clients: usize,
    requests_per_client: usize,
    train_samples: usize,
    max_batch: usize,
    max_wait: Duration,
    workers: usize,
    shards: usize,
    prometheus: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            clients: 4,
            requests_per_client: 250,
            train_samples: 2000,
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            workers: 2,
            shards: 2,
            prometheus: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |what: &str| -> u64 {
                it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: {flag} needs a numeric {what}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--clients" => args.clients = value("count") as usize,
                "--requests" => args.requests_per_client = value("count") as usize,
                "--train-samples" => args.train_samples = value("count") as usize,
                "--max-batch" => args.max_batch = value("size") as usize,
                "--max-wait-us" => args.max_wait = Duration::from_micros(value("duration")),
                "--workers" => args.workers = value("count") as usize,
                "--shards" => args.shards = value("count") as usize,
                "--prometheus" => args.prometheus = true,
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

/// Train one model version on synthetic Higgs data through the shared
/// `Pipeline::fit` entry point (encoder + network in one call).
fn train_version(n_samples: usize, seed: u64) -> Pipeline {
    let data = generate(&SyntheticHiggsConfig {
        n_samples,
        seed,
        ..Default::default()
    });
    let (pipeline, _report) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(4, 8, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 2,
            batch_size: 128,
            ..Default::default()
        },
    )
    .expect("training on synthetic data succeeds");
    pipeline
}

fn main() {
    let args = Args::parse();
    println!("== bcpnn-serve demo ==");
    println!(
        "training v1 and v2 on {} synthetic Higgs collisions each...",
        args.train_samples
    );
    let v1 = train_version(args.train_samples, 1);
    let v2 = train_version(args.train_samples, 2);

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, v1));
    let server = ShardedServer::start(
        Arc::clone(&registry),
        ShardConfig {
            shards: args.shards,
            batch: BatchConfig {
                max_batch: args.max_batch,
                max_wait: args.max_wait,
                workers: args.workers,
            },
            routing: ShardRouting::FeatureHash,
        },
    );
    println!(
        "serving {:?} across {} shard(s) with max_batch={} max_wait={:?} workers={}/shard",
        registry.model_names(),
        args.shards,
        args.max_batch,
        args.max_wait,
        args.workers
    );

    // Drive the server from the load generator while a second thread
    // hot-swaps to v2 halfway through.
    let load = LoadGenConfig {
        model: "higgs".to_string(),
        clients: args.clients,
        requests_per_client: args.requests_per_client,
        seed: 42,
    };
    println!(
        "load: {} clients x {} requests, hot-swapping to v2 mid-run...",
        load.clients, load.requests_per_client
    );
    let report = std::thread::scope(|scope| {
        let registry = &registry;
        scope.spawn(move || {
            // Let the load build up, then swap.
            std::thread::sleep(Duration::from_millis(50));
            let (_, displaced) = registry.publish(ServedModel::new("higgs", 2, v2));
            println!(
                "hot-swapped higgs v{} -> v2 (in-flight batches finish on v1)",
                displaced.map(|m| m.version()).unwrap_or(0)
            );
        });
        loadgen::run(&server, &load)
    });

    println!();
    println!("== load report ==");
    println!(
        "responses {}  errors {}  invalid {}  wall {:?}  throughput {:.0} req/s",
        report.responses,
        report.errors,
        report.invalid,
        report.wall,
        report.throughput_rps()
    );
    let metrics = server.metrics();
    println!();
    println!(
        "== serving metrics (aggregated over {} shards) ==",
        args.shards
    );
    println!("{metrics}");
    print!("batch-size histogram:");
    for (i, &count) in metrics.batch_size_hist.iter().enumerate() {
        if count > 0 {
            print!("  [{}..{}): {}", 1usize << i, 1usize << (i + 1), count);
        }
    }
    println!();
    for (i, shard) in server.shard_metrics().iter().enumerate() {
        println!(
            "shard {i}: requests {}  responses {}  mean batch {:.2}  p99 ~{:.0} µs",
            shard.requests, shard.responses, shard.mean_batch_size, shard.p99_latency_us
        );
    }
    if args.prometheus {
        println!();
        println!("== prometheus exposition ==");
        print!("{}", server.to_prometheus());
    }
    println!(
        "registry: models {:?}, current version {}, hot swaps {}",
        registry.model_names(),
        registry
            .lookup("higgs")
            .map(|m| m.version())
            .unwrap_or_default(),
        registry.hot_swaps()
    );

    let healthy = report.invalid == 0 && report.errors == 0;
    println!();
    println!(
        "{}",
        if healthy {
            "OK: all responses valid across the hot-swap"
        } else {
            "FAILED: some responses were invalid or errored"
        }
    );
    std::process::exit(i32::from(!healthy));
}
