//! The micro-batching inference server.
//!
//! Callers submit single raw feature vectors through a synchronous API; a
//! *collector* thread coalesces them into per-model batches bounded by
//! [`BatchConfig::max_batch`] and [`BatchConfig::max_wait`], and a pool of
//! *worker* threads runs each batch as one vectorized
//! [`Pipeline::predict_proba`](crate::Pipeline::predict_proba) pass —
//! encode → hidden-layer forward → readout — then fans the per-row results
//! back to the callers over channels. This is the same amortization the
//! paper applies to training (batch-parallel HCU updates) turned toward
//! the serving workload.
//!
//! Hot-swap safety: the model `Arc` is resolved from the registry once per
//! batch, at dispatch time. Every request in a batch therefore sees one
//! consistent model version, swaps never stall the pipeline, and displaced
//! versions finish their in-flight batches before being dropped.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::error::{ServeError, ServeResult};
use crate::metrics::{MetricsSnapshot, ServingMetrics};
use crate::registry::{ModelRegistry, ServedModel};

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Dispatch a batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Dispatch a partial batch once its oldest request has waited this
    /// long.
    pub max_wait: Duration,
    /// Number of worker threads running batches.
    pub workers: usize,
}

impl BatchConfig {
    /// Latency-leaning defaults: batches of up to 64, 2 ms linger, 2
    /// workers.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            workers: 2,
        }
    }
}

/// One queued request.
struct Request {
    model: String,
    features: Vec<f32>,
    enqueued: Instant,
    reply: Sender<ServeResult<Vec<f32>>>,
}

/// A dispatched batch: one resolved model version plus its requests.
struct Batch {
    model: Arc<ServedModel>,
    requests: Vec<Request>,
}

/// Handle to one in-flight prediction.
#[derive(Debug)]
pub struct PredictionHandle {
    rx: Receiver<ServeResult<Vec<f32>>>,
}

impl PredictionHandle {
    /// Block until the prediction (class probabilities) arrives.
    pub fn wait(self) -> ServeResult<Vec<f32>> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Block for at most `timeout`; `None` means it is still in flight.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ServeResult<Vec<f32>>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

/// The running server: collector + workers over a shared [`ModelRegistry`].
pub struct InferenceServer {
    registry: Arc<ModelRegistry>,
    metrics: Arc<ServingMetrics>,
    // Option so Drop can disconnect the channel before joining.
    submit_tx: Option<Sender<Request>>,
    collector: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl InferenceServer {
    /// Start the collector and worker threads.
    pub fn start(registry: Arc<ModelRegistry>, config: BatchConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.workers > 0, "need at least one worker");
        let metrics = Arc::new(ServingMetrics::new());
        let (submit_tx, submit_rx) = unbounded::<Request>();
        let (batch_tx, batch_rx) = unbounded::<Batch>();

        let collector = {
            let registry = Arc::clone(&registry);
            std::thread::Builder::new()
                .name("bcpnn-serve-collector".into())
                .spawn(move || run_collector(&submit_rx, &batch_tx, &registry, config))
                .expect("failed to spawn collector thread")
        };

        let workers = (0..config.workers)
            .map(|i| {
                let batch_rx = batch_rx.clone();
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("bcpnn-serve-worker-{i}"))
                    .spawn(move || {
                        while let Ok(batch) = batch_rx.recv() {
                            run_batch(batch, &metrics);
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();

        Self {
            registry,
            metrics,
            submit_tx: Some(submit_tx),
            collector: Some(collector),
            workers,
        }
    }

    /// The registry this server resolves models from. Publishing to it
    /// hot-swaps what subsequent batches use.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Enqueue one raw feature vector for the named model; returns a handle
    /// to wait on. Unknown models and wrong feature widths fail fast,
    /// before entering the batch queue.
    pub fn submit(&self, model: &str, features: Vec<f32>) -> ServeResult<PredictionHandle> {
        let served = self.registry.get(model)?;
        let expected = served.pipeline().input_width();
        if features.len() != expected {
            return Err(ServeError::ShapeMismatch {
                expected,
                got: features.len(),
            });
        }
        let (reply_tx, reply_rx) = unbounded();
        let request = Request {
            model: model.to_string(),
            features,
            enqueued: Instant::now(),
            reply: reply_tx,
        };
        self.submit_tx
            .as_ref()
            .ok_or(ServeError::Disconnected)?
            .send(request)
            .map_err(|_| ServeError::Disconnected)?;
        self.metrics.record_submit();
        Ok(PredictionHandle { rx: reply_rx })
    }

    /// Submit and block until the class probabilities arrive.
    pub fn predict(&self, model: &str, features: Vec<f32>) -> ServeResult<Vec<f32>> {
        self.submit(model, features)?.wait()
    }

    /// Point-in-time copy of the serving metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        // Disconnect the submit channel; the collector flushes what it
        // holds, drops the batch channel, and the workers drain and exit.
        drop(self.submit_tx.take());
        if let Some(collector) = self.collector.take() {
            let _ = collector.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for InferenceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceServer")
            .field("models", &self.registry.model_names())
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// A model's requests accumulating toward a dispatch.
struct Pending {
    requests: Vec<Request>,
    deadline: Instant,
}

/// Collector loop: coalesce requests into per-model batches and dispatch
/// them when full (`max_batch`) or ripe (`max_wait`).
fn run_collector(
    submit_rx: &Receiver<Request>,
    batch_tx: &Sender<Batch>,
    registry: &ModelRegistry,
    config: BatchConfig,
) {
    // Idle poll period when nothing is pending (bounds shutdown latency in
    // the absence of a deadline to wake for).
    const IDLE_WAIT: Duration = Duration::from_millis(50);
    let mut pending: HashMap<String, Pending> = HashMap::new();
    loop {
        let now = Instant::now();
        let timeout = pending
            .values()
            .map(|p| p.deadline.saturating_duration_since(now))
            .min()
            .unwrap_or(IDLE_WAIT);
        match submit_rx.recv_timeout(timeout) {
            Ok(request) => {
                let model = request.model.clone();
                let slot = pending.entry(model.clone()).or_insert_with(|| Pending {
                    requests: Vec::with_capacity(config.max_batch),
                    deadline: request.enqueued + config.max_wait,
                });
                slot.requests.push(request);
                if slot.requests.len() >= config.max_batch {
                    let slot = pending.remove(&model).expect("the slot just filled");
                    dispatch(batch_tx, registry, &model, slot.requests);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Shutdown: flush everything still pending, then stop.
                for (model, slot) in pending.drain() {
                    dispatch(batch_tx, registry, &model, slot.requests);
                }
                return;
            }
        }
        // Flush every batch whose linger window has expired.
        let now = Instant::now();
        let ripe: Vec<String> = pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(name, _)| name.clone())
            .collect();
        for model in ripe {
            let slot = pending.remove(&model).expect("ripe slot exists");
            dispatch(batch_tx, registry, &model, slot.requests);
        }
    }
}

/// Resolve the model's *current* version and hand the batch to a worker.
fn dispatch(
    batch_tx: &Sender<Batch>,
    registry: &ModelRegistry,
    model: &str,
    requests: Vec<Request>,
) {
    match registry.get(model) {
        Ok(served) => {
            // Workers exiting early (server drop) orphans the batch; the
            // per-request reply channels then disconnect, which callers
            // observe as `Disconnected`.
            let _ = batch_tx.send(Batch {
                model: served,
                requests,
            });
        }
        Err(err) => {
            // The model was removed after the requests were accepted.
            for request in requests {
                let _ = request.reply.send(Err(err.clone()));
            }
        }
    }
}

/// Worker body: run one batch as a single vectorized pass and fan out the
/// per-row results.
fn run_batch(batch: Batch, metrics: &ServingMetrics) {
    let Batch { model, requests } = batch;
    metrics.record_batch(requests.len());
    let pipeline = model.pipeline();
    let width = pipeline.input_width();

    // A hot-swap may have changed the expected width between submit-time
    // validation and dispatch; reject mismatching rows individually.
    let mut rows: Vec<&Request> = Vec::with_capacity(requests.len());
    for request in &requests {
        if request.features.len() == width {
            rows.push(request);
        } else {
            metrics.record_error();
            let _ = request.reply.send(Err(ServeError::ShapeMismatch {
                expected: width,
                got: request.features.len(),
            }));
        }
    }
    if rows.is_empty() {
        return;
    }

    let mut x = bcpnn_tensor::Matrix::zeros(rows.len(), width);
    for (r, request) in rows.iter().enumerate() {
        x.row_mut(r).copy_from_slice(&request.features);
    }
    match pipeline.predict_proba(&x) {
        Ok(proba) => {
            let now = Instant::now();
            for (r, request) in rows.iter().enumerate() {
                metrics.record_response(now.saturating_duration_since(request.enqueued));
                let _ = request.reply.send(Ok(proba.row(r).to_vec()));
            }
        }
        Err(err) => {
            for request in rows {
                metrics.record_error();
                let _ = request.reply.send(Err(err.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::tests::tiny_pipeline;
    use crate::registry::ServedModel;

    fn server_with_model(seed: u64) -> (InferenceServer, bcpnn_data::Dataset) {
        let (pipeline, data) = tiny_pipeline(seed);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(ServedModel::new("higgs", 1, pipeline));
        let server = InferenceServer::start(
            registry,
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                workers: 2,
            },
        );
        (server, data)
    }

    #[test]
    fn single_prediction_round_trips() {
        let (server, data) = server_with_model(30);
        let proba = server
            .predict("higgs", data.features.row(0).to_vec())
            .unwrap();
        assert_eq!(proba.len(), 2);
        let s: f32 = proba.iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn batched_predictions_match_direct_inference() {
        let (server, data) = server_with_model(31);
        let direct = server
            .registry()
            .get("higgs")
            .unwrap()
            .pipeline()
            .predict_proba(&data.features)
            .unwrap();
        let handles: Vec<_> = (0..40)
            .map(|r| {
                server
                    .submit("higgs", data.features.row(r).to_vec())
                    .unwrap()
            })
            .collect();
        for (r, handle) in handles.into_iter().enumerate() {
            let got = handle.wait().unwrap();
            for (c, v) in got.iter().enumerate() {
                assert!(
                    (v - direct.get(r, c)).abs() < 1e-5,
                    "row {r} col {c}: {v} vs {}",
                    direct.get(r, c)
                );
            }
        }
        let m = server.metrics();
        assert_eq!(m.responses, 40 + m.errors);
        assert!(m.batches >= 1);
        assert!(m.mean_batch_size >= 1.0);
    }

    #[test]
    fn unknown_model_fails_fast() {
        let (server, data) = server_with_model(32);
        let err = server
            .submit("nope", data.features.row(0).to_vec())
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel(_)));
    }

    #[test]
    fn wrong_width_fails_fast() {
        let (server, _) = server_with_model(33);
        let err = server.submit("higgs", vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(
            err,
            ServeError::ShapeMismatch {
                expected: 28,
                got: 2
            }
        ));
    }

    #[test]
    fn batches_respect_max_batch() {
        let (server, data) = server_with_model(34);
        let handles: Vec<_> = (0..64)
            .map(|i| {
                server
                    .submit("higgs", data.features.row(i % data.n_samples()).to_vec())
                    .unwrap()
            })
            .collect();
        for handle in handles {
            handle.wait().unwrap();
        }
        let m = server.metrics();
        // max_batch = 8 in this fixture: 64 requests need >= 8 batches.
        assert!(m.batches >= 8, "batches {}", m.batches);
        let max_bucket_with_counts = m.batch_size_hist.iter().rposition(|&c| c > 0).unwrap();
        assert!(
            max_bucket_with_counts <= 3,
            "no batch may exceed 8 requests (bucket {max_bucket_with_counts})"
        );
    }

    #[test]
    fn shutdown_is_clean_with_requests_in_flight() {
        let (server, data) = server_with_model(35);
        let handles: Vec<_> = (0..16)
            .map(|i| {
                server
                    .submit("higgs", data.features.row(i).to_vec())
                    .unwrap()
            })
            .collect();
        drop(server); // joins collector + workers, flushing pending batches
        for handle in handles {
            // Every request gets *some* terminal answer: a prediction or a
            // disconnect — never a hang.
            match handle.wait() {
                Ok(proba) => assert_eq!(proba.len(), 2),
                Err(ServeError::Disconnected) => {}
                Err(other) => panic!("unexpected error {other}"),
            }
        }
    }

    #[test]
    fn removing_a_model_errors_queued_requests() {
        let (server, data) = server_with_model(36);
        // Race removal against the linger window; whichever side wins, the
        // caller must get a terminal answer.
        let handle = server
            .submit("higgs", data.features.row(0).to_vec())
            .unwrap();
        server.registry().remove("higgs");
        match handle.wait() {
            Ok(proba) => assert_eq!(proba.len(), 2),
            Err(ServeError::UnknownModel(_)) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
        // New submissions fail fast.
        assert!(matches!(
            server.submit("higgs", data.features.row(0).to_vec()),
            Err(ServeError::UnknownModel(_))
        ));
    }
}
