//! The micro-batching inference server.
//!
//! Callers submit single raw feature vectors through a synchronous API; a
//! *collector* thread coalesces them into per-model batches bounded by
//! [`BatchConfig::max_batch`] and [`BatchConfig::max_wait`], and a pool of
//! *worker* threads runs each batch as one vectorized
//! [`Predictor::predict_proba`](bcpnn_core::model::Predictor::predict_proba)
//! pass — for a [`Pipeline`](crate::Pipeline), encode → hidden-layer
//! forward → readout — then fans the per-row results back to the callers
//! over channels. This is the same amortization the paper applies to
//! training (batch-parallel HCU updates) turned toward the serving
//! workload. The scheduler only talks to models through the
//! `Predictor` trait, so any fitted artifact serves.
//!
//! Per-model policy: a [`ServedModel`] published with
//! [`with_batch_policy`](crate::ServedModel::with_batch_policy) overrides
//! the server-wide `max_batch`/`max_wait` for its own requests, and a
//! hot-swap that changes the policy takes effect on the next batch.
//!
//! Requests carry [`SubmitOptions`]: the collector drains high-[`Priority`]
//! requests first when a dispatch cannot take everything pending, and
//! requests whose deadline has passed are expired with
//! [`ServeError::DeadlineExceeded`] instead of wasting forward-pass work.
//!
//! Hot-swap safety: the model `Arc` is resolved from the registry once per
//! batch, at dispatch time. Every request in a batch therefore sees one
//! consistent model version, swaps never stall the pipeline, and displaced
//! versions finish their in-flight batches before being dropped.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bcpnn_core::model::Predictor;
use bcpnn_core::{CoreResult, Workspace};
use bcpnn_tensor::Matrix;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::error::{ServeError, ServeResult};
use crate::metrics::{MetricsSnapshot, ServingMetrics};
use crate::registry::{ModelRegistry, ServedModel};

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Dispatch a batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Dispatch a partial batch once its oldest request has waited this
    /// long.
    pub max_wait: Duration,
    /// Number of worker threads running batches. Ignored when the config
    /// is used as a *per-model* policy (the worker pool is shared).
    pub workers: usize,
}

impl BatchConfig {
    /// Latency-leaning defaults: batches of up to 64, 2 ms linger, 2
    /// workers.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            workers: 2,
        }
    }
}

/// Scheduling priority of a request. When a dispatch cannot take every
/// pending request, higher priorities go first (FIFO within a priority).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Served before Normal and Low traffic.
    High,
    /// The default.
    #[default]
    Normal,
    /// Served after everything else.
    Low,
}

impl Priority {
    /// Drain order: smaller drains first.
    fn rank(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Per-request scheduling options for
/// [`InferenceServer::submit_with_options`].
///
/// ```
/// use std::time::Duration;
/// use bcpnn_serve::{Priority, SubmitOptions};
///
/// let options = SubmitOptions::new()
///     .priority(Priority::High)
///     .deadline(Duration::from_millis(5))
///     .abstain_below(0.2);
/// assert_eq!(options.priority, Priority::High);
/// assert_eq!(options.deadline, Some(Duration::from_millis(5)));
/// assert_eq!(options.abstain_below, Some(0.2));
/// assert_eq!(SubmitOptions::default().deadline, None);
/// assert_eq!(SubmitOptions::default().abstain_below, None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SubmitOptions {
    /// Drain order relative to other pending requests.
    pub priority: Priority,
    /// Give up on the request this long after submission: if no worker has
    /// started its forward pass by then, it fails with
    /// [`ServeError::DeadlineExceeded`] instead of being executed.
    pub deadline: Option<Duration>,
    /// Abstain instead of answering when the prediction's top-2
    /// probability margin ([`bcpnn_core::uncertainty::margin`]) is below
    /// this threshold: the caller receives [`ServeError::Abstained`]
    /// rather than a low-confidence probability vector. The forward pass
    /// still runs (the margin comes from its output); only the answer is
    /// withheld. Sensible thresholds lie in `[0, 1]`; `0` (and `None`)
    /// never abstain.
    pub abstain_below: Option<f32>,
}

impl SubmitOptions {
    /// Default options: normal priority, no deadline, never abstain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the priority.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set the deadline (measured from submission).
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the confidence floor: abstain when the top-2 probability margin
    /// falls below `threshold`.
    #[must_use]
    pub fn abstain_below(mut self, threshold: f32) -> Self {
        self.abstain_below = Some(threshold);
        self
    }
}

/// One queued request.
struct Request {
    model: String,
    features: Vec<f32>,
    enqueued: Instant,
    priority: Priority,
    /// Absolute expiry instant, if the caller set a deadline.
    deadline: Option<Instant>,
    /// Confidence floor: reply `Abstained` when the prediction's top-2
    /// margin falls below this.
    abstain_below: Option<f32>,
    reply: Sender<ServeResult<Vec<f32>>>,
}

/// A dispatched batch: one resolved model version plus its requests.
struct Batch {
    model: Arc<ServedModel>,
    requests: Vec<Request>,
}

/// Reusable per-worker inference state: the batch-assembly matrix, the
/// model [`Workspace`], and the output-probability buffer.
///
/// This is the zero-allocation data plane of a serving worker. All three
/// buffers grow to the largest batch shape seen and never shrink, so after
/// warmup an `assemble → run` cycle performs **zero heap allocations**
/// (`tests/alloc_regression.rs` enforces this with a counting allocator).
/// Each worker thread owns one executor; they are `Send`, not shared.
#[derive(Debug, Default)]
pub struct BatchExecutor {
    x: Matrix<f32>,
    proba: Matrix<f32>,
    ws: Workspace,
}

impl BatchExecutor {
    /// Create an executor with empty buffers (they warm up on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Start assembling a batch: returns the `rows x width` assembly
    /// matrix (resized in place, contents unspecified). The caller fills
    /// every row, then calls [`BatchExecutor::run`].
    pub fn begin(&mut self, rows: usize, width: usize) -> &mut Matrix<f32> {
        self.x.resize(rows, width);
        &mut self.x
    }

    /// Run one vectorized forward pass over the assembled batch through
    /// [`Predictor::predict_proba_into`], returning the per-row class
    /// probabilities (borrowed from the executor's reusable buffer).
    pub fn run(&mut self, predictor: &dyn Predictor) -> CoreResult<&Matrix<f32>> {
        predictor.predict_proba_into(&self.x, &mut self.ws, &mut self.proba)?;
        Ok(&self.proba)
    }
}

/// Everything one worker thread reuses across batches: the compute
/// executor plus the valid-row index scratch.
struct WorkerState {
    executor: BatchExecutor,
    /// Indices (into the batch's request list) of requests whose feature
    /// width matched the model at execution time.
    valid: Vec<usize>,
}

impl WorkerState {
    fn new() -> Self {
        Self {
            executor: BatchExecutor::new(),
            valid: Vec::new(),
        }
    }
}

/// Handle to one in-flight prediction.
#[derive(Debug)]
pub struct PredictionHandle {
    rx: Receiver<ServeResult<Vec<f32>>>,
}

impl PredictionHandle {
    /// A handle that is already resolved. For [`ServeTarget`]
    /// implementations whose round trip completes eagerly inside the
    /// submit call — a remote fan-out that already has the reply by the
    /// time it returns — so they can satisfy the handle-returning trait
    /// surface without a scheduler behind them.
    ///
    /// [`ServeTarget`]: crate::ServeTarget
    pub fn ready(result: ServeResult<Vec<f32>>) -> PredictionHandle {
        let (tx, rx) = unbounded();
        let _ = tx.send(result);
        PredictionHandle { rx }
    }

    /// Block until the prediction (class probabilities) arrives.
    pub fn wait(self) -> ServeResult<Vec<f32>> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Block for at most `timeout`; `None` means it is still in flight.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ServeResult<Vec<f32>>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

/// The running server: collector + workers over a shared [`ModelRegistry`].
pub struct InferenceServer {
    registry: Arc<ModelRegistry>,
    metrics: Arc<ServingMetrics>,
    // Option so Drop can disconnect the channel before joining.
    submit_tx: Option<Sender<Request>>,
    collector: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl InferenceServer {
    /// Start the collector and worker threads.
    pub fn start(registry: Arc<ModelRegistry>, config: BatchConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.workers > 0, "need at least one worker");
        let metrics = Arc::new(ServingMetrics::new());
        let (submit_tx, submit_rx) = unbounded::<Request>();
        let (batch_tx, batch_rx) = unbounded::<Batch>();

        let collector = {
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("bcpnn-serve-collector".into())
                .spawn(move || run_collector(&submit_rx, &batch_tx, &registry, &metrics, config))
                .expect("failed to spawn collector thread")
        };

        let workers = (0..config.workers)
            .map(|i| {
                let batch_rx = batch_rx.clone();
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("bcpnn-serve-worker-{i}"))
                    .spawn(move || {
                        // Persistent per-worker buffers: the steady-state
                        // batch loop runs allocation-free after warmup.
                        let mut state = WorkerState::new();
                        while let Ok(batch) = batch_rx.recv() {
                            run_batch(batch, &metrics, &mut state);
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();

        Self {
            registry,
            metrics,
            submit_tx: Some(submit_tx),
            collector: Some(collector),
            workers,
        }
    }

    /// The registry this server resolves models from. Publishing to it
    /// hot-swaps what subsequent batches use.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Enqueue one raw feature vector for the named model with default
    /// [`SubmitOptions`]; returns a handle to wait on. Unknown models and
    /// wrong feature widths fail fast, before entering the batch queue.
    pub fn submit(&self, model: &str, features: Vec<f32>) -> ServeResult<PredictionHandle> {
        self.submit_with_options(model, features, SubmitOptions::default())
    }

    /// Enqueue one raw feature vector with explicit priority/deadline
    /// options; returns a handle to wait on.
    pub fn submit_with_options(
        &self,
        model: &str,
        features: Vec<f32>,
        options: SubmitOptions,
    ) -> ServeResult<PredictionHandle> {
        let served = self.registry.get(model)?;
        let expected = served.predictor().n_inputs();
        if features.len() != expected {
            return Err(ServeError::ShapeMismatch {
                expected,
                got: features.len(),
            });
        }
        let (reply_tx, reply_rx) = unbounded();
        let enqueued = Instant::now();
        let request = Request {
            model: model.to_string(),
            features,
            enqueued,
            priority: options.priority,
            deadline: options.deadline.map(|d| enqueued + d),
            abstain_below: options.abstain_below,
            reply: reply_tx,
        };
        self.submit_tx
            .as_ref()
            .ok_or(ServeError::Disconnected)?
            .send(request)
            .map_err(|_| ServeError::Disconnected)?;
        self.metrics.record_submit();
        Ok(PredictionHandle { rx: reply_rx })
    }

    /// Submit and block until the class probabilities arrive.
    pub fn predict(&self, model: &str, features: Vec<f32>) -> ServeResult<Vec<f32>> {
        self.submit(model, features)?.wait()
    }

    /// Point-in-time copy of the serving metrics.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of accepted requests that have not yet reached a terminal
    /// outcome (response, error, or expiry): the pending-queue depth
    /// load-aware routing balances on. Cheap — three relaxed atomic loads
    /// — so it can sit on the submit path.
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.metrics.queue_depth()
    }

    /// Prometheus text exposition of this pool's metrics (unlabeled; the
    /// single-pool analogue of
    /// [`ShardedServer::to_prometheus`](crate::ShardedServer::to_prometheus)),
    /// plus the counters of any live [`CascadeModel`]s
    /// ([`crate::cascade::prometheus_exposition`]).
    ///
    /// [`CascadeModel`]: crate::CascadeModel
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = self.metrics().to_prometheus();
        out.push_str(&crate::cascade::prometheus_exposition());
        out
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        // Disconnect the submit channel; the collector flushes what it
        // holds, drops the batch channel, and the workers drain and exit.
        drop(self.submit_tx.take());
        if let Some(collector) = self.collector.take() {
            let _ = collector.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for InferenceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceServer")
            .field("models", &self.registry.model_names())
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// A model's requests accumulating toward a dispatch, under that model's
/// effective batching policy (resolved when the slot was opened).
struct Pending {
    requests: Vec<Request>,
    deadline: Instant,
    max_batch: usize,
    max_wait: Duration,
}

/// Stable-sort pending requests into drain order: priority first, FIFO
/// within a priority (insertion order is FIFO and the sort is stable).
fn order_for_dispatch(requests: &mut [Request]) {
    requests.sort_by_key(|r| r.priority.rank());
}

/// Split one batch off an over-full slot: the highest-priority `max_batch`
/// requests leave (FIFO within a priority); lower-priority requests stay
/// queued for a later dispatch. This is where [`Priority`] bites — a burst
/// bigger than one batch drains High before Normal before Low.
fn take_batch(requests: &mut Vec<Request>, max_batch: usize) -> Vec<Request> {
    order_for_dispatch(requests);
    let take = requests.len().min(max_batch);
    requests.drain(..take).collect()
}

/// Split off the requests whose deadline has already passed.
fn split_expired(requests: Vec<Request>, now: Instant) -> (Vec<Request>, Vec<Request>) {
    requests
        .into_iter()
        .partition(|r| !matches!(r.deadline, Some(d) if now >= d))
}

/// Reply `DeadlineExceeded` to every expired request and count it.
fn expire(requests: Vec<Request>, metrics: &ServingMetrics) {
    for request in requests {
        metrics.record_expired();
        let _ = request.reply.send(Err(ServeError::DeadlineExceeded));
    }
}

/// Add a request to its model's pending slot, opening the slot under the
/// model's effective batching policy (which a hot-swap may have just
/// changed) if this is its first request.
fn enqueue(
    pending: &mut HashMap<String, Pending>,
    request: Request,
    registry: &ModelRegistry,
    config: BatchConfig,
) {
    let enqueued = request.enqueued;
    let slot = pending
        .entry(request.model.clone())
        .or_insert_with_key(|model| {
            let policy = registry.batch_policy(model).unwrap_or(config);
            Pending {
                requests: Vec::with_capacity(policy.max_batch),
                deadline: enqueued + policy.max_wait,
                max_batch: policy.max_batch.max(1),
                max_wait: policy.max_wait,
            }
        });
    slot.requests.push(request);
}

/// Collector loop: coalesce requests into per-model batches and dispatch
/// them when full (the model's `max_batch`) or ripe (its `max_wait`).
fn run_collector(
    submit_rx: &Receiver<Request>,
    batch_tx: &Sender<Batch>,
    registry: &ModelRegistry,
    metrics: &ServingMetrics,
    config: BatchConfig,
) {
    // Idle poll period when nothing is pending (bounds shutdown latency in
    // the absence of a deadline to wake for).
    const IDLE_WAIT: Duration = Duration::from_millis(50);
    let mut pending: HashMap<String, Pending> = HashMap::new();
    loop {
        let now = Instant::now();
        let timeout = pending
            .values()
            .map(|p| p.deadline.saturating_duration_since(now))
            .min()
            .unwrap_or(IDLE_WAIT);
        match submit_rx.recv_timeout(timeout) {
            Ok(request) => {
                // Drain the whole burst before dispatching, so a slot can
                // hold more than max_batch and priority ordering has
                // something to choose between.
                enqueue(&mut pending, request, registry, config);
                while let Ok(more) = submit_rx.try_recv() {
                    enqueue(&mut pending, more, registry, config);
                }
                let full: Vec<String> = pending
                    .iter()
                    .filter(|(_, p)| p.requests.len() >= p.max_batch)
                    .map(|(name, _)| name.clone())
                    .collect();
                for model in full {
                    let slot = pending.get_mut(&model).expect("slot is full");
                    while slot.requests.len() >= slot.max_batch {
                        let batch = take_batch(&mut slot.requests, slot.max_batch);
                        dispatch(batch_tx, registry, metrics, &model, batch);
                    }
                    if slot.requests.is_empty() {
                        pending.remove(&model);
                    } else {
                        // The leftovers (lowest-priority tail) linger under
                        // a window anchored at their oldest member.
                        let oldest = slot
                            .requests
                            .iter()
                            .map(|r| r.enqueued)
                            .min()
                            .expect("slot is non-empty");
                        slot.deadline = oldest + slot.max_wait;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Shutdown: flush everything still pending, then stop.
                for (model, slot) in pending.drain() {
                    dispatch(batch_tx, registry, metrics, &model, slot.requests);
                }
                return;
            }
        }
        // Flush every batch whose linger window has expired.
        let now = Instant::now();
        let ripe: Vec<String> = pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(name, _)| name.clone())
            .collect();
        for model in ripe {
            let slot = pending.remove(&model).expect("ripe slot exists");
            dispatch(batch_tx, registry, metrics, &model, slot.requests);
        }
    }
}

/// Expire dead requests, order the rest by priority, resolve the model's
/// *current* version, and hand the batch to a worker.
fn dispatch(
    batch_tx: &Sender<Batch>,
    registry: &ModelRegistry,
    metrics: &ServingMetrics,
    model: &str,
    requests: Vec<Request>,
) {
    let (mut live, expired) = split_expired(requests, Instant::now());
    expire(expired, metrics);
    if live.is_empty() {
        return;
    }
    order_for_dispatch(&mut live);
    match registry.get(model) {
        Ok(served) => {
            // Workers exiting early (server drop) orphans the batch; the
            // per-request reply channels then disconnect, which callers
            // observe as `Disconnected`.
            let _ = batch_tx.send(Batch {
                model: served,
                requests: live,
            });
        }
        Err(err) => {
            // The model was removed after the requests were accepted. Count
            // each as a terminal error so the pending-queue depth (requests
            // minus terminal outcomes) does not leak.
            for request in live {
                metrics.record_error();
                let _ = request.reply.send(Err(err.clone()));
            }
        }
    }
}

/// Worker body: run one batch as a single vectorized pass through the
/// worker's persistent [`BatchExecutor`] and fan out the per-row results.
/// Requests whose deadline passed while the batch sat in the queue are
/// expired here, before any forward-pass work is spent on them.
///
/// The compute plane — assembly into the reusable batch matrix plus the
/// `predict_proba_into` pass through the persistent workspace — performs
/// zero heap allocations after warmup; only the per-request reply payloads
/// (owned `Vec<f32>`s handed to the callers) still allocate.
fn run_batch(batch: Batch, metrics: &ServingMetrics, state: &mut WorkerState) {
    let Batch { model, requests } = batch;
    // Only pay the partition allocation when something actually expired.
    let now = Instant::now();
    let has_expired = requests
        .iter()
        .any(|r| matches!(r.deadline, Some(d) if now >= d));
    let requests = if has_expired {
        let (live, expired) = split_expired(requests, now);
        expire(expired, metrics);
        live
    } else {
        requests
    };
    if requests.is_empty() {
        return;
    }
    metrics.record_batch(requests.len());
    let predictor = model.predictor();
    let width = predictor.n_inputs();

    // A hot-swap may have changed the expected width between submit-time
    // validation and dispatch; reject mismatching rows individually.
    state.valid.clear();
    for (i, request) in requests.iter().enumerate() {
        if request.features.len() == width {
            state.valid.push(i);
        } else {
            metrics.record_error();
            let _ = request.reply.send(Err(ServeError::ShapeMismatch {
                expected: width,
                got: request.features.len(),
            }));
        }
    }
    if state.valid.is_empty() {
        return;
    }

    let x = state.executor.begin(state.valid.len(), width);
    for (r, &i) in state.valid.iter().enumerate() {
        x.row_mut(r).copy_from_slice(&requests[i].features);
    }
    match state.executor.run(predictor) {
        Ok(proba) => {
            let now = Instant::now();
            for (r, &i) in state.valid.iter().enumerate() {
                let request = &requests[i];
                // Abstention gate: the forward pass already ran (margins
                // come from its output); only the reply is withheld.
                if let Some(threshold) = request.abstain_below {
                    if bcpnn_core::uncertainty::margin(proba.row(r)) < threshold {
                        metrics.record_abstained();
                        let _ = request.reply.send(Err(ServeError::Abstained));
                        continue;
                    }
                }
                metrics.record_response(now.saturating_duration_since(request.enqueued));
                let _ = request.reply.send(Ok(proba.row(r).to_vec()));
            }
        }
        Err(err) => {
            let err = ServeError::from(err);
            for &i in &state.valid {
                metrics.record_error();
                let _ = requests[i].reply.send(Err(err.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ServedModel;
    use crate::testutil::tiny_pipeline;

    fn server_with_model(seed: u64) -> (InferenceServer, bcpnn_data::Dataset) {
        let (pipeline, data) = tiny_pipeline(seed);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(ServedModel::new("higgs", 1, pipeline));
        let server = InferenceServer::start(
            registry,
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                workers: 2,
            },
        );
        (server, data)
    }

    #[test]
    fn single_prediction_round_trips() {
        let (server, data) = server_with_model(30);
        let proba = server
            .predict("higgs", data.features.row(0).to_vec())
            .unwrap();
        assert_eq!(proba.len(), 2);
        let s: f32 = proba.iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn batched_predictions_match_direct_inference() {
        let (server, data) = server_with_model(31);
        let direct = server
            .registry()
            .get("higgs")
            .unwrap()
            .predictor()
            .predict_proba(&data.features)
            .unwrap();
        let handles: Vec<_> = (0..40)
            .map(|r| {
                server
                    .submit("higgs", data.features.row(r).to_vec())
                    .unwrap()
            })
            .collect();
        for (r, handle) in handles.into_iter().enumerate() {
            let got = handle.wait().unwrap();
            for (c, v) in got.iter().enumerate() {
                assert!(
                    (v - direct.get(r, c)).abs() < 1e-5,
                    "row {r} col {c}: {v} vs {}",
                    direct.get(r, c)
                );
            }
        }
        let m = server.metrics();
        assert_eq!(m.responses, 40 + m.errors);
        assert!(m.batches >= 1);
        assert!(m.mean_batch_size >= 1.0);
    }

    #[test]
    fn unknown_model_fails_fast() {
        let (server, data) = server_with_model(32);
        let err = server
            .submit("nope", data.features.row(0).to_vec())
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel(_)));
    }

    #[test]
    fn wrong_width_fails_fast() {
        let (server, _) = server_with_model(33);
        let err = server.submit("higgs", vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(
            err,
            ServeError::ShapeMismatch {
                expected: 28,
                got: 2
            }
        ));
    }

    #[test]
    fn batches_respect_max_batch() {
        let (server, data) = server_with_model(34);
        let handles: Vec<_> = (0..64)
            .map(|i| {
                server
                    .submit("higgs", data.features.row(i % data.n_samples()).to_vec())
                    .unwrap()
            })
            .collect();
        for handle in handles {
            handle.wait().unwrap();
        }
        let m = server.metrics();
        // max_batch = 8 in this fixture: 64 requests need >= 8 batches.
        assert!(m.batches >= 8, "batches {}", m.batches);
        let max_bucket_with_counts = m.batch_size_hist.iter().rposition(|&c| c > 0).unwrap();
        assert!(
            max_bucket_with_counts <= 3,
            "no batch may exceed 8 requests (bucket {max_bucket_with_counts})"
        );
    }

    #[test]
    fn per_model_batch_policy_overrides_server_default() {
        let (pipeline, data) = tiny_pipeline(37);
        let registry = Arc::new(ModelRegistry::new());
        // The model caps its own batches at 2, far below the server's 64.
        registry.publish(
            ServedModel::new("higgs", 1, pipeline).with_batch_policy(BatchConfig {
                max_batch: 2,
                max_wait: Duration::from_millis(1),
                workers: 1,
            }),
        );
        let server = InferenceServer::start(Arc::clone(&registry), BatchConfig::default());
        let handles: Vec<_> = (0..16)
            .map(|i| {
                server
                    .submit("higgs", data.features.row(i).to_vec())
                    .unwrap()
            })
            .collect();
        for handle in handles {
            handle.wait().unwrap();
        }
        let m = server.metrics();
        assert!(m.batches >= 8, "16 requests at max_batch 2: {}", m.batches);
        let biggest = m.batch_size_hist.iter().rposition(|&c| c > 0).unwrap();
        assert!(
            biggest <= 1,
            "no batch may exceed the per-model cap of 2 (bucket {biggest})"
        );
    }

    #[test]
    fn zero_deadline_requests_expire_unexecuted() {
        let (server, data) = server_with_model(38);
        let handles: Vec<_> = (0..6)
            .map(|i| {
                server
                    .submit_with_options(
                        "higgs",
                        data.features.row(i).to_vec(),
                        SubmitOptions::new().deadline(Duration::ZERO),
                    )
                    .unwrap()
            })
            .collect();
        for handle in handles {
            assert!(matches!(handle.wait(), Err(ServeError::DeadlineExceeded)));
        }
        let m = server.metrics();
        assert_eq!(m.expired, 6);
        assert_eq!(m.errors, 6);
        assert_eq!(m.responses, 0, "expired requests must never be executed");
        assert_eq!(m.batches, 0, "an all-expired slot dispatches no batch");
    }

    #[test]
    fn generous_deadlines_do_not_expire() {
        let (server, data) = server_with_model(39);
        let proba = server
            .submit_with_options(
                "higgs",
                data.features.row(0).to_vec(),
                SubmitOptions::new()
                    .priority(Priority::High)
                    .deadline(Duration::from_secs(30)),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(proba.len(), 2);
        assert_eq!(server.metrics().expired, 0);
    }

    #[test]
    fn impossible_abstain_threshold_abstains_every_request() {
        let (server, data) = server_with_model(40);
        // The top-2 margin never exceeds 1, so a threshold above 1 forces
        // abstention on every row — after the forward pass ran.
        let handles: Vec<_> = (0..6)
            .map(|i| {
                server
                    .submit_with_options(
                        "higgs",
                        data.features.row(i).to_vec(),
                        SubmitOptions::new().abstain_below(1.5),
                    )
                    .unwrap()
            })
            .collect();
        for handle in handles {
            assert!(matches!(handle.wait(), Err(ServeError::Abstained)));
        }
        let m = server.metrics();
        assert_eq!(m.abstained, 6);
        assert_eq!(m.errors, 6);
        assert_eq!(m.responses, 0);
        assert!(m.batches >= 1, "abstention happens after the forward pass");
    }

    #[test]
    fn zero_abstain_threshold_never_abstains() {
        let (server, data) = server_with_model(41);
        let proba = server
            .submit_with_options(
                "higgs",
                data.features.row(0).to_vec(),
                SubmitOptions::new().abstain_below(0.0),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(proba.len(), 2);
        let m = server.metrics();
        assert_eq!(m.abstained, 0);
        assert_eq!(m.responses, 1);
    }

    #[test]
    fn dispatch_order_is_priority_then_fifo() {
        let (reply, _keep) = unbounded();
        let now = Instant::now();
        let mk = |priority: Priority, tag: f32| Request {
            model: "m".into(),
            features: vec![tag],
            enqueued: now,
            priority,
            deadline: None,
            abstain_below: None,
            reply: reply.clone(),
        };
        let mut requests = vec![
            mk(Priority::Low, 0.0),
            mk(Priority::Normal, 1.0),
            mk(Priority::High, 2.0),
            mk(Priority::Normal, 3.0),
            mk(Priority::High, 4.0),
        ];
        order_for_dispatch(&mut requests);
        let tags: Vec<f32> = requests.iter().map(|r| r.features[0]).collect();
        assert_eq!(tags, vec![2.0, 4.0, 1.0, 3.0, 0.0]);
    }

    #[test]
    fn take_batch_drains_high_priority_and_leaves_the_low_tail() {
        let (reply, _keep) = unbounded();
        let now = Instant::now();
        let mk = |priority: Priority, tag: f32| Request {
            model: "m".into(),
            features: vec![tag],
            enqueued: now,
            priority,
            deadline: None,
            abstain_below: None,
            reply: reply.clone(),
        };
        let mut slot = vec![
            mk(Priority::Low, 0.0),
            mk(Priority::Normal, 1.0),
            mk(Priority::High, 2.0),
            mk(Priority::Low, 3.0),
            mk(Priority::High, 4.0),
        ];
        // A burst of 5 with room for 3: both Highs and the first Normal
        // leave; the Lows stay queued for the next dispatch.
        let batch = take_batch(&mut slot, 3);
        let taken: Vec<f32> = batch.iter().map(|r| r.features[0]).collect();
        assert_eq!(taken, vec![2.0, 4.0, 1.0]);
        let left: Vec<f32> = slot.iter().map(|r| r.features[0]).collect();
        assert_eq!(left, vec![0.0, 3.0]);
        // The tail drains next, still in FIFO order.
        let rest = take_batch(&mut slot, 3);
        assert_eq!(rest.len(), 2);
        assert!(slot.is_empty());
    }

    #[test]
    fn split_expired_partitions_on_the_deadline() {
        let (reply, _keep) = unbounded();
        let now = Instant::now();
        let mk = |deadline: Option<Instant>| Request {
            model: "m".into(),
            features: vec![],
            enqueued: now,
            priority: Priority::Normal,
            deadline,
            abstain_below: None,
            reply: reply.clone(),
        };
        let requests = vec![
            mk(None),
            mk(Some(now - Duration::from_millis(1))),
            mk(Some(now + Duration::from_secs(60))),
        ];
        let (live, expired) = split_expired(requests, now);
        assert_eq!(live.len(), 2);
        assert_eq!(expired.len(), 1);
    }

    #[test]
    fn shutdown_is_clean_with_requests_in_flight() {
        let (server, data) = server_with_model(35);
        let handles: Vec<_> = (0..16)
            .map(|i| {
                server
                    .submit("higgs", data.features.row(i).to_vec())
                    .unwrap()
            })
            .collect();
        drop(server); // joins collector + workers, flushing pending batches
        for handle in handles {
            // Every request gets *some* terminal answer: a prediction or a
            // disconnect — never a hang.
            match handle.wait() {
                Ok(proba) => assert_eq!(proba.len(), 2),
                Err(ServeError::Disconnected) => {}
                Err(other) => panic!("unexpected error {other}"),
            }
        }
    }

    #[test]
    fn removing_a_model_errors_queued_requests() {
        let (server, data) = server_with_model(36);
        // Race removal against the linger window; whichever side wins, the
        // caller must get a terminal answer.
        let handle = server
            .submit("higgs", data.features.row(0).to_vec())
            .unwrap();
        server.registry().remove("higgs");
        match handle.wait() {
            Ok(proba) => assert_eq!(proba.len(), 2),
            Err(ServeError::UnknownModel(_)) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
        // New submissions fail fast.
        assert!(matches!(
            server.submit("higgs", data.features.row(0).to_vec()),
            Err(ServeError::UnknownModel(_))
        ));
    }
}
