//! The [`ModelRegistry`]: named, versioned models shared across threads as
//! `Arc<ServedModel>`, with atomic hot-swap.
//!
//! The swap protocol is the standard read-copy-update shape: readers clone
//! the `Arc` out of the registry under a short read lock and then work
//! entirely off their clone, so publishing a new version never blocks or
//! invalidates an in-flight batch — old versions die when the last batch
//! holding them finishes.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bcpnn_backend::BackendKind;
use bcpnn_core::model::{Pipeline, Predictor};
use parking_lot::RwLock;

use crate::error::{ServeError, ServeResult};
use crate::server::BatchConfig;

/// A named, versioned, immutable serving artifact, optionally carrying its
/// own batching policy (see [`ServedModel::with_batch_policy`]).
///
/// A served model is any fitted
/// [`Predictor`](bcpnn_core::model::Predictor) — a loaded [`Pipeline`] is
/// the common case, but a bare `Network` or a custom head serve just the
/// same: the scheduler only talks through the trait.
pub struct ServedModel {
    name: String,
    version: u64,
    predictor: Box<dyn Predictor + Send + Sync>,
    batch_policy: Option<BatchConfig>,
}

impl std::fmt::Debug for ServedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedModel")
            .field("name", &self.name)
            .field("version", &self.version)
            .field("n_inputs", &self.predictor.n_inputs())
            .field("n_classes", &self.predictor.n_classes())
            .finish()
    }
}

impl ServedModel {
    /// Wrap a fitted predictor under a model name and version.
    pub fn new(
        name: impl Into<String>,
        version: u64,
        predictor: impl Predictor + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            version,
            predictor: Box::new(predictor),
            batch_policy: None,
        }
    }

    /// Attach a per-model batching policy. The collector applies this
    /// model's `max_batch`/`max_wait` instead of the server defaults (the
    /// policy's `workers` field is ignored — the worker pool is shared).
    /// Publishing a new version with a different policy changes batching
    /// live, with no server restart.
    #[must_use]
    pub fn with_batch_policy(mut self, policy: BatchConfig) -> Self {
        self.batch_policy = Some(policy);
        self
    }

    /// The model's own batching policy, if one was attached.
    pub fn batch_policy(&self) -> Option<BatchConfig> {
        self.batch_policy
    }

    /// The model's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The model's version number.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The fitted model behind this artifact.
    pub fn predictor(&self) -> &(dyn Predictor + Send + Sync) {
        self.predictor.as_ref()
    }
}

/// Thread-safe map of model name → current [`ServedModel`] version.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<ServedModel>>>,
    swaps: AtomicU64,
}

impl ModelRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a model, atomically replacing any existing version under the
    /// same name (hot-swap). Returns the shared handle, plus the displaced
    /// version if there was one.
    pub fn publish(&self, model: ServedModel) -> (Arc<ServedModel>, Option<Arc<ServedModel>>) {
        let handle = Arc::new(model);
        let previous = self
            .models
            .write()
            .insert(handle.name().to_string(), Arc::clone(&handle));
        if previous.is_some() {
            self.swaps.fetch_add(1, Ordering::Relaxed);
        }
        (handle, previous)
    }

    /// Publish a model with an optional per-model batching policy; `None`
    /// keeps whatever policy `model` already carries.
    ///
    /// **Deprecated**: the policy belongs on the model itself — build it
    /// with [`ServedModel::with_batch_policy`] and call
    /// [`ModelRegistry::publish`]. This shim forwards and will be removed.
    #[deprecated(
        since = "0.1.0",
        note = "attach the policy on the builder path instead: \
                `registry.publish(model.with_batch_policy(policy))`"
    )]
    pub fn publish_with_policy(
        &self,
        model: ServedModel,
        policy: Option<BatchConfig>,
    ) -> (Arc<ServedModel>, Option<Arc<ServedModel>>) {
        match policy {
            Some(p) => self.publish(model.with_batch_policy(p)),
            None => self.publish(model),
        }
    }

    /// The current version's batching policy for a model, if the model is
    /// registered and carries one.
    pub fn batch_policy(&self, name: &str) -> Option<BatchConfig> {
        self.models.read().get(name).and_then(|m| m.batch_policy())
    }

    /// Load a model directory (see [`Pipeline::load`]) and publish it.
    pub fn load_and_publish<P: AsRef<Path>>(
        &self,
        name: &str,
        version: u64,
        dir: P,
        backend: BackendKind,
    ) -> ServeResult<Arc<ServedModel>> {
        let pipeline = Pipeline::load(dir, backend)?;
        Ok(self.publish(ServedModel::new(name, version, pipeline)).0)
    }

    /// Current version of a model, or an [`ServeError::UnknownModel`] error.
    pub fn get(&self, name: &str) -> ServeResult<Arc<ServedModel>> {
        self.models
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))
    }

    /// Current version of a model, if registered.
    pub fn lookup(&self, name: &str) -> Option<Arc<ServedModel>> {
        self.models.read().get(name).cloned()
    }

    /// Unregister a model, returning its last version.
    pub fn remove(&self, name: &str) -> Option<Arc<ServedModel>> {
        self.models.write().remove(name)
    }

    /// Names of all registered models, sorted.
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }

    /// How many publishes replaced an existing version (hot-swaps).
    pub fn hot_swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_pipeline;

    #[test]
    fn publish_get_remove_lifecycle() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        assert!(matches!(
            registry.get("higgs"),
            Err(ServeError::UnknownModel(_))
        ));

        let (pipeline, _) = tiny_pipeline(10);
        let (handle, previous) = registry.publish(ServedModel::new("higgs", 1, pipeline));
        assert!(previous.is_none());
        assert_eq!(handle.version(), 1);
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.model_names(), vec!["higgs".to_string()]);

        let got = registry.get("higgs").unwrap();
        assert_eq!(got.version(), 1);
        assert!(Arc::ptr_eq(&handle, &got));

        let removed = registry.remove("higgs").unwrap();
        assert_eq!(removed.version(), 1);
        assert!(registry.is_empty());
    }

    #[test]
    fn hot_swap_replaces_atomically_and_keeps_old_handles_alive() {
        let registry = ModelRegistry::new();
        let (v1, _) = tiny_pipeline(11);
        let (v2, data) = tiny_pipeline(12);
        registry.publish(ServedModel::new("higgs", 1, v1));
        assert_eq!(registry.hot_swaps(), 0);

        // A "request in flight" holds the old version.
        let in_flight = registry.get("higgs").unwrap();

        let (new_handle, displaced) = registry.publish(ServedModel::new("higgs", 2, v2));
        assert_eq!(registry.hot_swaps(), 1);
        assert_eq!(displaced.unwrap().version(), 1);
        assert_eq!(registry.get("higgs").unwrap().version(), 2);

        // The displaced version still serves its in-flight work.
        assert_eq!(in_flight.version(), 1);
        let proba = in_flight.predictor().predict_proba(&data.features).unwrap();
        assert_eq!(proba.rows(), data.n_samples());
        drop(new_handle);
    }

    #[test]
    fn per_model_batch_policy_follows_hot_swap() {
        let registry = ModelRegistry::new();
        let (v1, _) = tiny_pipeline(13);
        let (v2, _) = tiny_pipeline(14);
        registry.publish(ServedModel::new("higgs", 1, v1));
        assert_eq!(registry.batch_policy("higgs"), None);
        assert_eq!(registry.batch_policy("nope"), None);

        let policy = BatchConfig {
            max_batch: 4,
            max_wait: std::time::Duration::from_micros(100),
            workers: 1,
        };
        registry.publish(ServedModel::new("higgs", 2, v2).with_batch_policy(policy));
        assert_eq!(registry.batch_policy("higgs"), Some(policy));
        assert_eq!(registry.get("higgs").unwrap().batch_policy(), Some(policy));
    }

    #[test]
    #[allow(deprecated)]
    fn publish_with_policy_shim_still_forwards() {
        let registry = ModelRegistry::new();
        let (v1, _) = tiny_pipeline(15);
        let policy = BatchConfig {
            max_batch: 3,
            max_wait: std::time::Duration::from_micros(50),
            workers: 1,
        };
        registry.publish_with_policy(ServedModel::new("higgs", 1, v1), Some(policy));
        assert_eq!(registry.batch_policy("higgs"), Some(policy));
    }

    #[test]
    fn any_predictor_can_be_served() {
        // The registry is generic over Predictor: a bare readout head (an
        // SGD classifier over hidden activations) publishes just like a
        // full pipeline.
        let (pipeline, data) = tiny_pipeline(16);
        let hidden = pipeline
            .network()
            .encode(&pipeline.encode(&data.features).unwrap())
            .unwrap();
        let head = pipeline.network().sgd_readout().unwrap().clone();
        let direct = head.predict_proba(&hidden).unwrap();
        let registry = ModelRegistry::new();
        registry.publish(ServedModel::new("sgd-head", 1, head));
        let got = registry.get("sgd-head").unwrap();
        assert_eq!(got.predictor().n_classes(), 2);
        assert_eq!(got.predictor().n_inputs(), hidden.cols());
        let via_trait = got.predictor().predict_proba(&hidden).unwrap();
        assert!(via_trait.max_abs_diff(&direct) < 1e-6);
    }

    #[test]
    fn served_model_is_send_and_sync() {
        // Static assertion: the scheduler moves Arc<ServedModel> across the
        // collector and worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServedModel>();
        assert_send_sync::<Arc<ServedModel>>();
        assert_send_sync::<ModelRegistry>();
        assert_send_sync::<Pipeline>();
    }
}
