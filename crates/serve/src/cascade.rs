//! The quantized→f32 **cascade**: a [`Predictor`] that answers cheap when
//! the cheap tier is confident and escalates only the uncertain rows.
//!
//! A [`CascadeModel`] wraps two predictors with identical shapes — a cheap
//! tier (typically a `bcpnn_lowprec` quantized pipeline) and a full tier
//! (the f32 parent it was quantized from). A batch runs through the cheap
//! tier first; rows whose top-2 probability margin
//! ([`bcpnn_core::uncertainty::margin`]) falls below the escalation
//! threshold are gathered into a sub-batch, re-run through the full tier,
//! and scattered back. Because every model in this codebase computes rows
//! independently, the escalated rows' outputs are **bit-identical** to
//! running the full model on the whole batch
//! (`tests/cascade_equivalence.rs` proves it).
//!
//! The gather/scatter buffers come from the shared [`Workspace`]'s cascade
//! scratch ([`Workspace::take_cascade_scratch`]), so the steady-state
//! cascade pass stays zero-allocation like every other serving path.
//!
//! Edge thresholds are exact by construction:
//!
//! * `escalate_below <= 0.0` — margins are never negative, so nothing
//!   escalates: the cascade is the cheap tier.
//! * `escalate_below >= 1.0` — every row escalates: the cascade is
//!   bit-identical to the full tier.
//!
//! Each cascade publishes three monotonically increasing counters —
//! `bcpnn_cascade_cheap_hits_total`, `bcpnn_cascade_escalations_total`,
//! and `bcpnn_cascade_abstentions_total`, labeled by model name — through
//! [`prometheus_exposition`], which the servers append to their `/metrics`
//! output.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use bcpnn_core::model::Predictor;
use bcpnn_core::{uncertainty, CoreError, CoreResult, EvalReport, Workspace};
use bcpnn_tensor::Matrix;

/// Live counters of one cascade's routing decisions. Shared (`Arc`) between
/// the model and the metrics exposition; all updates are relaxed atomics on
/// the inference path.
#[derive(Debug, Default)]
pub struct CascadeStats {
    cheap_hits: AtomicU64,
    escalations: AtomicU64,
    abstentions: AtomicU64,
}

impl CascadeStats {
    /// Rows answered by the cheap tier (margin at or above the escalation
    /// threshold).
    pub fn cheap_hits(&self) -> u64 {
        self.cheap_hits.load(Ordering::Relaxed)
    }

    /// Rows escalated to the full-precision tier.
    pub fn escalations(&self) -> u64 {
        self.escalations.load(Ordering::Relaxed)
    }

    /// Rows whose *final* margin (after any escalation) still fell below
    /// the cascade's abstention threshold. Informational: the cascade
    /// still returns the probabilities; serving-layer abstention is
    /// [`SubmitOptions::abstain_below`].
    ///
    /// [`SubmitOptions::abstain_below`]: crate::SubmitOptions::abstain_below
    pub fn abstentions(&self) -> u64 {
        self.abstentions.load(Ordering::Relaxed)
    }
}

/// Registry of live cascade counters for the Prometheus exposition:
/// `(model name, weak stats handle)`. Weak so a dropped cascade disappears
/// from `/metrics` instead of freezing at its last counts.
static STATS_REGISTRY: Mutex<Vec<(String, Weak<CascadeStats>)>> = Mutex::new(Vec::new());

fn register_stats(name: &str, stats: &Arc<CascadeStats>) {
    let mut registry = STATS_REGISTRY.lock().unwrap();
    // Latest registration wins the name; drop dead entries while we hold
    // the lock anyway.
    registry.retain(|(n, w)| n != name && w.strong_count() > 0);
    registry.push((name.to_string(), Arc::downgrade(stats)));
}

/// Render every live cascade's counters in Prometheus text exposition
/// format, or an empty string when no cascade exists. Appended by
/// [`InferenceServer::to_prometheus`] and [`ShardedServer::to_prometheus`]
/// so cascades show up on the same scrape as the serving metrics.
///
/// [`InferenceServer::to_prometheus`]: crate::InferenceServer::to_prometheus
/// [`ShardedServer::to_prometheus`]: crate::ShardedServer::to_prometheus
#[must_use]
pub fn prometheus_exposition() -> String {
    let live: Vec<(String, Arc<CascadeStats>)> = {
        let mut registry = STATS_REGISTRY.lock().unwrap();
        registry.retain(|(_, w)| w.strong_count() > 0);
        registry
            .iter()
            .filter_map(|(n, w)| Some((n.clone(), w.upgrade()?)))
            .collect()
    };
    if live.is_empty() {
        return String::new();
    }
    use std::fmt::Write as _;
    let mut out = String::new();
    type Counter = (&'static str, &'static str, fn(&CascadeStats) -> u64);
    let counters: [Counter; 3] = [
        (
            "cheap_hits",
            "Rows resolved by the cheap (quantized) cascade tier.",
            CascadeStats::cheap_hits,
        ),
        (
            "escalations",
            "Rows escalated to the full-precision cascade tier.",
            CascadeStats::escalations,
        ),
        (
            "abstentions",
            "Rows whose final margin stayed below the cascade abstention threshold.",
            CascadeStats::abstentions,
        ),
    ];
    for (name, help, value) in counters {
        let full = format!("bcpnn_cascade_{name}_total");
        let _ = writeln!(out, "# HELP {full} {help}");
        let _ = writeln!(out, "# TYPE {full} counter");
        for (model, stats) in &live {
            let escaped = model.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = writeln!(out, "{full}{{model=\"{escaped}\"}} {}", value(stats));
        }
    }
    out
}

/// A two-tier cascade predictor: cheap tier first, full tier for the rows
/// the cheap tier is unsure about. See the [module docs](self).
///
/// Implements [`Predictor`], so it publishes to a [`ModelRegistry`] and
/// hot-swaps exactly like any single-tier model.
///
/// [`ModelRegistry`]: crate::ModelRegistry
pub struct CascadeModel {
    name: String,
    cheap: Box<dyn Predictor + Send + Sync>,
    full: Box<dyn Predictor + Send + Sync>,
    escalate_below: f32,
    abstain_below: Option<f32>,
    stats: Arc<CascadeStats>,
}

impl fmt::Debug for CascadeModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CascadeModel")
            .field("name", &self.name)
            .field("escalate_below", &self.escalate_below)
            .field("abstain_below", &self.abstain_below)
            .field("n_inputs", &self.full.n_inputs())
            .field("n_classes", &self.full.n_classes())
            .finish()
    }
}

impl CascadeModel {
    /// Build a cascade from a cheap and a full tier with identical input
    /// and class shapes. `name` labels the cascade's counters in the
    /// Prometheus exposition; `escalate_below` is the top-2 margin under
    /// which a cheap-tier row is re-run through the full tier.
    pub fn new(
        name: impl Into<String>,
        cheap: Box<dyn Predictor + Send + Sync>,
        full: Box<dyn Predictor + Send + Sync>,
        escalate_below: f32,
    ) -> CoreResult<Self> {
        if cheap.n_inputs() != full.n_inputs() || cheap.n_classes() != full.n_classes() {
            return Err(CoreError::InvalidParams(format!(
                "cascade tiers disagree on shape: cheap {}x{} vs full {}x{}",
                cheap.n_inputs(),
                cheap.n_classes(),
                full.n_inputs(),
                full.n_classes()
            )));
        }
        if !escalate_below.is_finite() {
            return Err(CoreError::InvalidParams(format!(
                "cascade escalation threshold must be finite, got {escalate_below}"
            )));
        }
        let name = name.into();
        let stats = Arc::new(CascadeStats::default());
        register_stats(&name, &stats);
        Ok(Self {
            name,
            cheap,
            full,
            escalate_below,
            abstain_below: None,
            stats,
        })
    }

    /// Also count (in [`CascadeStats::abstentions`]) the rows whose final
    /// margin stays below `threshold` even after escalation. Metric-only:
    /// the rows' probabilities are still returned.
    #[must_use]
    pub fn with_abstain_below(mut self, threshold: f32) -> Self {
        self.abstain_below = Some(threshold);
        self
    }

    /// The cascade's metrics name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The escalation threshold rows must clear to stay in the cheap tier.
    pub fn escalate_below(&self) -> f32 {
        self.escalate_below
    }

    /// Shared handle to this cascade's routing counters.
    pub fn stats(&self) -> Arc<CascadeStats> {
        Arc::clone(&self.stats)
    }
}

impl Predictor for CascadeModel {
    fn predict_proba(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(0, 0);
        self.predict_proba_into(x, &mut ws, &mut out)?;
        Ok(out)
    }

    fn predict_proba_into(
        &self,
        x: &Matrix<f32>,
        ws: &mut Workspace,
        out: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        self.cheap.predict_proba_into(x, ws, out)?;

        // The cascade's own gather/scatter buffers must outlive the inner
        // full-tier call (which reuses the same workspace), so take them
        // out of the workspace rather than borrowing.
        let (mut sub_x, mut sub_out, mut rows) = ws.take_cascade_scratch();
        rows.clear();
        let escalate_all = self.escalate_below >= 1.0;
        for r in 0..out.rows() {
            if escalate_all || uncertainty::margin(out.row(r)) < self.escalate_below {
                rows.push(r);
            }
        }
        self.stats
            .cheap_hits
            .fetch_add((out.rows() - rows.len()) as u64, Ordering::Relaxed);

        if !rows.is_empty() {
            self.stats
                .escalations
                .fetch_add(rows.len() as u64, Ordering::Relaxed);
            sub_x.resize(rows.len(), x.cols());
            for (i, &r) in rows.iter().enumerate() {
                sub_x.row_mut(i).copy_from_slice(x.row(r));
            }
            let result = self.full.predict_proba_into(&sub_x, ws, &mut sub_out);
            if let Err(err) = result {
                ws.restore_cascade_scratch(sub_x, sub_out, rows);
                return Err(err);
            }
            for (i, &r) in rows.iter().enumerate() {
                out.row_mut(r).copy_from_slice(sub_out.row(i));
            }
        }

        if let Some(threshold) = self.abstain_below {
            let low = (0..out.rows())
                .filter(|&r| uncertainty::margin(out.row(r)) < threshold)
                .count();
            self.stats
                .abstentions
                .fetch_add(low as u64, Ordering::Relaxed);
        }
        ws.restore_cascade_scratch(sub_x, sub_out, rows);
        Ok(())
    }

    fn n_inputs(&self) -> usize {
        self.full.n_inputs()
    }

    fn n_classes(&self) -> usize {
        self.full.n_classes()
    }

    fn evaluate(&self, x: &Matrix<f32>, labels: &[usize]) -> CoreResult<EvalReport> {
        if x.rows() != labels.len() {
            return Err(CoreError::DataMismatch(
                "evaluation set size and label count differ".into(),
            ));
        }
        let proba = self.predict_proba(x)?;
        Ok(EvalReport::from_probabilities(&proba, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::validate_prometheus;
    use crate::testutil::tiny_pipeline;

    fn cascade_fixture(name: &str, threshold: f32) -> (CascadeModel, bcpnn_data::Dataset) {
        // Two differently seeded pipelines stand in for quantized/f32
        // tiers: what matters here is routing, not precision.
        let (cheap, data) = tiny_pipeline(70);
        let (full, _) = tiny_pipeline(71);
        let cascade = CascadeModel::new(name, Box::new(cheap), Box::new(full), threshold).unwrap();
        (cascade, data)
    }

    #[test]
    fn threshold_zero_is_the_cheap_tier_bit_for_bit() {
        let (cheap, data) = tiny_pipeline(70);
        let (cascade, _) = cascade_fixture("cascade-zero", 0.0);
        let direct = cheap.predict_proba(&data.features).unwrap();
        let routed = cascade.predict_proba(&data.features).unwrap();
        assert_eq!(routed, direct);
        assert_eq!(cascade.stats().escalations(), 0);
        assert_eq!(cascade.stats().cheap_hits(), data.n_samples() as u64);
    }

    #[test]
    fn threshold_one_is_the_full_tier_bit_for_bit() {
        let (full, _) = tiny_pipeline(71);
        let (cascade, data) = cascade_fixture("cascade-one", 1.0);
        let direct = full.predict_proba(&data.features).unwrap();
        let routed = cascade.predict_proba(&data.features).unwrap();
        assert_eq!(routed, direct);
        assert_eq!(cascade.stats().cheap_hits(), 0);
        assert_eq!(cascade.stats().escalations(), data.n_samples() as u64);
    }

    #[test]
    fn interior_threshold_splits_the_batch() {
        let (cascade, data) = cascade_fixture("cascade-split", 0.5);
        cascade.predict_proba(&data.features).unwrap();
        let stats = cascade.stats();
        assert_eq!(
            stats.cheap_hits() + stats.escalations(),
            data.n_samples() as u64,
            "every row is routed exactly once"
        );
    }

    #[test]
    fn abstain_threshold_counts_low_margin_rows() {
        let (cheap, data) = tiny_pipeline(70);
        let (full, _) = tiny_pipeline(71);
        // Margin can never reach 2.0, so every row counts as an
        // abstention candidate.
        let cascade = CascadeModel::new("cascade-abstain", Box::new(cheap), Box::new(full), 0.0)
            .unwrap()
            .with_abstain_below(2.0);
        cascade.predict_proba(&data.features).unwrap();
        assert_eq!(cascade.stats().abstentions(), data.n_samples() as u64);
    }

    #[test]
    fn mismatched_tiers_are_rejected() {
        let (cheap, data) = tiny_pipeline(70);
        let (full, _) = tiny_pipeline(71);
        let head = full
            .network()
            .sgd_readout()
            .expect("hybrid readout has an SGD head")
            .clone();
        // The bare head expects hidden activations, not raw features.
        let err = CascadeModel::new("bad", Box::new(cheap), Box::new(head), 0.5).unwrap_err();
        assert!(err.to_string().contains("shape"));
        drop(data);
    }

    #[test]
    fn exposition_is_valid_and_forgets_dropped_cascades() {
        let (cascade, data) = cascade_fixture("cascade-exposed", 0.5);
        cascade.predict_proba(&data.features).unwrap();
        let text = prometheus_exposition();
        assert!(text.contains("bcpnn_cascade_cheap_hits_total{model=\"cascade-exposed\"}"));
        assert!(text.contains("bcpnn_cascade_escalations_total"));
        assert!(text.contains("bcpnn_cascade_abstentions_total"));
        assert!(validate_prometheus(&text).is_ok(), "exposition: {text}");
        drop(cascade);
        let text = prometheus_exposition();
        assert!(
            !text.contains("cascade-exposed"),
            "dropped cascades must disappear from the scrape"
        );
    }

    #[test]
    fn nonfinite_threshold_is_rejected() {
        let (cheap, _) = tiny_pipeline(70);
        let (full, _) = tiny_pipeline(71);
        assert!(CascadeModel::new("nan", Box::new(cheap), Box::new(full), f32::NAN).is_err());
    }
}
