//! Serving metrics: request/batch counters, a batch-size histogram, and a
//! log-bucketed latency histogram with p50/p99 estimates.
//!
//! Everything is lock-free atomics so the hot path (one `fetch_add` per
//! event) never contends with readers; [`ServingMetrics::snapshot`] folds
//! the counters into an owned [`MetricsSnapshot`] for reporting.
//!
//! Snapshots can be merged across shards with
//! [`MetricsSnapshot::aggregate`] and rendered in Prometheus text
//! exposition format with [`MetricsSnapshot::to_prometheus`].

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of latency buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1)) µs`, with the last bucket open-ended.
const LATENCY_BUCKETS: usize = 28;
/// Number of batch-size buckets: bucket `i` holds sizes in
/// `[2^i, 2^(i+1))`, with the last bucket open-ended.
const BATCH_BUCKETS: usize = 16;

/// Lock-free serving counters; shared by the scheduler threads.
#[derive(Debug, Default)]
pub struct ServingMetrics {
    /// Requests accepted by `submit`.
    requests: AtomicU64,
    /// Successful responses delivered.
    responses: AtomicU64,
    /// Error responses delivered.
    errors: AtomicU64,
    /// Requests expired past their deadline without running.
    expired: AtomicU64,
    /// Requests the model abstained on (confidence below the caller's
    /// threshold).
    abstained: AtomicU64,
    /// Batches dispatched to workers.
    batches: AtomicU64,
    /// Sum of batch sizes (for the mean).
    batched_requests: AtomicU64,
    batch_hist: [AtomicU64; BATCH_BUCKETS],
    /// Sum of request latencies in microseconds (for the mean).
    latency_sum_us: AtomicU64,
    latency_hist: [AtomicU64; LATENCY_BUCKETS],
}

fn bucket_of(value: u64, buckets: usize) -> usize {
    // value 0 and 1 land in bucket 0; otherwise floor(log2(value)).
    ((64 - value.max(1).leading_zeros() as usize) - 1).min(buckets - 1)
}

impl ServingMetrics {
    /// Create zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count an accepted request.
    pub fn record_submit(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a dispatched batch of the given size.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.batch_hist[bucket_of(size as u64, BATCH_BUCKETS)].fetch_add(1, Ordering::Relaxed);
    }

    /// Count a delivered response and its end-to-end latency.
    pub fn record_response(&self, latency: Duration) {
        self.responses.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_hist[bucket_of(us, LATENCY_BUCKETS)].fetch_add(1, Ordering::Relaxed);
    }

    /// Count an error response.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request expired past its deadline (also an error response).
    pub fn record_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request the model abstained on (also an error response —
    /// the caller receives [`ServeError::Abstained`] instead of a
    /// prediction).
    ///
    /// [`ServeError::Abstained`]: crate::ServeError::Abstained
    pub fn record_abstained(&self) {
        self.abstained.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of accepted requests without a terminal outcome yet
    /// (`requests - responses - errors`, saturating): the live
    /// pending-queue depth. Every terminal path records exactly one
    /// response or error, so this converges back to zero when the queue
    /// drains.
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        let done = self.responses.load(Ordering::Relaxed) + self.errors.load(Ordering::Relaxed);
        self.requests.load(Ordering::Relaxed).saturating_sub(done)
    }

    /// Fold the live counters into an owned snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency_hist: Vec<u64> = self
            .latency_hist
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let batch_hist: Vec<u64> = self
            .batch_hist
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        MetricsSnapshot::from_sums(Sums {
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            abstained: self.abstained.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            latency_sum_us: self.latency_sum_us.load(Ordering::Relaxed),
            batch_hist,
            latency_hist,
        })
    }
}

/// Raw sums a snapshot derives its means and percentiles from. Kept
/// internal so merging shards stays exact (sums add; means don't).
struct Sums {
    requests: u64,
    responses: u64,
    errors: u64,
    expired: u64,
    abstained: u64,
    batches: u64,
    batched_requests: u64,
    latency_sum_us: u64,
    batch_hist: Vec<u64>,
    latency_hist: Vec<u64>,
}

/// Estimate a percentile from a log2-bucketed histogram: find the bucket the
/// rank falls in and return its geometric midpoint (`2^i * sqrt(2)`), which
/// is within a factor of `sqrt(2)` of the true value.
fn percentile_from_hist(hist: &[u64], q: f64) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in hist.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 2f64.powi(i as i32) * std::f64::consts::SQRT_2;
        }
    }
    2f64.powi(hist.len() as i32 - 1) * std::f64::consts::SQRT_2
}

/// A point-in-time copy of the serving counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted.
    pub requests: u64,
    /// Successful responses delivered.
    pub responses: u64,
    /// Error responses delivered (includes `expired`).
    pub errors: u64,
    /// Requests that expired past their deadline without being executed.
    pub expired: u64,
    /// Requests the model abstained on: the forward pass ran but the
    /// top-2 probability margin fell below the caller's
    /// `abstain_below` threshold, so the caller got
    /// `ServeError::Abstained` instead of a prediction. Also counted in
    /// `errors`.
    pub abstained: u64,
    /// Accepted requests still waiting for a terminal outcome when the
    /// snapshot was taken (`requests - responses - errors`): the
    /// pending-queue depth `RouteMode`-style load-aware routing balances
    /// on.
    pub pending: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch_size: f64,
    /// Mean end-to-end latency in microseconds.
    pub mean_latency_us: f64,
    /// Median end-to-end latency in microseconds (log-bucket estimate).
    pub p50_latency_us: f64,
    /// 99th-percentile end-to-end latency in microseconds (log-bucket
    /// estimate).
    pub p99_latency_us: f64,
    /// Batch-size histogram; bucket `i` counts batches of `2^i..2^(i+1)`
    /// requests.
    pub batch_size_hist: Vec<u64>,
    /// Latency histogram; bucket `i` counts responses in
    /// `2^i..2^(i+1)` µs.
    pub latency_hist_us: Vec<u64>,
    /// Exact sum of batch sizes (`mean_batch_size` = this / `batches`).
    pub batched_requests: u64,
    /// Exact sum of response latencies in microseconds
    /// (`mean_latency_us` = this / `responses`).
    pub latency_sum_us: u64,
}

impl MetricsSnapshot {
    fn from_sums(sums: Sums) -> Self {
        MetricsSnapshot {
            requests: sums.requests,
            responses: sums.responses,
            errors: sums.errors,
            expired: sums.expired,
            abstained: sums.abstained,
            pending: sums.requests.saturating_sub(sums.responses + sums.errors),
            batches: sums.batches,
            mean_batch_size: if sums.batches == 0 {
                0.0
            } else {
                sums.batched_requests as f64 / sums.batches as f64
            },
            mean_latency_us: if sums.responses == 0 {
                0.0
            } else {
                sums.latency_sum_us as f64 / sums.responses as f64
            },
            p50_latency_us: percentile_from_hist(&sums.latency_hist, 0.50),
            p99_latency_us: percentile_from_hist(&sums.latency_hist, 0.99),
            batch_size_hist: sums.batch_hist,
            latency_hist_us: sums.latency_hist,
            batched_requests: sums.batched_requests,
            latency_sum_us: sums.latency_sum_us,
        }
    }

    /// Merge per-shard snapshots into one: counters, histograms, and the
    /// carried raw sums add exactly; means and percentiles are recomputed
    /// from the merged sums, so the aggregate is what a single combined
    /// server would have reported.
    pub fn aggregate<'a, I: IntoIterator<Item = &'a MetricsSnapshot>>(snapshots: I) -> Self {
        let mut sums = Sums {
            requests: 0,
            responses: 0,
            errors: 0,
            expired: 0,
            abstained: 0,
            batches: 0,
            batched_requests: 0,
            latency_sum_us: 0,
            batch_hist: vec![0; BATCH_BUCKETS],
            latency_hist: vec![0; LATENCY_BUCKETS],
        };
        for s in snapshots {
            sums.requests += s.requests;
            sums.responses += s.responses;
            sums.errors += s.errors;
            sums.expired += s.expired;
            sums.abstained += s.abstained;
            sums.batches += s.batches;
            sums.batched_requests += s.batched_requests;
            sums.latency_sum_us += s.latency_sum_us;
            for (acc, &v) in sums.batch_hist.iter_mut().zip(&s.batch_size_hist) {
                *acc += v;
            }
            for (acc, &v) in sums.latency_hist.iter_mut().zip(&s.latency_hist_us) {
                *acc += v;
            }
        }
        MetricsSnapshot::from_sums(sums)
    }

    /// Render the snapshot in Prometheus text exposition format with no
    /// extra labels. See [`MetricsSnapshot::to_prometheus_labeled`].
    ///
    /// ```
    /// use std::time::Duration;
    /// use bcpnn_serve::ServingMetrics;
    ///
    /// let metrics = ServingMetrics::new();
    /// metrics.record_submit();
    /// metrics.record_batch(1);
    /// metrics.record_response(Duration::from_micros(250));
    ///
    /// let text = metrics.snapshot().to_prometheus();
    /// assert!(text.contains("# TYPE bcpnn_serve_requests_total counter"));
    /// assert!(text.contains("bcpnn_serve_requests_total 1"));
    /// assert!(text.contains("bcpnn_serve_latency_microseconds_count 1"));
    /// assert!(text.contains("bcpnn_serve_queue_depth 0"));
    /// ```
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        self.to_prometheus_labeled(&[])
    }

    /// Render the snapshot in Prometheus text exposition format
    /// (`# HELP` / `# TYPE` comments plus `name{labels} value` samples),
    /// attaching `labels` (e.g. `[("shard", "0")]`) to every sample.
    ///
    /// Counters become `_total` counters, the batch-size and latency
    /// histograms become cumulative-`le` Prometheus histograms with `_sum`
    /// and `_count`, and the latency quantile estimates are exported as
    /// gauges.
    #[must_use]
    pub fn to_prometheus_labeled(&self, labels: &[(&str, &str)]) -> String {
        render_prometheus(&[(labels.to_vec(), self)])
    }
}

/// One labeled snapshot in a multi-series exposition: the label set (e.g.
/// `[("shard", "0")]`) and the snapshot its samples come from.
pub(crate) type LabeledSnapshot<'a> = (Vec<(&'a str, &'a str)>, &'a MetricsSnapshot);

/// A metric definition: name suffix, help text, and value accessor.
type MetricDef<T> = (&'static str, &'static str, fn(&MetricsSnapshot) -> T);

/// Render one or more labeled snapshots as a single Prometheus text
/// exposition: `# HELP` / `# TYPE` appear exactly once per metric name,
/// followed by one sample per snapshot — the grouping the format requires
/// when the same metrics are exported under several label sets (e.g. one
/// per shard).
pub(crate) fn render_prometheus(series: &[LabeledSnapshot<'_>]) -> String {
    let mut out = String::new();

    let counters: [MetricDef<u64>; 6] = [
        ("requests", "Requests accepted by submit.", |s| s.requests),
        ("responses", "Successful responses delivered.", |s| {
            s.responses
        }),
        ("errors", "Error responses delivered.", |s| s.errors),
        (
            "deadline_expired",
            "Requests expired past their deadline without running.",
            |s| s.expired,
        ),
        (
            "abstained",
            "Requests the model abstained on (confidence below threshold).",
            |s| s.abstained,
        ),
        ("batches", "Batches dispatched to workers.", |s| s.batches),
    ];
    for (name, help, value) in counters {
        let full = format!("bcpnn_serve_{name}_total");
        let _ = writeln!(out, "# HELP {full} {help}");
        let _ = writeln!(out, "# TYPE {full} counter");
        for (labels, snapshot) in series {
            let _ = writeln!(
                out,
                "{full}{} {}",
                render_labels(labels, &[]),
                value(snapshot)
            );
        }
    }

    write_histogram(
        &mut out,
        "bcpnn_serve_batch_size",
        "Requests per dispatched batch.",
        series,
        |s| (&s.batch_size_hist, s.batched_requests),
    );
    write_histogram(
        &mut out,
        "bcpnn_serve_latency_microseconds",
        "End-to-end request latency in microseconds.",
        series,
        |s| (&s.latency_hist_us, s.latency_sum_us),
    );

    let gauges: [MetricDef<f64>; 4] = [
        (
            "queue_depth",
            "Accepted requests still waiting for a terminal outcome.",
            |s| s.pending as f64,
        ),
        (
            "latency_p50_microseconds",
            "Estimated median end-to-end latency.",
            |s| s.p50_latency_us,
        ),
        (
            "latency_p99_microseconds",
            "Estimated 99th-percentile end-to-end latency.",
            |s| s.p99_latency_us,
        ),
        (
            "mean_batch_size",
            "Mean requests per dispatched batch.",
            |s| s.mean_batch_size,
        ),
    ];
    for (name, help, value) in gauges {
        let full = format!("bcpnn_serve_{name}");
        let _ = writeln!(out, "# HELP {full} {help}");
        let _ = writeln!(out, "# TYPE {full} gauge");
        for (labels, snapshot) in series {
            let _ = writeln!(
                out,
                "{full}{} {}",
                render_labels(labels, &[]),
                value(snapshot)
            );
        }
    }
    out
}

/// Render a `{k="v",...}` label set (empty string when there are none).
/// `extra` is appended after the shared labels.
fn render_labels(labels: &[(&str, &str)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .chain(extra)
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Append one log2-bucketed histogram as a Prometheus histogram, one
/// label-set at a time under a single `# HELP`/`# TYPE` pair: cumulative
/// `_bucket{le="..."}` samples (upper bound of bucket `i` is `2^(i+1)-1`,
/// the largest integer it holds), then `+Inf`, `_sum`, and `_count`.
fn write_histogram<'a>(
    out: &mut String,
    name: &str,
    help: &str,
    series: &'a [LabeledSnapshot<'a>],
    select: fn(&'a MetricsSnapshot) -> (&'a Vec<u64>, u64),
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (labels, snapshot) in series {
        let (hist, sum) = select(snapshot);
        let mut cumulative = 0u64;
        for (i, &count) in hist.iter().enumerate() {
            cumulative += count;
            // The last bucket is open-ended, so its only bound is +Inf
            // below.
            if i + 1 < hist.len() {
                let le = format!("{}", (1u128 << (i + 1)) - 1);
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    render_labels(labels, &[("le", &le)])
                );
            }
        }
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            render_labels(labels, &[("le", "+Inf")])
        );
        let _ = writeln!(out, "{name}_sum{} {sum}", render_labels(labels, &[]));
        let _ = writeln!(
            out,
            "{name}_count{} {cumulative}",
            render_labels(labels, &[])
        );
    }
}

/// Check a Prometheus text exposition for structural validity, returning
/// the number of samples it contains.
///
/// This is the same check the crate's own unit tests apply to
/// [`MetricsSnapshot::to_prometheus`] output, made public so integration
/// tests (and anything that concatenates expositions, like the HTTP
/// gateway's `/metrics` endpoint) can assert their combined output still
/// parses: every line must be a `# HELP`/`# TYPE` comment or a
/// `name{labels} value` sample with a parseable value and balanced,
/// quoted labels, and no metric may be declared more than once — the
/// constraint real scrapers enforce when several label sets or exporters
/// share one scrape.
///
/// ```
/// use bcpnn_serve::{validate_prometheus, ServingMetrics};
///
/// let metrics = ServingMetrics::new();
/// metrics.record_submit();
/// metrics.record_response(std::time::Duration::from_micros(120));
/// let text = metrics.snapshot().to_prometheus();
/// let samples = validate_prometheus(&text).expect("exposition is valid");
/// assert!(samples > 0);
/// assert!(validate_prometheus("not { prometheus").is_err());
/// ```
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().next().unwrap().is_ascii_alphabetic()
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    }
    let mut samples = 0usize;
    let mut declared: std::collections::HashSet<String> = std::collections::HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kind = parts.next().unwrap();
            let name = parts.next().unwrap_or("");
            if kind != "HELP" && kind != "TYPE" {
                return Err(format!("unknown comment kind in {line:?}"));
            }
            if !valid_name(name) {
                return Err(format!("bad metric name in {line:?}"));
            }
            if !declared.insert(format!("{kind} {name}")) {
                return Err(format!("duplicate {kind} declaration for {name}"));
            }
            if kind == "TYPE" {
                let t = parts.next().unwrap_or("");
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&t) {
                    return Err(format!("bad type {t:?} in {line:?}"));
                }
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let Some((name_part, value_part)) = line.rsplit_once(' ') else {
            return Err(format!("sample without a value in {line:?}"));
        };
        if value_part.parse::<f64>().is_err() && value_part != "+Inf" {
            return Err(format!("unparseable value in {line:?}"));
        }
        let name = if let Some((name, labels)) = name_part.split_once('{') {
            let Some(labels) = labels.strip_suffix('}') else {
                return Err(format!("unbalanced braces in {line:?}"));
            };
            for pair in
                split_label_pairs(labels).map_err(|problem| format!("{problem} in {line:?}"))?
            {
                let Some((k, v)) = pair.split_once('=') else {
                    return Err(format!("label without '=' in {line:?}"));
                };
                if !valid_name(k) && k != "le" {
                    return Err(format!("bad label key in {line:?}"));
                }
                if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                    return Err(format!("unquoted label value in {line:?}"));
                }
            }
            name
        } else {
            name_part
        };
        if !valid_name(name) {
            return Err(format!("bad sample name in {line:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("exposition contains no samples".into());
    }
    Ok(samples)
}

/// Split a `k="v",k2="v2"` label body on the commas *between* pairs,
/// leaving commas (and `\"`-escaped quotes) inside quoted values intact —
/// a sample like `m{path="a,b"} 1` is valid and must not be split apart.
fn split_label_pairs(labels: &str) -> Result<impl Iterator<Item = &str>, String> {
    let mut cuts = Vec::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in labels.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => cuts.push(i),
            _ => {}
        }
    }
    if in_quotes {
        return Err("unterminated quoted label value".to_string());
    }
    let mut start = 0;
    let mut pairs = Vec::with_capacity(cuts.len() + 1);
    for cut in cuts {
        pairs.push(&labels[start..cut]);
        start = cut + 1;
    }
    pairs.push(&labels[start..]);
    Ok(pairs.into_iter())
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests {}  responses {}  errors {} (expired {})  batches {}  mean batch {:.2}",
            self.requests,
            self.responses,
            self.errors,
            self.expired,
            self.batches,
            self.mean_batch_size
        )?;
        write!(
            f,
            "latency µs: mean {:.0}  p50 ~{:.0}  p99 ~{:.0}",
            self.mean_latency_us, self.p50_latency_us, self.p99_latency_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0, 16), 0);
        assert_eq!(bucket_of(1, 16), 0);
        assert_eq!(bucket_of(2, 16), 1);
        assert_eq!(bucket_of(3, 16), 1);
        assert_eq!(bucket_of(4, 16), 2);
        assert_eq!(bucket_of(1023, 16), 9);
        assert_eq!(bucket_of(u64::MAX, 16), 15, "clamped to the last bucket");
    }

    #[test]
    fn snapshot_aggregates_counts() {
        let m = ServingMetrics::new();
        for _ in 0..10 {
            m.record_submit();
        }
        m.record_batch(4);
        m.record_batch(6);
        for i in 0..10u64 {
            m.record_response(Duration::from_micros(100 + i));
        }
        m.record_error();
        let s = m.snapshot();
        assert_eq!(s.requests, 10);
        assert_eq!(s.responses, 10);
        assert_eq!(s.errors, 1);
        assert_eq!(s.expired, 0);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch_size - 5.0).abs() < 1e-9);
        assert!(s.mean_latency_us >= 100.0 && s.mean_latency_us < 110.0);
        // 100 µs lands in bucket 6 (64..128): midpoint ~90.5.
        assert!(s.p50_latency_us > 64.0 && s.p50_latency_us < 128.0);
        assert_eq!(s.batch_size_hist[2], 2, "4 and 6 both land in bucket 2");
    }

    #[test]
    fn percentiles_split_a_bimodal_distribution() {
        let m = ServingMetrics::new();
        // 98 fast responses (~8 µs), 2 slow (~8192 µs).
        for _ in 0..98 {
            m.record_response(Duration::from_micros(8));
        }
        for _ in 0..2 {
            m.record_response(Duration::from_micros(8192));
        }
        let s = m.snapshot();
        assert!(s.p50_latency_us < 32.0, "p50 {}", s.p50_latency_us);
        assert!(s.p99_latency_us > 4000.0, "p99 {}", s.p99_latency_us);
    }

    #[test]
    fn empty_metrics_have_zero_estimates() {
        let s = ServingMetrics::new().snapshot();
        assert_eq!(s.p50_latency_us, 0.0);
        assert_eq!(s.mean_batch_size, 0.0);
        assert_eq!(s.mean_latency_us, 0.0);
    }

    #[test]
    fn queue_depth_tracks_unterminated_requests() {
        let m = ServingMetrics::new();
        assert_eq!(m.queue_depth(), 0);
        for _ in 0..5 {
            m.record_submit();
        }
        assert_eq!(m.queue_depth(), 5);
        m.record_response(Duration::from_micros(10));
        m.record_error();
        m.record_expired();
        assert_eq!(m.queue_depth(), 2);
        assert_eq!(m.snapshot().pending, 2);
        // Aggregation sums pending across shards.
        let merged = MetricsSnapshot::aggregate([&m.snapshot(), &m.snapshot()]);
        assert_eq!(merged.pending, 4);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("bcpnn_serve_queue_depth 2"));
    }

    #[test]
    fn expired_requests_count_as_errors_too() {
        let m = ServingMetrics::new();
        m.record_expired();
        m.record_expired();
        m.record_error();
        let s = m.snapshot();
        assert_eq!(s.expired, 2);
        assert_eq!(s.errors, 3);
    }

    #[test]
    fn abstained_requests_count_as_errors_and_export() {
        let m = ServingMetrics::new();
        m.record_submit();
        m.record_abstained();
        let s = m.snapshot();
        assert_eq!(s.abstained, 1);
        assert_eq!(s.errors, 1, "abstention is a terminal error outcome");
        assert_eq!(s.pending, 0, "abstention settles the request");
        let text = s.to_prometheus();
        assert_valid_prometheus(&text);
        assert!(text.contains("bcpnn_serve_abstained_total 1"));
        let merged = MetricsSnapshot::aggregate([&s, &s]);
        assert_eq!(merged.abstained, 2);
    }

    #[test]
    fn aggregate_matches_a_single_combined_recorder() {
        let a = ServingMetrics::new();
        let b = ServingMetrics::new();
        let combined = ServingMetrics::new();
        for i in 0..6u64 {
            let (shard, latency) = if i % 2 == 0 {
                (&a, Duration::from_micros(10 + i))
            } else {
                (&b, Duration::from_micros(5000 + i))
            };
            shard.record_submit();
            shard.record_response(latency);
            combined.record_submit();
            combined.record_response(latency);
        }
        a.record_batch(4);
        b.record_batch(2);
        combined.record_batch(4);
        combined.record_batch(2);
        b.record_expired();
        combined.record_expired();

        let merged = MetricsSnapshot::aggregate([&a.snapshot(), &b.snapshot()]);
        let reference = combined.snapshot();
        assert_eq!(merged, reference);
    }

    #[test]
    fn aggregate_of_nothing_is_empty() {
        let s = MetricsSnapshot::aggregate([]);
        assert_eq!(s.requests, 0);
        assert_eq!(s.mean_latency_us, 0.0);
        assert_eq!(s.p99_latency_us, 0.0);
    }

    /// Assert the exposition passes the public validity parser (see
    /// [`validate_prometheus`] for the rules it enforces).
    fn assert_valid_prometheus(text: &str) {
        if let Err(problem) = validate_prometheus(text) {
            panic!("invalid Prometheus exposition: {problem}");
        }
    }

    #[test]
    fn validator_accepts_commas_and_escapes_inside_quoted_labels() {
        // Third-party expositions this validator may be pointed at can
        // carry commas or escaped quotes inside label values.
        let text = "# TYPE m counter\nm{path=\"a,b\",k=\"x\\\"y\"} 1\n";
        assert_eq!(validate_prometheus(text), Ok(1));
        assert!(validate_prometheus("m{k=\"unterminated} 1\n").is_err());
    }

    #[test]
    fn validator_rejects_broken_expositions() {
        for (text, why) in [
            ("", "no samples"),
            ("# NOTE x y\n", "unknown comment kind"),
            ("# TYPE m sideways\nm 1\n", "bad type"),
            (
                "# TYPE m counter\n# TYPE m counter\nm 1\n",
                "duplicate declaration",
            ),
            ("m not_a_number\n", "unparseable value"),
            ("m{k=unquoted} 1\n", "unquoted label value"),
            ("m{k=\"v\" 1\n", "unbalanced braces"),
            ("1metric 1\n", "bad sample name"),
        ] {
            assert!(validate_prometheus(text).is_err(), "must reject: {why}");
        }
    }

    #[test]
    fn prometheus_export_is_valid_and_complete() {
        let m = ServingMetrics::new();
        for _ in 0..5 {
            m.record_submit();
        }
        m.record_batch(3);
        m.record_batch(2);
        for _ in 0..5 {
            m.record_response(Duration::from_micros(120));
        }
        m.record_expired();
        let s = m.snapshot();
        let text = s.to_prometheus();
        assert_valid_prometheus(&text);
        assert!(text.contains("bcpnn_serve_requests_total 5"));
        assert!(text.contains("bcpnn_serve_responses_total 5"));
        assert!(text.contains("bcpnn_serve_deadline_expired_total 1"));
        assert!(text.contains("bcpnn_serve_batch_size_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("bcpnn_serve_batch_size_sum 5"));
        assert!(text.contains("bcpnn_serve_batch_size_count 2"));
        assert!(text.contains("bcpnn_serve_latency_microseconds_count 5"));
        assert!(text.contains("bcpnn_serve_latency_p99_microseconds"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let m = ServingMetrics::new();
        m.record_batch(1); // bucket 0 (le="1")
        m.record_batch(2); // bucket 1 (le="3")
        m.record_batch(2);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("bcpnn_serve_batch_size_bucket{le=\"1\"} 1"));
        assert!(text.contains("bcpnn_serve_batch_size_bucket{le=\"3\"} 3"));
        assert!(text.contains("bcpnn_serve_batch_size_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn prometheus_labels_are_attached_to_every_sample() {
        let m = ServingMetrics::new();
        m.record_submit();
        m.record_batch(1);
        m.record_response(Duration::from_micros(10));
        let text = m.snapshot().to_prometheus_labeled(&[("shard", "2")]);
        assert_valid_prometheus(&text);
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                line.contains("shard=\"2\""),
                "sample missing shard label: {line:?}"
            );
        }
        assert!(text.contains("bcpnn_serve_batch_size_bucket{shard=\"2\",le=\"1\"} 1"));
    }

    #[test]
    fn multi_series_render_declares_each_metric_once() {
        let a = ServingMetrics::new();
        a.record_submit();
        a.record_batch(1);
        a.record_response(Duration::from_micros(50));
        let b = ServingMetrics::new();
        b.record_submit();
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let text = render_prometheus(&[
            (
                vec![("shard", "all")],
                &MetricsSnapshot::aggregate([&sa, &sb]),
            ),
            (vec![("shard", "0")], &sa),
            (vec![("shard", "1")], &sb),
        ]);
        // The uniqueness assertion inside the parser is the real check: a
        // scraper rejects a second HELP/TYPE for the same metric name.
        assert_valid_prometheus(&text);
        assert!(text.contains("bcpnn_serve_requests_total{shard=\"all\"} 2"));
        assert!(text.contains("bcpnn_serve_requests_total{shard=\"0\"} 1"));
        assert!(text.contains("bcpnn_serve_requests_total{shard=\"1\"} 1"));
    }

    #[test]
    fn snapshot_carries_exact_sums() {
        let m = ServingMetrics::new();
        m.record_batch(3);
        m.record_batch(4);
        m.record_response(Duration::from_micros(100));
        m.record_response(Duration::from_micros(250));
        let s = m.snapshot();
        assert_eq!(s.batched_requests, 7);
        assert_eq!(s.latency_sum_us, 350);
        let merged = MetricsSnapshot::aggregate([&s, &s]);
        assert_eq!(merged.batched_requests, 14);
        assert_eq!(merged.latency_sum_us, 700);
    }

    #[test]
    fn display_mentions_the_headline_numbers() {
        let m = ServingMetrics::new();
        m.record_submit();
        m.record_batch(1);
        m.record_response(Duration::from_micros(500));
        let text = m.snapshot().to_string();
        assert!(text.contains("requests 1"));
        assert!(text.contains("p50"));
    }
}
