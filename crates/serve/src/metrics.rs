//! Serving metrics: request/batch counters, a batch-size histogram, and a
//! log-bucketed latency histogram with p50/p99 estimates.
//!
//! Everything is lock-free atomics so the hot path (one `fetch_add` per
//! event) never contends with readers; [`ServingMetrics::snapshot`] folds
//! the counters into an owned [`MetricsSnapshot`] for reporting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of latency buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1)) µs`, with the last bucket open-ended.
const LATENCY_BUCKETS: usize = 28;
/// Number of batch-size buckets: bucket `i` holds sizes in
/// `[2^i, 2^(i+1))`, with the last bucket open-ended.
const BATCH_BUCKETS: usize = 16;

/// Lock-free serving counters; shared by the scheduler threads.
#[derive(Debug, Default)]
pub struct ServingMetrics {
    /// Requests accepted by `submit`.
    requests: AtomicU64,
    /// Successful responses delivered.
    responses: AtomicU64,
    /// Error responses delivered.
    errors: AtomicU64,
    /// Batches dispatched to workers.
    batches: AtomicU64,
    /// Sum of batch sizes (for the mean).
    batched_requests: AtomicU64,
    batch_hist: [AtomicU64; BATCH_BUCKETS],
    /// Sum of request latencies in microseconds (for the mean).
    latency_sum_us: AtomicU64,
    latency_hist: [AtomicU64; LATENCY_BUCKETS],
}

fn bucket_of(value: u64, buckets: usize) -> usize {
    // value 0 and 1 land in bucket 0; otherwise floor(log2(value)).
    ((64 - value.max(1).leading_zeros() as usize) - 1).min(buckets - 1)
}

impl ServingMetrics {
    /// Create zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count an accepted request.
    pub fn record_submit(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a dispatched batch of the given size.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.batch_hist[bucket_of(size as u64, BATCH_BUCKETS)].fetch_add(1, Ordering::Relaxed);
    }

    /// Count a delivered response and its end-to-end latency.
    pub fn record_response(&self, latency: Duration) {
        self.responses.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_hist[bucket_of(us, LATENCY_BUCKETS)].fetch_add(1, Ordering::Relaxed);
    }

    /// Count an error response.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold the live counters into an owned snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency_hist: Vec<u64> = self
            .latency_hist
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let batch_hist: Vec<u64> = self
            .batch_hist
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let responses = self.responses.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            responses,
            errors: self.errors.load(Ordering::Relaxed),
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            mean_latency_us: if responses == 0 {
                0.0
            } else {
                self.latency_sum_us.load(Ordering::Relaxed) as f64 / responses as f64
            },
            p50_latency_us: percentile_from_hist(&latency_hist, 0.50),
            p99_latency_us: percentile_from_hist(&latency_hist, 0.99),
            batch_size_hist: batch_hist,
            latency_hist_us: latency_hist,
        }
    }
}

/// Estimate a percentile from a log2-bucketed histogram: find the bucket the
/// rank falls in and return its geometric midpoint (`2^i * sqrt(2)`), which
/// is within a factor of `sqrt(2)` of the true value.
fn percentile_from_hist(hist: &[u64], q: f64) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in hist.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 2f64.powi(i as i32) * std::f64::consts::SQRT_2;
        }
    }
    2f64.powi(hist.len() as i32 - 1) * std::f64::consts::SQRT_2
}

/// A point-in-time copy of the serving counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted.
    pub requests: u64,
    /// Successful responses delivered.
    pub responses: u64,
    /// Error responses delivered.
    pub errors: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch_size: f64,
    /// Mean end-to-end latency in microseconds.
    pub mean_latency_us: f64,
    /// Median end-to-end latency in microseconds (log-bucket estimate).
    pub p50_latency_us: f64,
    /// 99th-percentile end-to-end latency in microseconds (log-bucket
    /// estimate).
    pub p99_latency_us: f64,
    /// Batch-size histogram; bucket `i` counts batches of `2^i..2^(i+1)`
    /// requests.
    pub batch_size_hist: Vec<u64>,
    /// Latency histogram; bucket `i` counts responses in
    /// `2^i..2^(i+1)` µs.
    pub latency_hist_us: Vec<u64>,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests {}  responses {}  errors {}  batches {}  mean batch {:.2}",
            self.requests, self.responses, self.errors, self.batches, self.mean_batch_size
        )?;
        write!(
            f,
            "latency µs: mean {:.0}  p50 ~{:.0}  p99 ~{:.0}",
            self.mean_latency_us, self.p50_latency_us, self.p99_latency_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0, 16), 0);
        assert_eq!(bucket_of(1, 16), 0);
        assert_eq!(bucket_of(2, 16), 1);
        assert_eq!(bucket_of(3, 16), 1);
        assert_eq!(bucket_of(4, 16), 2);
        assert_eq!(bucket_of(1023, 16), 9);
        assert_eq!(bucket_of(u64::MAX, 16), 15, "clamped to the last bucket");
    }

    #[test]
    fn snapshot_aggregates_counts() {
        let m = ServingMetrics::new();
        for _ in 0..10 {
            m.record_submit();
        }
        m.record_batch(4);
        m.record_batch(6);
        for i in 0..10u64 {
            m.record_response(Duration::from_micros(100 + i));
        }
        m.record_error();
        let s = m.snapshot();
        assert_eq!(s.requests, 10);
        assert_eq!(s.responses, 10);
        assert_eq!(s.errors, 1);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch_size - 5.0).abs() < 1e-9);
        assert!(s.mean_latency_us >= 100.0 && s.mean_latency_us < 110.0);
        // 100 µs lands in bucket 6 (64..128): midpoint ~90.5.
        assert!(s.p50_latency_us > 64.0 && s.p50_latency_us < 128.0);
        assert_eq!(s.batch_size_hist[2], 2, "4 and 6 both land in bucket 2");
    }

    #[test]
    fn percentiles_split_a_bimodal_distribution() {
        let m = ServingMetrics::new();
        // 98 fast responses (~8 µs), 2 slow (~8192 µs).
        for _ in 0..98 {
            m.record_response(Duration::from_micros(8));
        }
        for _ in 0..2 {
            m.record_response(Duration::from_micros(8192));
        }
        let s = m.snapshot();
        assert!(s.p50_latency_us < 32.0, "p50 {}", s.p50_latency_us);
        assert!(s.p99_latency_us > 4000.0, "p99 {}", s.p99_latency_us);
    }

    #[test]
    fn empty_metrics_have_zero_estimates() {
        let s = ServingMetrics::new().snapshot();
        assert_eq!(s.p50_latency_us, 0.0);
        assert_eq!(s.mean_batch_size, 0.0);
        assert_eq!(s.mean_latency_us, 0.0);
    }

    #[test]
    fn display_mentions_the_headline_numbers() {
        let m = ServingMetrics::new();
        m.record_submit();
        m.record_batch(1);
        m.record_response(Duration::from_micros(500));
        let text = m.snapshot().to_string();
        assert!(text.contains("requests 1"));
        assert!(text.contains("p50"));
    }
}
