//! Error type for the serving subsystem.

use std::fmt;

use bcpnn_core::CoreError;

/// Errors surfaced by the registry, pipeline, and inference server.
///
/// Cloneable (unlike [`CoreError`]) because one failed batch fans the same
/// error out to every caller waiting on it.
///
/// Marked `#[non_exhaustive]`: new failure modes may be added without a
/// breaking change, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// No model is registered under the requested name.
    UnknownModel(String),
    /// A request's feature vector has the wrong width for the model.
    ShapeMismatch {
        /// Width the served model expects.
        expected: usize,
        /// Width the request supplied.
        got: usize,
    },
    /// The model rejected the batch (wraps the rendered [`CoreError`]).
    Model(String),
    /// Loading or saving a model artifact failed.
    Io(String),
    /// The request's deadline passed before a worker could run it; the
    /// forward pass was skipped entirely.
    DeadlineExceeded,
    /// The model's confidence (top-2 probability margin) fell below the
    /// caller's [`SubmitOptions::abstain_below`] threshold; the prediction
    /// was withheld rather than returned.
    ///
    /// [`SubmitOptions::abstain_below`]: crate::SubmitOptions::abstain_below
    Abstained,
    /// The server is shutting down (or already shut down) and the request
    /// cannot be served.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel(name) => write!(f, "no model named {name:?} is registered"),
            ServeError::ShapeMismatch { expected, got } => write!(
                f,
                "request has {got} features but the model expects {expected}"
            ),
            ServeError::Model(msg) => write!(f, "model error: {msg}"),
            ServeError::Io(msg) => write!(f, "artifact I/O error: {msg}"),
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline passed before it could be served")
            }
            ServeError::Abstained => {
                write!(
                    f,
                    "model abstained: prediction confidence below the requested threshold"
                )
            }
            ServeError::Disconnected => write!(f, "inference server is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::Io(io) => ServeError::Io(io.to_string()),
            other => ServeError::Model(other.to_string()),
        }
    }
}

impl From<bcpnn_tensor::IoError> for ServeError {
    fn from(e: bcpnn_tensor::IoError) -> Self {
        ServeError::Io(e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type ServeResult<T> = Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeError::UnknownModel("higgs".into())
            .to_string()
            .contains("higgs"));
        let e = ServeError::ShapeMismatch {
            expected: 28,
            got: 3,
        };
        assert!(e.to_string().contains("28"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn core_errors_convert() {
        let e: ServeError = CoreError::InvalidParams("bad".into()).into();
        assert!(matches!(e, ServeError::Model(_)));
        let io = CoreError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        let e: ServeError = io.into();
        assert!(matches!(e, ServeError::Io(_)));
    }
}
