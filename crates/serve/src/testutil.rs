//! Shared test fixtures for the serving crate.

use bcpnn_backend::BackendKind;
use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::Dataset;

/// Train a tiny synthetic-Higgs pipeline (quantile encoder + hybrid
/// network) for scheduler/registry tests.
pub(crate) fn tiny_pipeline(seed: u64) -> (Pipeline, Dataset) {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 400,
        seed,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(2, 4, 0.3)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 50,
            ..Default::default()
        },
    )
    .expect("tiny pipeline trains");
    (pipeline, data)
}
