//! Property tests for [`MetricsSnapshot::aggregate`]: shard merging must
//! behave like a commutative monoid over event histories, so the
//! `shard="all"` series in the Prometheus export is *exactly* what a
//! single combined recorder would have reported — however the shards are
//! grouped — and per-shard `pending` gauges sum without double counting.

use std::time::Duration;

use bcpnn_serve::{MetricsSnapshot, ServingMetrics};
use proptest::prelude::*;

/// One shard's event history, replayable onto a recorder.
#[derive(Debug, Clone)]
struct History {
    latencies_us: Vec<u64>,
    batch_sizes: Vec<usize>,
    /// Requests submitted beyond the responded ones (stay pending).
    extra_requests: usize,
    errors: usize,
    expired: usize,
}

impl History {
    fn replay(&self, metrics: &ServingMetrics) {
        // Every terminal outcome (response, error, expiry) belongs to a
        // submitted request; `extra_requests` stay pending.
        let submissions =
            self.latencies_us.len() + self.errors + self.expired + self.extra_requests;
        for _ in 0..submissions {
            metrics.record_submit();
        }
        for &size in &self.batch_sizes {
            metrics.record_batch(size);
        }
        for &us in &self.latencies_us {
            metrics.record_response(Duration::from_micros(us));
        }
        for _ in 0..self.errors {
            metrics.record_error();
        }
        for _ in 0..self.expired {
            metrics.record_expired();
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let metrics = ServingMetrics::new();
        self.replay(&metrics);
        metrics.snapshot()
    }
}

/// Strategy: an arbitrary shard history with latencies spanning the whole
/// log-bucket range and batch sizes crossing bucket boundaries.
fn history() -> impl Strategy<Value = History> {
    (
        prop::collection::vec(0u64..5_000_000, 0..40),
        prop::collection::vec(1usize..200, 0..20),
        0usize..30,
        0usize..10,
        0usize..10,
    )
        .prop_map(
            |(latencies_us, batch_sizes, extra_requests, errors, expired)| History {
                latencies_us,
                batch_sizes,
                extra_requests,
                errors,
                expired,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn aggregate_is_associative_and_commutative((a, b, c) in (history(), history(), history())) {
        let (sa, sb, sc) = (a.snapshot(), b.snapshot(), c.snapshot());
        let flat = MetricsSnapshot::aggregate([&sa, &sb, &sc]);
        let left = MetricsSnapshot::aggregate([&MetricsSnapshot::aggregate([&sa, &sb]), &sc]);
        let right = MetricsSnapshot::aggregate([&sa, &MetricsSnapshot::aggregate([&sb, &sc])]);
        // Exact equality, f64 fields included: the derived statistics are
        // recomputed from the merged integer sums, never averaged.
        prop_assert_eq!(&flat, &left);
        prop_assert_eq!(&flat, &right);
        prop_assert_eq!(
            MetricsSnapshot::aggregate([&sa, &sb]),
            MetricsSnapshot::aggregate([&sb, &sa])
        );
    }

    #[test]
    fn aggregate_matches_one_combined_recorder((a, b, c) in (history(), history(), history())) {
        // Replaying every shard's history onto one recorder must produce
        // exactly the aggregate of the per-shard snapshots: nothing is
        // lost, nothing is double-counted in shard="all".
        let combined = ServingMetrics::new();
        for history in [&a, &b, &c] {
            history.replay(&combined);
        }
        let merged = MetricsSnapshot::aggregate([&a.snapshot(), &b.snapshot(), &c.snapshot()]);
        prop_assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn empty_is_the_identity_and_singleton_is_id(h in history()) {
        let s = h.snapshot();
        let empty = ServingMetrics::new().snapshot();
        prop_assert_eq!(MetricsSnapshot::aggregate([&s]), s.clone());
        prop_assert_eq!(MetricsSnapshot::aggregate([&s, &empty]), s.clone());
        prop_assert_eq!(MetricsSnapshot::aggregate([&empty, &s]), s);
    }

    #[test]
    fn pending_sums_exactly_across_shards((a, b) in (history(), history())) {
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let merged = MetricsSnapshot::aggregate([&sa, &sb]);
        prop_assert_eq!(merged.pending, sa.pending + sb.pending);
        prop_assert_eq!(merged.pending, (a.extra_requests + b.extra_requests) as u64);
        // The queue-depth gauge in the rendered exposition is this same
        // number: requests minus terminal outcomes.
        prop_assert_eq!(
            merged.pending,
            merged.requests - merged.responses - merged.errors
        );
    }
}
