//! Dynamic-range reports and format sweeps for the precision ablation.
//!
//! Before choosing a narrow storage format one needs to know what the
//! tensors actually hold: [`DynamicRangeReport`] summarises a buffer's
//! magnitude distribution, and [`format_sweep`] rounds the same buffer
//! through a list of candidate formats to compare the damage each would do.

use crate::quantize::{NumericFormat, QuantizationError};

/// Magnitude statistics of one tensor / buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicRangeReport {
    /// Smallest non-zero magnitude.
    pub min_abs: f64,
    /// Largest magnitude.
    pub max_abs: f64,
    /// Mean magnitude over all values (zeros included).
    pub mean_abs: f64,
    /// `log2(max_abs / min_abs)` — the bits of pure range a format must
    /// cover before it spends anything on precision.
    pub log2_dynamic_range: f64,
    /// Fraction of exactly-zero values.
    pub zero_fraction: f64,
    /// Number of values inspected.
    pub n_values: usize,
}

impl DynamicRangeReport {
    /// Measure a buffer. Non-finite values are ignored; an all-zero (or
    /// empty) buffer reports zero range.
    pub fn measure(values: &[f32]) -> Self {
        let mut min_abs = f64::INFINITY;
        let mut max_abs = 0.0f64;
        let mut sum_abs = 0.0f64;
        let mut zeros = 0usize;
        let mut counted = 0usize;
        for &v in values {
            if !v.is_finite() {
                continue;
            }
            counted += 1;
            let a = (v as f64).abs();
            sum_abs += a;
            if a == 0.0 {
                zeros += 1;
            } else {
                min_abs = min_abs.min(a);
                max_abs = max_abs.max(a);
            }
        }
        if max_abs == 0.0 {
            return Self {
                min_abs: 0.0,
                max_abs: 0.0,
                mean_abs: 0.0,
                log2_dynamic_range: 0.0,
                zero_fraction: if counted == 0 {
                    0.0
                } else {
                    zeros as f64 / counted as f64
                },
                n_values: counted,
            };
        }
        Self {
            min_abs,
            max_abs,
            mean_abs: sum_abs / counted.max(1) as f64,
            log2_dynamic_range: (max_abs / min_abs).log2(),
            zero_fraction: zeros as f64 / counted.max(1) as f64,
            n_values: counted,
        }
    }
}

impl std::fmt::Display for DynamicRangeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|x| in [{:.3e}, {:.3e}] ({:.1} bits of range, {:.1}% zeros, n={})",
            self.min_abs,
            self.max_abs,
            self.log2_dynamic_range,
            self.zero_fraction * 100.0,
            self.n_values
        )
    }
}

/// One row of a [`format_sweep`]: a candidate format and the error it
/// introduces on the probed buffer.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The candidate storage format.
    pub format: NumericFormat,
    /// Error statistics of rounding the buffer through it.
    pub error: QuantizationError,
}

/// Round `values` through every candidate format and report the errors,
/// in the order given.
pub fn format_sweep(formats: &[NumericFormat], values: &[f32]) -> Vec<SweepRow> {
    formats
        .iter()
        .map(|&format| SweepRow {
            format,
            error: format.quantizer().measure(values),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_report_matches_hand_computation() {
        let values = [0.0f32, 0.5, -2.0, 4.0, 0.0];
        let r = DynamicRangeReport::measure(&values);
        assert_eq!(r.min_abs, 0.5);
        assert_eq!(r.max_abs, 4.0);
        assert_eq!(r.log2_dynamic_range, 3.0);
        assert_eq!(r.zero_fraction, 0.4);
        assert_eq!(r.n_values, 5);
    }

    #[test]
    fn non_finite_values_are_skipped() {
        let values = [1.0f32, f32::NAN, f32::INFINITY, 2.0];
        let r = DynamicRangeReport::measure(&values);
        assert_eq!(r.n_values, 2);
        assert_eq!(r.max_abs, 2.0);
    }

    #[test]
    fn all_zero_buffer_is_degenerate_but_valid() {
        let r = DynamicRangeReport::measure(&[0.0f32; 8]);
        assert_eq!(r.max_abs, 0.0);
        assert_eq!(r.log2_dynamic_range, 0.0);
        assert_eq!(r.zero_fraction, 1.0);
    }

    #[test]
    fn sweep_covers_all_requested_formats() {
        let values: Vec<f32> = (0..200).map(|i| (i as f32 - 100.0) * 0.03).collect();
        let suite = NumericFormat::ablation_suite();
        let rows = format_sweep(&suite, &values);
        assert_eq!(rows.len(), suite.len());
        // The f32 row is exact; the 8-bit rows are not.
        assert_eq!(rows[0].error.rmse, 0.0);
        assert!(rows.last().unwrap().error.rmse > 0.0);
    }

    #[test]
    fn display_is_informative() {
        let r = DynamicRangeReport::measure(&[0.25f32, 8.0]);
        let s = r.to_string();
        assert!(s.contains("bits of range"));
        assert!(s.contains("n=2"));
    }
}
