//! A [`Backend`] adapter that rounds kernel results through a chosen
//! [`NumericFormat`], modeling the FPGA-style "wide accumulator, narrow
//! storage" datapath at algorithm level: every kernel runs in full `f32`
//! on an inner backend, then the buffers a narrow memory would hold are
//! rounded before the next kernel sees them.

use bcpnn_backend::Backend;
use bcpnn_tensor::Matrix;

use crate::quantize::{NumericFormat, Quantizer};

/// Which buffers get rounded after each kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizePolicy {
    /// Round recomputed weights and biases (narrow weight memory).
    pub weights: bool,
    /// Round the probability traces (narrow trace memory).
    pub traces: bool,
    /// Round forward-pass supports and activations (narrow activation
    /// memory / inter-layer links).
    pub activations: bool,
}

impl QuantizePolicy {
    /// Round every buffer (the most aggressive, fully-narrow datapath).
    pub fn all() -> Self {
        Self {
            weights: true,
            traces: true,
            activations: true,
        }
    }

    /// Round only the weight memory (the usual first FPGA compromise).
    pub fn weights_only() -> Self {
        Self {
            weights: true,
            traces: false,
            activations: false,
        }
    }
}

impl Default for QuantizePolicy {
    fn default() -> Self {
        Self::all()
    }
}

/// A backend that delegates to `inner` and rounds results through a format.
pub struct LowPrecisionBackend {
    inner: Box<dyn Backend>,
    quantizer: Quantizer,
    policy: QuantizePolicy,
    name: &'static str,
}

impl LowPrecisionBackend {
    /// Wrap `inner`, rounding the buffers selected by `policy` through
    /// `format` after every kernel.
    pub fn new(inner: Box<dyn Backend>, format: NumericFormat, policy: QuantizePolicy) -> Self {
        // The format name is embedded in a leaked static string because the
        // Backend trait hands out `&'static str` names; backends are
        // created once per process, so the leak is bounded.
        let name: &'static str = Box::leak(format!("lowprec[{}]", format.name()).into_boxed_str());
        Self {
            inner,
            quantizer: format.quantizer(),
            policy,
            name,
        }
    }

    /// The format results are rounded through.
    pub fn format(&self) -> NumericFormat {
        self.quantizer.format()
    }

    /// The buffer-rounding policy.
    pub fn policy(&self) -> QuantizePolicy {
        self.policy
    }
}

impl Backend for LowPrecisionBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn linear_forward(
        &self,
        x: &Matrix<f32>,
        weights: &Matrix<f32>,
        bias: &[f32],
        out: &mut Matrix<f32>,
    ) {
        self.inner.linear_forward(x, weights, bias, out);
        if self.policy.activations {
            self.quantizer.quantize_matrix(out);
        }
    }

    fn grouped_softmax(&self, m: &mut Matrix<f32>, group: usize) {
        self.inner.grouped_softmax(m, group);
        if self.policy.activations {
            self.quantizer.quantize_matrix(m);
        }
    }

    fn update_traces(
        &self,
        x: &Matrix<f32>,
        act: &Matrix<f32>,
        rate: f32,
        pi: &mut [f32],
        pj: &mut [f32],
        pij: &mut Matrix<f32>,
    ) {
        self.inner.update_traces(x, act, rate, pi, pj, pij);
        if self.policy.traces {
            self.quantizer.quantize_slice(pi);
            self.quantizer.quantize_slice(pj);
            self.quantizer.quantize_matrix(pij);
        }
    }

    fn recompute_weights(
        &self,
        pi: &[f32],
        pj: &[f32],
        pij: &Matrix<f32>,
        eps: f32,
        bias_gain: f32,
        weights: &mut Matrix<f32>,
        bias: &mut [f32],
    ) {
        self.inner
            .recompute_weights(pi, pj, pij, eps, bias_gain, weights, bias);
        if self.policy.weights {
            self.quantizer.quantize_matrix(weights);
            self.quantizer.quantize_slice(bias);
        }
    }

    fn apply_mask(
        &self,
        weights: &Matrix<f32>,
        mask: &Matrix<f32>,
        n_mcu: usize,
        out: &mut Matrix<f32>,
    ) {
        self.inner.apply_mask(weights, mask, n_mcu, out);
        if self.policy.weights {
            self.quantizer.quantize_matrix(out);
        }
    }

    fn mutual_information(
        &self,
        pi: &[f32],
        pj: &[f32],
        pij: &Matrix<f32>,
        n_mcu: usize,
        out: &mut Matrix<f32>,
    ) {
        self.inner.mutual_information(pi, pj, pij, n_mcu, out);
        // MI scores only rank connections; they are never stored, so no
        // policy knob gates them. Round them with the traces, since they
        // are derived from trace memory reads.
        if self.policy.traces {
            self.quantizer.quantize_matrix(out);
        }
    }
}

impl std::fmt::Debug for LowPrecisionBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LowPrecisionBackend")
            .field("format", &self.quantizer.format())
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcpnn_backend::NaiveBackend;
    use bcpnn_tensor::MatrixRng;

    fn backend(format: NumericFormat) -> LowPrecisionBackend {
        LowPrecisionBackend::new(Box::new(NaiveBackend::new()), format, QuantizePolicy::all())
    }

    #[test]
    fn f32_format_matches_inner_exactly() {
        let lp = backend(NumericFormat::F32);
        let naive = NaiveBackend::new();
        let mut rng = MatrixRng::seed_from(1);
        let x: Matrix<f32> = rng.bernoulli(6, 10, 0.3);
        let w: Matrix<f32> = rng.normal(10, 8, 0.0, 0.5);
        let bias = vec![-0.5f32; 8];
        let mut a = Matrix::zeros(6, 8);
        let mut b = Matrix::zeros(6, 8);
        lp.linear_forward(&x, &w, &bias, &mut a);
        naive.linear_forward(&x, &w, &bias, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn results_are_representable_in_the_format() {
        let lp = backend(NumericFormat::Posit8);
        let mut rng = MatrixRng::seed_from(2);
        let x: Matrix<f32> = rng.bernoulli(4, 6, 0.4);
        let w: Matrix<f32> = rng.normal(6, 4, 0.0, 1.0);
        let bias = vec![0.0f32; 4];
        let mut out = Matrix::zeros(4, 4);
        lp.linear_forward(&x, &w, &bias, &mut out);
        let q = NumericFormat::Posit8.quantizer();
        for &v in out.as_slice() {
            assert_eq!(v, q.quantize_scalar(v), "output {v} not representable");
        }
    }

    #[test]
    fn weights_only_policy_leaves_activations_alone() {
        let lp = LowPrecisionBackend::new(
            Box::new(NaiveBackend::new()),
            NumericFormat::Posit8,
            QuantizePolicy::weights_only(),
        );
        let naive = NaiveBackend::new();
        let mut rng = MatrixRng::seed_from(3);
        let x: Matrix<f32> = rng.bernoulli(5, 7, 0.3);
        let w: Matrix<f32> = rng.normal(7, 6, 0.0, 0.4);
        let bias = vec![0.1f32; 6];
        let mut a = Matrix::zeros(5, 6);
        let mut b = Matrix::zeros(5, 6);
        lp.linear_forward(&x, &w, &bias, &mut a);
        naive.linear_forward(&x, &w, &bias, &mut b);
        assert_eq!(a, b, "activations must pass through untouched");
    }

    #[test]
    fn name_mentions_the_format() {
        assert!(backend(NumericFormat::Posit16)
            .name()
            .contains("posit<16,1>"));
    }
}
