//! bfloat16: IEEE-754 single precision truncated to 16 bits (1 sign, 8
//! exponent, 7 mantissa bits), rounded to nearest-even.
//!
//! bfloat16 keeps the full `f32` exponent range, so BCPNN's log-odds weights
//! (which span several orders of magnitude around zero) never overflow; what
//! it loses is mantissa precision (~2–3 decimal digits). It is the least
//! aggressive of the formats in this crate and the natural first step of the
//! precision ablation.

/// A bfloat16 value stored as its 16 raw bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Smallest positive normal value (`2^-126`).
    pub const MIN_POSITIVE: Bf16 = Bf16(0x0080);
    /// Largest finite value (`≈ 3.39e38`).
    pub const MAX: Bf16 = Bf16(0x7F7F);

    /// Convert from `f32` with round-to-nearest-even on the dropped 16
    /// mantissa bits. NaN maps to a quiet NaN, infinities are preserved.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        if value.is_nan() {
            // Quiet NaN with the payload truncated; force a mantissa bit so
            // the result stays a NaN after truncation.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest, ties to even, on the 16 dropped mantissa bits:
        // adding 0x7FFF plus the kept LSB rounds halfway cases towards the
        // even neighbour and everything else to the nearest value.
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7FFF + lsb);
        Bf16((rounded >> 16) as u16)
    }

    /// Convert back to `f32` (exact: every bfloat16 value is an `f32`).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Build from a raw bit pattern.
    pub fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }

    /// Round an `f32` through bfloat16 and back (the quantization operator
    /// used by [`crate::NumericFormat::Bf16`]).
    pub fn round_f32(value: f32) -> f32 {
        Self::from_f32(value).to_f32()
    }
}

impl From<f32> for Bf16 {
    fn from(v: f32) -> Self {
        Bf16::from_f32(v)
    }
}

impl From<Bf16> for f32 {
    fn from(v: Bf16) -> Self {
        v.to_f32()
    }
}

impl std::ops::Add for Bf16 {
    type Output = Bf16;
    fn add(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl std::ops::Sub for Bf16 {
    type Output = Bf16;
    fn sub(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl std::ops::Mul for Bf16 {
    type Output = Bf16;
    fn mul(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl std::ops::Div for Bf16 {
    type Output = Bf16;
    fn div(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl std::ops::Neg for Bf16 {
    type Output = Bf16;
    fn neg(self) -> Bf16 {
        Bf16::from_f32(-self.to_f32())
    }
}

impl std::fmt::Display for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_values_round_trip() {
        for &v in &[0.0f32, 1.0, -1.0, 2.0, 0.5, -0.25, 1.5, 3.0, 256.0] {
            assert_eq!(Bf16::round_f32(v), v, "{v} should be exactly representable");
        }
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
    }

    #[test]
    fn rounding_is_to_nearest() {
        // 1.0 + 2^-8 is exactly halfway between 1.0 and the next bf16
        // (1 + 2^-7); ties-to-even keeps 1.0.
        let halfway = 1.0 + 2f32.powi(-8);
        assert_eq!(Bf16::round_f32(halfway), 1.0);
        // Slightly above the halfway point rounds up.
        let above = 1.0 + 2f32.powi(-8) + 2f32.powi(-12);
        assert_eq!(Bf16::round_f32(above), 1.0 + 2f32.powi(-7));
    }

    #[test]
    fn relative_error_is_bounded() {
        // 8 mantissa bits (incl. hidden) -> relative error <= 2^-8.
        for i in 1..2000 {
            let v = i as f32 * 0.137;
            let r = Bf16::round_f32(v);
            assert!(
                ((r - v) / v).abs() <= 2f32.powi(-8),
                "value {v} rounded to {r}"
            );
        }
    }

    #[test]
    fn specials_are_preserved() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(
            Bf16::from_f32(f32::NEG_INFINITY).to_f32(),
            f32::NEG_INFINITY
        );
        assert_eq!(Bf16::from_f32(-0.0).to_f32().to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn arithmetic_goes_through_f32() {
        let a = Bf16::from_f32(1.5);
        let b = Bf16::from_f32(0.25);
        assert_eq!((a + b).to_f32(), 1.75);
        assert_eq!((a - b).to_f32(), 1.25);
        assert_eq!((a * b).to_f32(), 0.375);
        assert_eq!((a / b).to_f32(), 6.0);
        assert_eq!((-a).to_f32(), -1.5);
    }

    #[test]
    fn max_is_largest_finite() {
        assert!(Bf16::MAX.to_f32().is_finite());
        let next = f32::from_bits((Bf16::MAX.to_bits() as u32 + 1) << 16);
        assert!(next.is_infinite());
    }

    proptest! {
        #[test]
        fn roundtrip_is_idempotent(v in -1e30f32..1e30f32) {
            let once = Bf16::round_f32(v);
            let twice = Bf16::round_f32(once);
            prop_assert_eq!(once.to_bits(), twice.to_bits());
        }

        #[test]
        fn rounding_is_monotone(a in -1e6f32..1e6f32, b in -1e6f32..1e6f32) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(Bf16::round_f32(lo) <= Bf16::round_f32(hi));
        }

        #[test]
        fn relative_error_bound_holds(v in prop::num::f32::NORMAL.prop_filter("finite range", |x| x.abs() > 1e-30 && x.abs() < 1e30)) {
            let r = Bf16::round_f32(v);
            prop_assert!(((r - v) / v).abs() <= 2f32.powi(-8) + f32::EPSILON);
        }
    }
}
