//! Software posit emulation (any width up to 32 bits, any exponent-field
//! size).
//!
//! A posit `<n, es>` packs a sign bit, a run-length-encoded *regime*, up to
//! `es` exponent bits, and the remaining bits of fraction. The regime gives
//! posits tapered precision: values near 1 get the most fraction bits,
//! extreme magnitudes trade fraction for range. That taper is exactly why
//! FPGA BCPNN implementations consider them — probability traces cluster
//! near `eps..1` and log-odds weights near zero, both in the high-precision
//! band.
//!
//! The implementation works on the standard integer lattice: posit bit
//! patterns (as two's-complement integers) are monotone in the values they
//! represent, so round-to-nearest-even in value space is round-to-nearest-
//! even on the assembled bit string, which `PositFormat::encode` performs
//! directly with guard/sticky arithmetic on a 128-bit staging word.

/// A posit format: total width `n_bits` (2..=32) and exponent field size
/// `es` (0..=4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PositFormat {
    n_bits: u32,
    es: u32,
}

impl PositFormat {
    /// Create a `<n_bits, es>` format.
    ///
    /// # Panics
    /// Panics if `n_bits` is outside `2..=32` or `es > 4`.
    pub fn new(n_bits: u32, es: u32) -> Self {
        assert!(
            (2..=32).contains(&n_bits),
            "posit width must be in 2..=32, got {n_bits}"
        );
        assert!(es <= 4, "posit exponent field wider than 4 bits is unused");
        Self { n_bits, es }
    }

    /// The standard 16-bit format `posit<16,1>`.
    pub fn posit16() -> Self {
        Self::new(16, 1)
    }

    /// The standard 8-bit format `posit<8,0>`.
    pub fn posit8() -> Self {
        Self::new(8, 0)
    }

    /// The standard 32-bit format `posit<32,2>`.
    pub fn posit32() -> Self {
        Self::new(32, 2)
    }

    /// Total width in bits.
    pub fn n_bits(&self) -> u32 {
        self.n_bits
    }

    /// Exponent field size.
    pub fn es(&self) -> u32 {
        self.es
    }

    /// The NaR (not-a-real) bit pattern: sign bit set, everything else zero.
    pub fn nar_bits(&self) -> u32 {
        1u32 << (self.n_bits - 1)
    }

    fn mask(&self) -> u32 {
        if self.n_bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.n_bits) - 1
        }
    }

    /// Width of the value body (everything after the sign bit).
    fn body_bits(&self) -> u32 {
        self.n_bits - 1
    }

    /// Largest representable value (`useed^(n-2)`).
    pub fn max_value(&self) -> f64 {
        let scale = ((self.body_bits() as i64) - 1) << self.es;
        exp2(scale)
    }

    /// Smallest positive representable value (`useed^(2-n)`).
    pub fn min_positive(&self) -> f64 {
        let scale = (1 - (self.body_bits() as i64)) << self.es;
        exp2(scale)
    }

    /// Encode a real value into the nearest posit bit pattern
    /// (round-to-nearest-even; NaN and infinities map to NaR, values beyond
    /// the dynamic range saturate at maxpos/minpos).
    pub fn encode(&self, value: f64) -> u32 {
        if value == 0.0 {
            return 0;
        }
        if !value.is_finite() {
            return self.nar_bits();
        }
        let negative = value < 0.0;
        let a = value.abs();
        // Decompose |value| = (1 + frac52/2^52) * 2^expo (f64 is normal
        // here: even the subnormal f32 range is normal as f64).
        let bits = a.to_bits();
        let expo = ((bits >> 52) & 0x7FF) as i64 - 1023;
        let frac52 = bits & ((1u64 << 52) - 1);

        let p = self.body_bits() as i64;
        let k = expo >> self.es; // floor division
        let e = (expo - (k << self.es)) as u64;

        // Regime run: k >= 0 -> (k+1) ones then a zero; k < 0 -> (-k) zeros
        // then a one.
        let (regime_len, regime_val) = if k >= 0 {
            (k + 2, ((1u128 << (k + 1)) - 1) << 1) // 1..10
        } else {
            (-k + 1, 1u128) // 0..01
        };
        if regime_len > p {
            // Regime alone overflows the body: saturate.
            let body = if k >= 0 { self.mask() >> 1 } else { 1 };
            return self.apply_sign(body, negative);
        }

        // Stage the full bit string after the sign: regime, exponent,
        // 52 fraction bits. Total length always fits in 128 bits.
        let total_len = regime_len + self.es as i64 + 52;
        let staged: u128 =
            (regime_val << (self.es as i64 + 52)) | ((e as u128) << 52) | frac52 as u128;

        let drop = total_len - p;
        let mut body = if drop <= 0 {
            (staged << (-drop)) as u32
        } else {
            let kept = (staged >> drop) as u32;
            let remainder = staged & ((1u128 << drop) - 1);
            let half = 1u128 << (drop - 1);
            let round_up = remainder > half || (remainder == half && kept & 1 == 1);
            kept + u32::from(round_up)
        };
        // Rounding can carry past maxpos; clamp inside the body.
        let body_mask = (1u32 << p) - 1;
        if body > body_mask {
            body = body_mask;
        }
        self.apply_sign(body, negative)
    }

    fn apply_sign(&self, body: u32, negative: bool) -> u32 {
        if negative {
            self.mask() & body.wrapping_neg()
        } else {
            body
        }
    }

    /// Decode a posit bit pattern back to `f64` (NaR decodes to NaN).
    pub fn decode(&self, bits: u32) -> f64 {
        let bits = bits & self.mask();
        if bits == 0 {
            return 0.0;
        }
        if bits == self.nar_bits() {
            return f64::NAN;
        }
        let negative = bits & self.nar_bits() != 0;
        let body = if negative {
            (bits.wrapping_neg() & self.mask()) & (self.nar_bits() - 1)
        } else {
            bits
        };

        let p = self.body_bits();
        // Leading regime run.
        let first = (body >> (p - 1)) & 1;
        let mut run = 0u32;
        while run < p && (body >> (p - 1 - run)) & 1 == first {
            run += 1;
        }
        let k: i64 = if first == 1 {
            run as i64 - 1
        } else {
            -(run as i64)
        };
        let consumed = (run + 1).min(p); // regime + terminator
        let rem = p - consumed;

        let exp_avail = rem.min(self.es);
        let e = if exp_avail > 0 {
            let raw = (body >> (rem - exp_avail)) & ((1 << exp_avail) - 1);
            // Missing low exponent bits are zero.
            (raw << (self.es - exp_avail)) as i64
        } else {
            0
        };

        let frac_bits = rem - exp_avail;
        let frac = if frac_bits > 0 {
            let raw = body & ((1 << frac_bits) - 1);
            raw as f64 / (1u64 << frac_bits) as f64
        } else {
            0.0
        };

        let scale = (k << self.es) + e;
        let magnitude = (1.0 + frac) * exp2(scale);
        if negative {
            -magnitude
        } else {
            magnitude
        }
    }

    /// Round an `f32` through the format and back (the quantization operator
    /// used by [`crate::NumericFormat::Posit16`] and friends).
    pub fn round_f32(&self, value: f32) -> f32 {
        self.decode(self.encode(value as f64)) as f32
    }
}

impl std::fmt::Display for PositFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "posit<{},{}>", self.n_bits, self.es)
    }
}

/// `2^scale` for scales far beyond the `f64` normal range, by splitting into
/// two factors (`exp2` of an extreme posit scale like `-240 << 2` would
/// otherwise flush to zero prematurely in one step for 32-bit formats —
/// posit<32,2> spans `2^±480`, within f64 range, but the split keeps this
/// correct for any supported format).
fn exp2(scale: i64) -> f64 {
    let half = scale / 2;
    (half as f64).exp2() * ((scale - half) as f64).exp2()
}

/// A posit value: a bit pattern tagged with its format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posit {
    bits: u32,
    format: PositFormat,
}

impl Posit {
    /// Round `value` into the given format.
    pub fn from_f64(value: f64, format: PositFormat) -> Self {
        Self {
            bits: format.encode(value),
            format,
        }
    }

    /// Round an `f32` into the given format.
    pub fn from_f32(value: f32, format: PositFormat) -> Self {
        Self::from_f64(value as f64, format)
    }

    /// Interpret a raw bit pattern in the given format.
    pub fn from_bits(bits: u32, format: PositFormat) -> Self {
        Self {
            bits: bits & format.mask(),
            format,
        }
    }

    /// The represented value.
    pub fn to_f64(self) -> f64 {
        self.format.decode(self.bits)
    }

    /// The represented value as `f32`.
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u32 {
        self.bits
    }

    /// The format this value is encoded in.
    pub fn format(self) -> PositFormat {
        self.format
    }

    /// Whether this is the NaR (not-a-real) pattern.
    pub fn is_nar(self) -> bool {
        self.bits == self.format.nar_bits()
    }
}

impl std::fmt::Display for Posit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_nar() {
            write!(f, "NaR")
        } else {
            write!(f, "{}", self.to_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_and_nar_are_special_patterns() {
        let p16 = PositFormat::posit16();
        assert_eq!(p16.encode(0.0), 0);
        assert_eq!(p16.decode(0), 0.0);
        assert_eq!(p16.encode(f64::NAN), 0x8000);
        assert!(p16.decode(0x8000).is_nan());
        assert_eq!(p16.encode(f64::INFINITY), 0x8000);
    }

    #[test]
    fn powers_of_two_are_exact_in_posit16() {
        let p16 = PositFormat::posit16();
        for e in -8..=8 {
            let v = (e as f64).exp2();
            assert_eq!(p16.decode(p16.encode(v)), v, "2^{e}");
            assert_eq!(p16.decode(p16.encode(-v)), -v, "-2^{e}");
        }
    }

    #[test]
    fn known_posit16_encodings() {
        // Classic worked examples for posit<16,1>: useed = 4.
        let p16 = PositFormat::posit16();
        assert_eq!(p16.encode(1.0), 0x4000);
        assert_eq!(p16.encode(-1.0), 0xC000);
        // 1.0 + 1 ulp at this scale: regime 10, e=0, frac=1/2^12.
        assert_eq!(p16.decode(0x4001), 1.0 + 1.0 / 4096.0);
    }

    #[test]
    fn maxpos_and_minpos_roundtrip() {
        for format in [
            PositFormat::posit8(),
            PositFormat::posit16(),
            PositFormat::posit32(),
        ] {
            let maxpos = format.max_value();
            let minpos = format.min_positive();
            assert_eq!(format.decode(format.encode(maxpos)), maxpos, "{format}");
            assert_eq!(format.decode(format.encode(minpos)), minpos, "{format}");
            // Beyond the range saturates rather than overflowing.
            assert_eq!(format.decode(format.encode(maxpos * 8.0)), maxpos);
            let tiny = format.decode(format.encode(minpos / 8.0));
            assert_eq!(tiny, minpos, "{format} must saturate at minpos");
        }
    }

    #[test]
    fn posit8_is_coarse_but_ordered() {
        let p8 = PositFormat::posit8();
        let values: Vec<f64> = (0..=255u32)
            .filter(|&b| b != 0x80)
            .map(|b| p8.decode(b))
            .collect();
        // All distinct patterns decode to distinct values.
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        assert_eq!(sorted.len(), 255);
    }

    #[test]
    fn tapered_precision_is_best_near_one() {
        let p16 = PositFormat::posit16();
        let near_one = 1.2345678;
        let far = 1.2345678e6;
        let err_near = (p16.decode(p16.encode(near_one)) - near_one).abs() / near_one;
        let err_far = (p16.decode(p16.encode(far)) - far).abs() / far;
        assert!(err_near < err_far, "taper: {err_near} vs {err_far}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn roundtrip_is_idempotent(v in -1e6f64..1e6, n in 3u32..=32, es in 0u32..=2) {
            let format = PositFormat::new(n, es);
            let once = format.decode(format.encode(v));
            let twice = format.decode(format.encode(once));
            prop_assert!(once == twice || (once.is_nan() && twice.is_nan()));
        }

        #[test]
        fn encoding_is_monotone(a in -1e4f64..1e4, b in -1e4f64..1e4) {
            let p16 = PositFormat::posit16();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(p16.decode(p16.encode(lo)) <= p16.decode(p16.encode(hi)));
        }

        #[test]
        fn decode_encode_is_identity_on_patterns(bits in 0u32..65536) {
            let p16 = PositFormat::posit16();
            if bits != p16.nar_bits() {
                prop_assert_eq!(p16.encode(p16.decode(bits)), bits & 0xFFFF);
            }
        }

        #[test]
        fn posit16_relative_error_is_small_in_core_range(v in 0.001f64..1000.0) {
            let p16 = PositFormat::posit16();
            let r = p16.decode(p16.encode(v));
            // >= 8 fraction bits anywhere in this range (the worst case is
            // the |x| ~ 1000 end, where the regime takes 6 of 15 body bits).
            prop_assert!(((r - v) / v).abs() <= 2f64.powi(-9), "{} -> {}", v, r);
        }
    }
}
