//! # bcpnn-lowprec
//!
//! Reduced-precision numerics for BCPNN / StreamBrain-rs.
//!
//! The StreamBrain paper (§III-A) lists an FPGA backend whose purpose is
//! *architectural exploration* — in particular "reduced/different numerical
//! representation (e.g., Posits)". We do not have an FPGA, but the part of
//! that exploration that matters for the machine-learning result — *what
//! happens to BCPNN accuracy when the arithmetic carries fewer bits* — is a
//! pure numerics question, so this crate reproduces it in software:
//!
//! * [`Posit`] — software emulation of the posit number format (any width up
//!   to 32 bits, any exponent-field size), with the standard `posit<16,1>`
//!   and `posit<8,0>` configurations used by FPGA implementations.
//! * [`Bf16`] — bfloat16 (truncated IEEE-754 single precision with
//!   round-to-nearest-even), the format most ML accelerators provide.
//! * [`FixedFormat`] — signed Qm.n fixed-point with saturation, the classic
//!   DSP/FPGA representation.
//! * [`NumericFormat`] / [`Quantizer`] — a uniform "round this `f32` through
//!   format X" interface plus error statistics ([`QuantizationError`]).
//! * [`LowPrecisionBackend`] — a [`bcpnn_backend::Backend`] adapter that
//!   runs every BCPNN kernel in `f32` and then rounds the results through a
//!   chosen format, which is the standard way to model "compute units keep a
//!   wide accumulator, storage is narrow" FPGA datapaths at algorithm level.
//! * [`analysis`] — dynamic-range reports and format sweeps used by the
//!   precision-ablation benchmark.
//! * [`QuantizedPipeline`] — the *servable* counterpart: quantize a fitted
//!   `bcpnn_core::Pipeline`'s weights to int8 or bf16 once, then run
//!   allocation-free `predict_proba_into` inference with `f32` accumulation
//!   and narrow weight storage, persist as a stage-tagged artifact, and
//!   publish to the serving registry like any other model.
//!
//! ```
//! use bcpnn_lowprec::{NumericFormat, Quantizer};
//!
//! let q = NumericFormat::Posit16.quantizer();
//! let x = 0.123_f32;
//! let rounded = q.quantize_scalar(x);
//! assert!((rounded - x).abs() < 1e-3);
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod backend;
mod bf16;
mod fixed;
mod posit;
mod quantize;
mod quantized;

pub use backend::{LowPrecisionBackend, QuantizePolicy};
pub use bf16::Bf16;
pub use fixed::FixedFormat;
pub use posit::{Posit, PositFormat};
pub use quantize::{NumericFormat, QuantizationError, Quantizer};
pub use quantized::{QuantPrecision, QuantizedPipeline};
