//! The uniform "round this `f32` through format X" interface shared by the
//! precision ablation: [`NumericFormat`] names a representation,
//! [`Quantizer`] applies it to scalars / slices / matrices, and
//! [`QuantizationError`] summarises the damage.

use bcpnn_tensor::Matrix;

use crate::bf16::Bf16;
use crate::fixed::FixedFormat;
use crate::posit::PositFormat;

/// A storage number format the ablation can round through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumericFormat {
    /// IEEE-754 single precision (the identity; baseline).
    F32,
    /// bfloat16 (truncated f32, round-to-nearest-even).
    Bf16,
    /// Standard 16-bit posit (`posit<16,1>`).
    Posit16,
    /// Standard 8-bit posit (`posit<8,0>`).
    Posit8,
    /// An arbitrary posit format.
    Posit(PositFormat),
    /// Signed Qm.n fixed point with saturation.
    Fixed(FixedFormat),
}

impl NumericFormat {
    /// The formats swept by the precision-ablation benchmark, from least to
    /// most aggressive.
    pub fn ablation_suite() -> Vec<NumericFormat> {
        vec![
            NumericFormat::F32,
            NumericFormat::Bf16,
            NumericFormat::Posit16,
            NumericFormat::Fixed(FixedFormat::q4_11()),
            NumericFormat::Fixed(FixedFormat::q2_13()),
            NumericFormat::Posit8,
            NumericFormat::Fixed(FixedFormat::q4_3()),
        ]
    }

    /// Storage width in bits.
    pub fn storage_bits(&self) -> u32 {
        match self {
            NumericFormat::F32 => 32,
            NumericFormat::Bf16 => 16,
            NumericFormat::Posit16 => 16,
            NumericFormat::Posit8 => 8,
            NumericFormat::Posit(p) => p.n_bits(),
            NumericFormat::Fixed(q) => q.word_bits(),
        }
    }

    /// Build the quantization operator for this format.
    pub fn quantizer(&self) -> Quantizer {
        Quantizer { format: *self }
    }

    /// Short name used in tables (`f32`, `bf16`, `posit<16,1>`, `Q4.11`...).
    pub fn name(&self) -> String {
        match self {
            NumericFormat::F32 => "f32".to_string(),
            NumericFormat::Bf16 => "bf16".to_string(),
            NumericFormat::Posit16 => "posit<16,1>".to_string(),
            NumericFormat::Posit8 => "posit<8,0>".to_string(),
            NumericFormat::Posit(p) => p.to_string(),
            NumericFormat::Fixed(q) => q.to_string(),
        }
    }
}

impl std::fmt::Display for NumericFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Rounds `f32` values through a [`NumericFormat`].
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    format: NumericFormat,
}

impl Quantizer {
    /// The format this quantizer rounds through.
    pub fn format(&self) -> NumericFormat {
        self.format
    }

    /// Round one value.
    pub fn quantize_scalar(&self, value: f32) -> f32 {
        match self.format {
            NumericFormat::F32 => value,
            NumericFormat::Bf16 => Bf16::round_f32(value),
            NumericFormat::Posit16 => PositFormat::posit16().round_f32(value),
            NumericFormat::Posit8 => PositFormat::posit8().round_f32(value),
            NumericFormat::Posit(p) => p.round_f32(value),
            NumericFormat::Fixed(q) => q.round_f32(value),
        }
    }

    /// Round a slice in place.
    pub fn quantize_slice(&self, values: &mut [f32]) {
        if matches!(self.format, NumericFormat::F32) {
            return;
        }
        for v in values {
            *v = self.quantize_scalar(*v);
        }
    }

    /// Round a matrix in place.
    pub fn quantize_matrix(&self, m: &mut Matrix<f32>) {
        self.quantize_slice(m.as_mut_slice());
    }

    /// Round a copy of `values` and report the introduced error.
    pub fn measure(&self, values: &[f32]) -> QuantizationError {
        let mut max_abs = 0.0f64;
        let mut sum_abs = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut max_rel = 0.0f64;
        for &v in values {
            let q = self.quantize_scalar(v);
            let err = (q as f64 - v as f64).abs();
            max_abs = max_abs.max(err);
            sum_abs += err;
            sum_sq += err * err;
            if v != 0.0 {
                max_rel = max_rel.max(err / (v as f64).abs());
            }
        }
        let n = values.len().max(1) as f64;
        QuantizationError {
            max_abs_error: max_abs,
            mean_abs_error: sum_abs / n,
            rmse: (sum_sq / n).sqrt(),
            max_rel_error: max_rel,
            n_values: values.len(),
        }
    }
}

/// Error statistics of rounding a value set through a format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizationError {
    /// Largest absolute error.
    pub max_abs_error: f64,
    /// Mean absolute error.
    pub mean_abs_error: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Largest relative error over the non-zero values.
    pub max_rel_error: f64,
    /// Number of values measured.
    pub n_values: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_values() -> Vec<f32> {
        (0..500).map(|i| (i as f32 - 250.0) * 0.0137).collect()
    }

    #[test]
    fn f32_is_the_identity() {
        let q = NumericFormat::F32.quantizer();
        let values = probe_values();
        let err = q.measure(&values);
        assert_eq!(err.max_abs_error, 0.0);
        assert_eq!(err.rmse, 0.0);
        assert_eq!(err.n_values, 500);
    }

    #[test]
    fn posit16_error_is_small() {
        let q = NumericFormat::Posit16.quantizer();
        let x = 0.123_f32;
        let rounded = q.quantize_scalar(x);
        assert!((rounded - x).abs() < 1e-3);
    }

    #[test]
    fn wider_formats_have_smaller_error() {
        let values = probe_values();
        let e8 = NumericFormat::Posit8.quantizer().measure(&values);
        let e16 = NumericFormat::Posit16.quantizer().measure(&values);
        assert!(e16.rmse < e8.rmse);
        let ebf = NumericFormat::Bf16.quantizer().measure(&values);
        let ef32 = NumericFormat::F32.quantizer().measure(&values);
        assert!(ef32.rmse <= ebf.rmse);
    }

    #[test]
    fn quantize_matrix_rounds_every_entry() {
        let mut m = Matrix::from_fn(8, 8, |r, c| (r * 8 + c) as f32 * 0.017 - 0.5);
        let original = m.clone();
        NumericFormat::Fixed(FixedFormat::q4_3())
            .quantizer()
            .quantize_matrix(&mut m);
        let q = FixedFormat::q4_3();
        for (a, b) in original.as_slice().iter().zip(m.as_slice()) {
            assert_eq!(q.round_f32(*a), *b);
        }
    }

    #[test]
    fn ablation_suite_is_ordered_and_named() {
        let suite = NumericFormat::ablation_suite();
        assert_eq!(suite[0], NumericFormat::F32);
        assert!(suite.len() >= 5);
        for f in &suite {
            assert!(!f.name().is_empty());
            assert!(f.storage_bits() >= 8 && f.storage_bits() <= 32);
        }
    }
}
