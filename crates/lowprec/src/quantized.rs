//! A servable quantized inference artifact: [`QuantizedPipeline`].
//!
//! [`LowPrecisionBackend`](crate::LowPrecisionBackend) answers the
//! *numerics* question ("what happens to BCPNN accuracy with fewer bits")
//! by rounding every kernel result; this module answers the *systems*
//! question: take a fitted [`Pipeline`], quantize the tensors its
//! predictions actually depend on — the hidden layer's masked weights and
//! the readout head it predicts with — and produce a standalone
//! [`Predictor`] that
//!
//! * stores weights as int8 codes with a per-output-column scale
//!   ([`QuantPrecision::Int8`], 4x smaller) or as bfloat16 bit patterns
//!   ([`QuantPrecision::Bf16`], 2x smaller),
//! * implements the zero-allocation [`Predictor::predict_proba_into`]
//!   discipline through [`Workspace::inference_scratch`],
//! * persists as a stage-tagged artifact directory
//!   ([`QuantizedPipeline::save`] / [`QuantizedPipeline::load`]) reusing
//!   the `v3` stage encodings via [`bcpnn_core::save_stage`], and
//! * publishes to the serving `ModelRegistry` like any other model
//!   (`examples/serving.rs` does exactly that).
//!
//! Accumulation stays `f32` throughout — "wide accumulator, narrow
//! storage", the datapath every int8 inference engine models — so the only
//! precision lost is in the stored weights. `tests/quantized_accuracy.rs`
//! gates the resulting held-out accuracy delta in CI.

use std::fs;
use std::path::Path;

use bcpnn_core::model::{Predictor, Stage, Transformer};
use bcpnn_core::{load_stage, save_stage, CoreError, CoreResult, Pipeline, ReadoutKind, Workspace};
use bcpnn_tensor::simd::dispatch;
use bcpnn_tensor::{load_matrix, save_matrix, Matrix};

use crate::bf16::Bf16;

const MANIFEST: &str = "manifest.txt";
const MAGIC: &str = "bcpnn-quantized";
const VERSION: &str = "v1";

/// Storage precision of a [`QuantizedPipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantPrecision {
    /// Symmetric int8 codes with one `f32` scale per output column.
    Int8,
    /// bfloat16 (round-to-nearest-even) bit patterns.
    Bf16,
}

impl QuantPrecision {
    /// Stable persistence / display tag.
    pub fn name(self) -> &'static str {
        match self {
            Self::Int8 => "int8",
            Self::Bf16 => "bf16",
        }
    }

    /// Parse a persistence tag.
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "int8" | "i8" => Some(Self::Int8),
            "bf16" | "bfloat16" => Some(Self::Bf16),
            _ => None,
        }
    }
}

impl std::fmt::Display for QuantPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Quantized weight storage of one linear layer.
#[derive(Debug, Clone)]
enum QWeights {
    /// Row-major `n_in x n_out` int8 codes; `w_ij ≈ codes[i][j] · scales[j]`.
    Int8 { codes: Vec<i8>, scales: Vec<f32> },
    /// Row-major `n_in x n_out` bfloat16 bit patterns.
    Bf16 { codes: Vec<u16> },
}

/// One quantized linear layer: narrow weights, `f32` bias and accumulator.
#[derive(Debug, Clone)]
struct QuantizedLinear {
    n_in: usize,
    n_out: usize,
    weights: QWeights,
    bias: Vec<f32>,
}

impl QuantizedLinear {
    /// Quantize a dense `f32` layer (`n_in x n_out` weights + bias).
    fn quantize(weights: &Matrix<f32>, bias: &[f32], precision: QuantPrecision) -> Self {
        let (n_in, n_out) = weights.shape();
        let weights = match precision {
            QuantPrecision::Int8 => {
                // Symmetric per-output-column scaling: each column's dynamic
                // range is set by the unit it feeds, so sharing one scale
                // per column loses far less than one scale per tensor.
                let mut scales = vec![0.0f32; n_out];
                for i in 0..n_in {
                    for (j, &w) in weights.row(i).iter().enumerate() {
                        scales[j] = scales[j].max(w.abs());
                    }
                }
                for s in scales.iter_mut() {
                    *s = if *s > 0.0 { *s / 127.0 } else { 1.0 };
                }
                let mut codes = Vec::with_capacity(n_in * n_out);
                for i in 0..n_in {
                    for (j, &w) in weights.row(i).iter().enumerate() {
                        codes.push((w / scales[j]).round().clamp(-127.0, 127.0) as i8);
                    }
                }
                QWeights::Int8 { codes, scales }
            }
            QuantPrecision::Bf16 => {
                let codes = weights
                    .as_slice()
                    .iter()
                    .map(|&w| Bf16::from_f32(w).to_bits())
                    .collect();
                QWeights::Bf16 { codes }
            }
        };
        Self {
            n_in,
            n_out,
            weights,
            bias: bias.to_vec(),
        }
    }

    /// `out = x · dequant(weights) + bias`, accumulated in `f32`. Batch
    /// major with zero skipping, like the naive backend: the `f32` output
    /// row stays cache-hot across one sample's active inputs, and the
    /// traffic that *is* re-streamed per sample — the weight rows — is
    /// where the narrow codes pay (a 2–4x smaller footprint than `f32`
    /// weights). `out` is resized to `batch x n_out`.
    fn forward_into(&self, x: &Matrix<f32>, out: &mut Matrix<f32>) {
        assert_eq!(x.cols(), self.n_in, "quantized forward: input width");
        let batch = x.rows();
        out.reset(batch, self.n_out);
        // Resolve the SIMD tier once per call; the decode-and-accumulate
        // kernels are bit-identical across tiers (i8/bf16 decoding is exact
        // and multiplies stay separate from adds), so quantized serving
        // output does not depend on which tier the host CPU lands on.
        let tier = dispatch::active_tier();
        match &self.weights {
            QWeights::Int8 { codes, scales } => {
                for b in 0..batch {
                    let x_row = x.row(b);
                    let out_row = out.row_mut(b);
                    // Accumulate raw code dot-products, then apply the
                    // column scales and bias in one pass: one multiply per
                    // output element instead of one per weight.
                    for (i, &xv) in x_row.iter().enumerate() {
                        if xv == 0.0 {
                            continue;
                        }
                        let code_row = &codes[i * self.n_out..(i + 1) * self.n_out];
                        if xv == 1.0 {
                            // Binary one-hot encodings dominate serving
                            // input: the multiply disappears entirely.
                            dispatch::accumulate_i8_with(tier, out_row, code_row);
                        } else {
                            dispatch::axpy_i8_with(tier, out_row, xv, code_row);
                        }
                    }
                    for ((o, &s), &bias) in out_row.iter_mut().zip(scales).zip(&self.bias) {
                        *o = s * *o + bias;
                    }
                }
            }
            QWeights::Bf16 { codes } => {
                for b in 0..batch {
                    let x_row = x.row(b);
                    let out_row = out.row_mut(b);
                    out_row.copy_from_slice(&self.bias);
                    for (i, &xv) in x_row.iter().enumerate() {
                        if xv == 0.0 {
                            continue;
                        }
                        let code_row = &codes[i * self.n_out..(i + 1) * self.n_out];
                        dispatch::axpy_bf16_with(tier, out_row, xv, code_row);
                    }
                }
            }
        }
    }

    /// The codes as an exactly-roundtrippable `f32` text matrix (int8 and
    /// u16 values are all exactly representable in `f32`).
    fn codes_matrix(&self) -> Matrix<f32> {
        let data: Vec<f32> = match &self.weights {
            QWeights::Int8 { codes, .. } => codes.iter().map(|&c| f32::from(c)).collect(),
            QWeights::Bf16 { codes } => codes.iter().map(|&c| f32::from(c)).collect(),
        };
        Matrix::from_vec(self.n_in, self.n_out, data)
    }
}

/// A quantized, servable clone of a fitted [`Pipeline`]: the same fitted
/// stage chain, the hidden layer and predicting readout head with narrow
/// weights, `f32` accumulation, and the zero-allocation `predict_proba_into`
/// discipline.
///
/// Construct with [`QuantizedPipeline::quantize`], persist with
/// [`QuantizedPipeline::save`] / [`QuantizedPipeline::load`], serve by
/// publishing to a `ModelRegistry` — it is a [`Predictor`] like any other.
#[derive(Debug, Clone)]
pub struct QuantizedPipeline {
    stages: Vec<Stage>,
    hidden: QuantizedLinear,
    n_mcu: usize,
    readout: QuantizedLinear,
    precision: QuantPrecision,
    input_width: usize,
}

impl QuantizedPipeline {
    /// Quantize a fitted pipeline's inference tensors at the given storage
    /// precision.
    ///
    /// Captures exactly what predictions depend on: the stage chain
    /// (cloned, still `f32` — stage state is tiny), the hidden layer's
    /// *masked* weights and bias, and the readout head the network's
    /// [`ReadoutKind`] predicts with (hybrid networks predict with the SGD
    /// head, so that is the head captured).
    pub fn quantize(pipeline: &Pipeline, precision: QuantPrecision) -> CoreResult<Self> {
        let network = pipeline.network();
        let hidden_layer = network.hidden();
        let (ro_weights, ro_bias) = match network.readout_kind() {
            ReadoutKind::Bcpnn => {
                let head = network.bcpnn_readout().ok_or_else(|| {
                    CoreError::InvalidParams("network has no BCPNN readout".into())
                })?;
                (head.weights(), head.bias())
            }
            ReadoutKind::Sgd | ReadoutKind::Hybrid => {
                let head = network
                    .sgd_readout()
                    .ok_or_else(|| CoreError::InvalidParams("network has no SGD readout".into()))?;
                (head.weights(), head.bias())
            }
        };
        Ok(Self {
            stages: pipeline.stages().to_vec(),
            hidden: QuantizedLinear::quantize(
                hidden_layer.masked_weights(),
                hidden_layer.bias(),
                precision,
            ),
            n_mcu: hidden_layer.params().n_mcu,
            readout: QuantizedLinear::quantize(ro_weights, ro_bias, precision),
            precision,
            input_width: pipeline.input_width(),
        })
    }

    /// The storage precision.
    pub fn precision(&self) -> QuantPrecision {
        self.precision
    }

    /// The fitted transformer stages, in application order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The quantized hidden-layer forward alone: `out = encoded ·
    /// dequant(W_hidden) + bias`, resized to `batch x n_units`, `f32`
    /// accumulation, no softmax. This is the narrow-weight kernel the
    /// artifact exists for — exposed so benchmarks and numerics analyses
    /// can measure it against the same `f32` tensors
    /// (`network.hidden().masked_weights()`) without the
    /// softmax/readout cost that is identical across precisions.
    pub fn hidden_forward_into(&self, encoded: &Matrix<f32>, out: &mut Matrix<f32>) {
        self.hidden.forward_into(encoded, out);
    }

    /// Bytes of quantized weight storage (codes only), versus what the same
    /// tensors occupy in `f32` — the compression headline.
    pub fn weight_bytes(&self) -> (usize, usize) {
        let elems = self.hidden.n_in * self.hidden.n_out + self.readout.n_in * self.readout.n_out;
        let narrow = match self.precision {
            QuantPrecision::Int8 => elems,
            QuantPrecision::Bf16 => elems * 2,
        };
        (narrow, elems * 4)
    }

    /// Class probabilities for a batch of raw feature rows, written into
    /// `out` with all scratch drawn from `ws` — allocation-free once the
    /// workspace has seen the batch shape.
    pub fn predict_proba_into(
        &self,
        x: &Matrix<f32>,
        ws: &mut Workspace,
        out: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        if x.cols() != self.input_width {
            return Err(CoreError::DataMismatch(format!(
                "quantized pipeline expects {} columns, rows have {}",
                self.input_width,
                x.cols()
            )));
        }
        let (enc_a, enc_b, hidden) = ws.inference_scratch();
        // Stage chain, ping-ponged exactly like Pipeline::predict_proba_into.
        let encoded: &Matrix<f32> = if self.stages.is_empty() {
            x
        } else {
            self.stages[0].transform_into(x, enc_a)?;
            for stage in &self.stages[1..] {
                stage.transform_into(enc_a, enc_b)?;
                std::mem::swap(enc_a, enc_b);
            }
            enc_a
        };
        self.hidden.forward_into(encoded, hidden);
        grouped_softmax_rows(hidden, self.n_mcu);
        self.readout.forward_into(hidden, out);
        grouped_softmax_rows(out, out.cols().max(1));
        Ok(())
    }

    /// Save as a self-describing quantized artifact directory: a manifest,
    /// the code/scale/bias tensors as text matrices, and the fitted stages
    /// under the same stage encodings as `v3` model directories.
    pub fn save<P: AsRef<Path>>(&self, dir: P) -> CoreResult<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let mut manifest = String::new();
        manifest.push_str(&format!("{MAGIC} {VERSION}\n"));
        manifest.push_str(&format!("precision {}\n", self.precision.name()));
        manifest.push_str(&format!("n_mcu {}\n", self.n_mcu));
        manifest.push_str(&format!("input_width {}\n", self.input_width));
        manifest.push_str(&format!("stages {}\n", self.stages.len()));
        for (i, stage) in self.stages.iter().enumerate() {
            manifest.push_str(&format!("stage{i} {}\n", stage.kind()));
        }
        fs::write(dir.join(MANIFEST), manifest)?;
        for (name, layer) in [("hidden", &self.hidden), ("readout", &self.readout)] {
            save_matrix(&layer.codes_matrix(), dir.join(format!("{name}_codes.txt")))?;
            save_matrix(
                &Matrix::from_vec(1, layer.bias.len(), layer.bias.clone()),
                dir.join(format!("{name}_bias.txt")),
            )?;
            if let QWeights::Int8 { scales, .. } = &layer.weights {
                save_matrix(
                    &Matrix::from_vec(1, scales.len(), scales.clone()),
                    dir.join(format!("{name}_scales.txt")),
                )?;
            }
        }
        for (i, stage) in self.stages.iter().enumerate() {
            save_stage(stage, &dir.join(format!("stage{i}.txt")))?;
        }
        Ok(())
    }

    /// Load an artifact saved by [`QuantizedPipeline::save`]. The roundtrip
    /// is exact: codes, scales and biases reload bit-for-bit (small
    /// integers and `f32`s survive the text format losslessly), so a loaded
    /// artifact predicts identically to the one saved.
    pub fn load<P: AsRef<Path>>(dir: P) -> CoreResult<Self> {
        let dir = dir.as_ref();
        let manifest = fs::read_to_string(dir.join(MANIFEST))?;
        let mut lines = manifest.lines();
        let header = lines
            .next()
            .ok_or_else(|| CoreError::Format("empty quantized manifest".into()))?;
        if header.trim() != format!("{MAGIC} {VERSION}") {
            return Err(CoreError::Format(format!(
                "bad quantized manifest header: {header:?}"
            )));
        }
        let mut kv = std::collections::HashMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once(' ')
                .ok_or_else(|| CoreError::Format(format!("bad manifest line: {line:?}")))?;
            kv.insert(k.to_string(), v.to_string());
        }
        let get = |key: &str| -> CoreResult<&String> {
            kv.get(key)
                .ok_or_else(|| CoreError::Format(format!("manifest missing key {key:?}")))
        };
        let precision = QuantPrecision::parse(get("precision")?)
            .ok_or_else(|| CoreError::Format(format!("unknown precision {:?}", kv["precision"])))?;
        let n_mcu: usize = get("n_mcu")?
            .parse()
            .map_err(|_| CoreError::Format("bad n_mcu".into()))?;
        let input_width: usize = get("input_width")?
            .parse()
            .map_err(|_| CoreError::Format("bad input_width".into()))?;
        let n_stages: usize = get("stages")?
            .parse()
            .map_err(|_| CoreError::Format("bad stage count".into()))?;
        let mut stages = Vec::with_capacity(n_stages);
        for i in 0..n_stages {
            let kind = get(&format!("stage{i}"))?;
            stages.push(load_stage(kind, &dir.join(format!("stage{i}.txt")))?);
        }
        let load_layer = |name: &str| -> CoreResult<QuantizedLinear> {
            let codes_f32 = load_matrix::<f32, _>(dir.join(format!("{name}_codes.txt")))?;
            let bias = load_matrix::<f32, _>(dir.join(format!("{name}_bias.txt")))?.into_vec();
            let (n_in, n_out) = codes_f32.shape();
            if bias.len() != n_out {
                return Err(CoreError::Format(format!(
                    "{name}: bias length {} does not match {n_out} outputs",
                    bias.len()
                )));
            }
            let weights = match precision {
                QuantPrecision::Int8 => {
                    let scales =
                        load_matrix::<f32, _>(dir.join(format!("{name}_scales.txt")))?.into_vec();
                    if scales.len() != n_out {
                        return Err(CoreError::Format(format!(
                            "{name}: scale length {} does not match {n_out} outputs",
                            scales.len()
                        )));
                    }
                    let codes = codes_f32
                        .as_slice()
                        .iter()
                        .map(|&v| {
                            if v.round() == v && (-127.0..=127.0).contains(&v) {
                                Ok(v as i8)
                            } else {
                                Err(CoreError::Format(format!(
                                    "{name}: {v} is not an int8 code"
                                )))
                            }
                        })
                        .collect::<CoreResult<Vec<i8>>>()?;
                    QWeights::Int8 { codes, scales }
                }
                QuantPrecision::Bf16 => {
                    let codes = codes_f32
                        .as_slice()
                        .iter()
                        .map(|&v| {
                            if v.round() == v && (0.0..=f32::from(u16::MAX)).contains(&v) {
                                Ok(v as u16)
                            } else {
                                Err(CoreError::Format(format!(
                                    "{name}: {v} is not a bf16 bit pattern"
                                )))
                            }
                        })
                        .collect::<CoreResult<Vec<u16>>>()?;
                    QWeights::Bf16 { codes }
                }
            };
            Ok(QuantizedLinear {
                n_in,
                n_out,
                weights,
                bias,
            })
        };
        let hidden = load_layer("hidden")?;
        let readout = load_layer("readout")?;
        if hidden.n_out != readout.n_in {
            return Err(CoreError::Format(format!(
                "hidden produces {} units but readout expects {}",
                hidden.n_out, readout.n_in
            )));
        }
        Ok(Self {
            stages,
            hidden,
            n_mcu,
            readout,
            precision,
            input_width,
        })
    }
}

impl Predictor for QuantizedPipeline {
    fn predict_proba(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(0, 0);
        QuantizedPipeline::predict_proba_into(self, x, &mut ws, &mut out)?;
        Ok(out)
    }

    fn predict_proba_into(
        &self,
        x: &Matrix<f32>,
        ws: &mut Workspace,
        out: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        QuantizedPipeline::predict_proba_into(self, x, ws, out)
    }

    fn predict(&self, x: &Matrix<f32>) -> CoreResult<Vec<usize>> {
        let proba = self.predict_proba(x)?;
        let mut out = Vec::new();
        dispatch::row_argmax_into(&proba, &mut out);
        Ok(out)
    }

    fn n_inputs(&self) -> usize {
        self.input_width
    }

    fn n_classes(&self) -> usize {
        self.readout.n_out
    }
}

/// Sequential softmax over every contiguous `group`-column segment of every
/// row — the hidden HCU competition and (with `group == cols`) the final
/// class softmax. Kept single-threaded so the quantized predictor's cost is
/// a clean per-core number; the per-segment kernel is the shared SIMD
/// dispatch softmax (vectorized `exp_approx` on the lane/avx2 tiers).
fn grouped_softmax_rows(m: &mut Matrix<f32>, group: usize) {
    if m.cols() == 0 {
        return;
    }
    dispatch::softmax_groups_into(m, group);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcpnn_backend::BackendKind;
    use bcpnn_core::{Network, TrainingParams};
    use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};

    fn fitted_pipeline(seed: u64) -> (Pipeline, bcpnn_data::Dataset) {
        let data = generate(&SyntheticHiggsConfig {
            n_samples: 400,
            seed,
            ..Default::default()
        });
        let (pipeline, _) = Pipeline::fit(
            &data,
            10,
            Network::builder()
                .hidden(2, 6, 0.4)
                .classes(2)
                .readout(bcpnn_core::ReadoutKind::Hybrid)
                .backend(BackendKind::Naive)
                .seed(seed),
            TrainingParams {
                unsupervised_epochs: 1,
                supervised_epochs: 2,
                batch_size: 64,
                ..Default::default()
            },
        )
        .unwrap();
        (pipeline, data)
    }

    #[test]
    fn quantized_predictions_track_f32_closely() {
        let (pipeline, data) = fitted_pipeline(1);
        let f32_proba = pipeline.predict_proba(&data.features).unwrap();
        for precision in [QuantPrecision::Int8, QuantPrecision::Bf16] {
            let q = QuantizedPipeline::quantize(&pipeline, precision).unwrap();
            assert_eq!(q.n_inputs(), 28);
            assert_eq!(q.n_classes(), 2);
            let q_proba = q.predict_proba(&data.features).unwrap();
            assert_eq!(q_proba.shape(), f32_proba.shape());
            // Rows remain probability distributions.
            for r in 0..q_proba.rows() {
                let s: f32 = q_proba.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-4, "{precision}: row {r} sums to {s}");
            }
            let drift = q_proba.max_abs_diff(&f32_proba);
            assert!(
                drift < 0.05,
                "{precision}: max probability drift {drift} too large"
            );
        }
    }

    #[test]
    fn predict_proba_into_is_identical_and_allocation_stable() {
        let (pipeline, data) = fitted_pipeline(2);
        let q = QuantizedPipeline::quantize(&pipeline, QuantPrecision::Int8).unwrap();
        let mut ws = Workspace::new();
        let mut out = Matrix::filled(1, 1, f32::NAN);
        q.predict_proba_into(&data.features, &mut ws, &mut out)
            .unwrap();
        assert_eq!(out, q.predict_proba(&data.features).unwrap());
        let warmed = ws.allocated_elems();
        q.predict_proba_into(&data.features, &mut ws, &mut out)
            .unwrap();
        assert_eq!(ws.allocated_elems(), warmed, "workspace must stay warm");
        // Wrong width is a typed error.
        assert!(matches!(
            q.predict_proba_into(&Matrix::zeros(2, 3), &mut ws, &mut out),
            Err(CoreError::DataMismatch(_))
        ));
    }

    #[test]
    fn save_load_roundtrip_is_bit_exact() {
        let (pipeline, data) = fitted_pipeline(3);
        for precision in [QuantPrecision::Int8, QuantPrecision::Bf16] {
            let q = QuantizedPipeline::quantize(&pipeline, precision).unwrap();
            let dir = std::env::temp_dir().join(format!(
                "bcpnn_quantized_roundtrip_{}_{}",
                precision,
                std::process::id()
            ));
            let _ = fs::remove_dir_all(&dir);
            q.save(&dir).unwrap();
            let loaded = QuantizedPipeline::load(&dir).unwrap();
            assert_eq!(loaded.precision(), precision);
            assert_eq!(loaded.stages().len(), q.stages().len());
            assert_eq!(
                loaded.predict_proba(&data.features).unwrap(),
                q.predict_proba(&data.features).unwrap(),
                "{precision}: loaded artifact must predict identically"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn quantize_errors_and_introspection() {
        let (pipeline, _) = fitted_pipeline(4);
        let q = QuantizedPipeline::quantize(&pipeline, QuantPrecision::Int8).unwrap();
        let (narrow, wide) = q.weight_bytes();
        assert_eq!(wide, narrow * 4, "int8 stores 4x fewer weight bytes");
        let qb = QuantizedPipeline::quantize(&pipeline, QuantPrecision::Bf16).unwrap();
        assert_eq!(qb.weight_bytes().1, qb.weight_bytes().0 * 2);
        assert_eq!(
            QuantPrecision::parse("bfloat16"),
            Some(QuantPrecision::Bf16)
        );
        assert_eq!(QuantPrecision::parse("fp64"), None);
        // Loading a directory that is not a quantized artifact fails typed.
        let missing = std::env::temp_dir().join("bcpnn_quantized_missing");
        let _ = fs::remove_dir_all(&missing);
        assert!(QuantizedPipeline::load(&missing).is_err());
    }

    #[test]
    fn predict_matches_argmax_of_probabilities() {
        let (pipeline, data) = fitted_pipeline(5);
        let q = QuantizedPipeline::quantize(&pipeline, QuantPrecision::Bf16).unwrap();
        let proba = q.predict_proba(&data.features).unwrap();
        assert_eq!(
            q.predict(&data.features).unwrap(),
            bcpnn_tensor::reduce::row_argmax(&proba)
        );
    }
}
