//! Signed Qm.n fixed-point formats with saturation.
//!
//! Fixed point is the traditional FPGA/DSP number representation: a signed
//! integer interpreted with an implicit binary point, so addition is exact
//! and multiplication needs only an integer multiplier. The cost is a hard
//! dynamic range: values outside `[-2^m, 2^m)` saturate, and values smaller
//! than `2^-n` round to zero. For BCPNN this matters because the log-odds
//! weights are small (|w| ≲ 4 on the Higgs encoding) but the probability
//! traces go down to `eps`, so the fraction width `n` is the critical knob —
//! exactly the trade-off an FPGA port would have to explore.

/// A signed Qm.n fixed-point format (`m` integer bits, `n` fraction bits,
/// plus one sign bit; total width `1 + m + n` must be ≤ 32).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedFormat {
    int_bits: u32,
    frac_bits: u32,
}

impl FixedFormat {
    /// Create a Qm.n format.
    ///
    /// # Panics
    /// Panics if the total width (sign + `int_bits` + `frac_bits`) exceeds
    /// 32 bits or if both field widths are zero.
    pub fn new(int_bits: u32, frac_bits: u32) -> Self {
        assert!(
            1 + int_bits + frac_bits <= 32,
            "FixedFormat: 1 + {int_bits} + {frac_bits} exceeds 32 bits"
        );
        assert!(
            int_bits + frac_bits > 0,
            "FixedFormat: at least one value bit is required"
        );
        Self {
            int_bits,
            frac_bits,
        }
    }

    /// The Q4.11 format (16-bit word): range ±16, resolution ≈ 4.9e-4.
    /// A good match for BCPNN weights/biases.
    pub fn q4_11() -> Self {
        Self::new(4, 11)
    }

    /// The Q2.13 format (16-bit word): range ±4, resolution ≈ 1.2e-4.
    pub fn q2_13() -> Self {
        Self::new(2, 13)
    }

    /// The Q4.3 format (8-bit word): range ±16, resolution 0.125 — an
    /// aggressively small format that visibly degrades accuracy.
    pub fn q4_3() -> Self {
        Self::new(4, 3)
    }

    /// Number of integer bits (excluding the sign bit).
    pub fn int_bits(&self) -> u32 {
        self.int_bits
    }

    /// Number of fraction bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Total word width in bits (sign + integer + fraction).
    pub fn word_bits(&self) -> u32 {
        1 + self.int_bits + self.frac_bits
    }

    /// Smallest positive representable step (`2^-n`).
    pub fn resolution(&self) -> f32 {
        (2f32).powi(-(self.frac_bits as i32))
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f32 {
        let raw_max = (1i64 << (self.int_bits + self.frac_bits)) - 1;
        raw_max as f32 * self.resolution()
    }

    /// Most negative representable value.
    pub fn min_value(&self) -> f32 {
        let raw_min = -(1i64 << (self.int_bits + self.frac_bits));
        raw_min as f32 * self.resolution()
    }

    /// Convert an `f32` to the raw integer representation, rounding to
    /// nearest (ties away from zero) and saturating at the format limits.
    /// NaN maps to zero.
    pub fn to_raw(&self, value: f32) -> i32 {
        if value.is_nan() {
            return 0;
        }
        let scaled = (value as f64) * (1u64 << self.frac_bits) as f64;
        let raw_max = (1i64 << (self.int_bits + self.frac_bits)) - 1;
        let raw_min = -(1i64 << (self.int_bits + self.frac_bits));
        let rounded = scaled.round();
        let clamped = if rounded >= raw_max as f64 {
            raw_max
        } else if rounded <= raw_min as f64 {
            raw_min
        } else {
            rounded as i64
        };
        clamped as i32
    }

    /// Convert a raw integer representation back to `f32`.
    pub fn from_raw(&self, raw: i32) -> f32 {
        raw as f32 * self.resolution()
    }

    /// Round an `f32` through the format and back (the quantization
    /// operator used by [`crate::NumericFormat::Fixed`]).
    pub fn round_f32(&self, value: f32) -> f32 {
        self.from_raw(self.to_raw(value))
    }
}

impl std::fmt::Display for FixedFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}.{}", self.int_bits, self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn representable_values_are_exact() {
        let q = FixedFormat::q4_11();
        for &v in &[0.0f32, 1.0, -1.0, 0.5, -0.25, 15.0, -16.0, 2.5] {
            assert_eq!(q.round_f32(v), v, "{v} should be exact in {q}");
        }
    }

    #[test]
    fn saturation_at_the_limits() {
        let q = FixedFormat::q2_13();
        assert_eq!(q.round_f32(100.0), q.max_value());
        assert_eq!(q.round_f32(-100.0), q.min_value());
        assert!((q.max_value() - 4.0).abs() < 2.0 * q.resolution());
        assert_eq!(q.min_value(), -4.0);
    }

    #[test]
    fn resolution_matches_frac_bits() {
        assert_eq!(FixedFormat::new(4, 3).resolution(), 0.125);
        assert_eq!(FixedFormat::new(2, 13).resolution(), 2f32.powi(-13));
        assert_eq!(FixedFormat::q4_11().word_bits(), 16);
        assert_eq!(FixedFormat::q4_3().word_bits(), 8);
    }

    #[test]
    fn rounding_error_is_at_most_half_a_step() {
        let q = FixedFormat::q4_11();
        for i in 0..1000 {
            let v = (i as f32) * 0.01711 - 8.0;
            let r = q.round_f32(v);
            assert!(
                (r - v).abs() <= q.resolution() / 2.0 + 1e-9,
                "value {v} rounded to {r}"
            );
        }
    }

    #[test]
    fn nan_maps_to_zero() {
        assert_eq!(FixedFormat::q4_11().round_f32(f32::NAN), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds 32 bits")]
    fn width_is_checked() {
        let _ = FixedFormat::new(20, 20);
    }

    #[test]
    fn display_shows_q_notation() {
        assert_eq!(FixedFormat::q4_11().to_string(), "Q4.11");
    }

    proptest! {
        #[test]
        fn roundtrip_is_idempotent(v in -50.0f32..50.0, m in 1u32..8, n in 1u32..20) {
            let q = FixedFormat::new(m, n);
            let once = q.round_f32(v);
            prop_assert_eq!(once, q.round_f32(once));
        }

        #[test]
        fn rounding_is_monotone(a in -40.0f32..40.0, b in -40.0f32..40.0) {
            let q = FixedFormat::q4_11();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(q.round_f32(lo) <= q.round_f32(hi));
        }

        #[test]
        fn result_is_always_in_range(v in prop::num::f32::ANY.prop_filter("finite", |x| x.is_finite())) {
            let q = FixedFormat::q2_13();
            let r = q.round_f32(v);
            prop_assert!(r >= q.min_value() && r <= q.max_value());
        }
    }
}
