//! Property-based checks locking in the calibration stage's contract:
//! whatever parameters a fit produces, applying a [`Calibration`] must
//! (1) never reorder a row's class ranking — abstention and cascade
//! thresholds compare calibrated confidences, so a reorder would change
//! *answers*, not just confidence — (2) keep every entry in `[0, 1]` and
//! the row summing to 1 within `1e-6`, and (3) round-trip persistence
//! bit-exactly, because a published artifact must serve the same numbers
//! on every node that loads it.

use std::sync::atomic::{AtomicU64, Ordering};

use bcpnn_core::calibration::{Calibration, IsotonicMap};
use bcpnn_core::{load_calibration, save_calibration};
use bcpnn_tensor::Matrix;
use proptest::prelude::*;

/// A probability row: 2–8 strictly positive entries normalised to sum 1.
fn proba_row_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(1e-3f32..1.0, 2..9).prop_map(|raw| {
        let sum: f32 = raw.iter().sum();
        raw.into_iter().map(|v| v / sum).collect()
    })
}

/// Any valid calibration: a temperature in the fit's own search range, or
/// an isotonic map built from sorted random breakpoints.
fn calibration_strategy() -> impl Strategy<Value = Calibration> {
    (
        prop::bool::ANY,
        0.05f32..20.0,
        prop::collection::vec(0.0f32..1.0, 2..7),
        prop::collection::vec(0.0f32..1.0, 6),
    )
        .prop_map(|(isotonic, temperature, raw_xs, raw_ys)| {
            if !isotonic {
                return Calibration::Temperature(temperature);
            }
            // Strictly increasing xs (sort + dedup by spacing), paired
            // with nondecreasing ys of the same length.
            let mut xs: Vec<f32> = raw_xs;
            xs.sort_by(f32::total_cmp);
            xs.dedup_by(|b, a| *b - *a < 1e-4);
            if xs.len() < 2 {
                xs = vec![0.0, 1.0];
            }
            let mut ys: Vec<f32> = raw_ys[..xs.len().min(raw_ys.len())].to_vec();
            while ys.len() < xs.len() {
                ys.push(*ys.last().unwrap_or(&0.5));
            }
            ys.sort_by(f32::total_cmp);
            Calibration::Isotonic(
                IsotonicMap::new(xs, ys).expect("constructed to satisfy the invariants"),
            )
        })
}

/// Labels and an overconfident probability matrix to fit against.
fn fit_inputs_strategy() -> impl Strategy<Value = (Matrix<f32>, Vec<usize>)> {
    (
        prop::collection::vec(proba_row_strategy(), 8..24),
        prop::collection::vec(0usize..2, 24),
    )
        .prop_map(|(rows, raw_labels)| {
            // Truncate every row to the first row's width so the matrix is
            // rectangular, then renormalise.
            let width = rows[0].len().min(rows.iter().map(Vec::len).min().unwrap());
            let n_rows = rows.len();
            let mut data = Vec::with_capacity(n_rows * width);
            for row in &rows {
                let sum: f32 = row[..width].iter().sum();
                data.extend(row[..width].iter().map(|v| v / sum));
            }
            let labels = raw_labels[..n_rows]
                .iter()
                .map(|&l| l.min(width - 1))
                .collect();
            (Matrix::from_vec(n_rows, width, data), labels)
        })
}

fn unique_state_path() -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "bcpnn-calibration-prop-{}-{}.mat",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Calibration is monotone per row: it may collapse a strict order
    /// into a tie (isotonic pooling does), but it never *inverts* one, so
    /// the argmax — the served answer — survives recalibration.
    #[test]
    fn calibration_never_reorders_a_row(
        row in proba_row_strategy(),
        cal in calibration_strategy(),
    ) {
        let mut calibrated = row.clone();
        cal.apply_row(&mut calibrated);
        for i in 0..row.len() {
            for j in 0..row.len() {
                if row[i] > row[j] {
                    prop_assert!(
                        calibrated[i] >= calibrated[j],
                        "{cal:?} inverted p[{i}]={} > p[{j}]={} into {} < {}",
                        row[i], row[j], calibrated[i], calibrated[j]
                    );
                }
            }
        }
    }

    /// Calibrated rows are still probability rows: every entry in
    /// `[0, 1]`, the row summing to 1 within `1e-6`.
    #[test]
    fn calibrated_rows_stay_normalised(
        row in proba_row_strategy(),
        cal in calibration_strategy(),
    ) {
        let mut calibrated = row;
        cal.apply_row(&mut calibrated);
        for &v in &calibrated {
            prop_assert!((0.0..=1.0).contains(&v), "entry {v} escaped [0, 1]");
        }
        let sum: f32 = calibrated.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "row sums to {sum}");
    }

    /// A *fitted* stage — both families, fitted on arbitrary held-out
    /// splits — survives save → load with every parameter bit-identical,
    /// so replicas loading the same artifact serve the same confidences.
    #[test]
    fn fitted_calibrations_round_trip_bit_exactly(
        (proba, labels) in fit_inputs_strategy(),
    ) {
        let fits = [
            Calibration::fit_temperature(&proba, &labels).expect("valid inputs"),
            Calibration::fit_isotonic(&proba, &labels).expect("valid inputs"),
        ];
        for fitted in fits {
            let path = unique_state_path();
            save_calibration(&fitted, &path).expect("state file writes");
            let loaded = load_calibration(fitted.kind(), &path).expect("state file reads");
            let _ = std::fs::remove_file(&path);
            match (&fitted, &loaded) {
                (Calibration::Temperature(a), Calibration::Temperature(b)) => {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "temperature drifted");
                }
                (Calibration::Isotonic(a), Calibration::Isotonic(b)) => {
                    prop_assert_eq!(a.xs().len(), b.xs().len());
                    for (x, y) in a.xs().iter().zip(b.xs()) {
                        prop_assert_eq!(x.to_bits(), y.to_bits(), "breakpoint drifted");
                    }
                    for (x, y) in a.ys().iter().zip(b.ys()) {
                        prop_assert_eq!(x.to_bits(), y.to_bits(), "value drifted");
                    }
                }
                (a, b) => prop_assert!(false, "kind changed across persistence: {a:?} vs {b:?}"),
            }
        }
    }
}
