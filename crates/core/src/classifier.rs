//! The supervised BCPNN classification layer.
//!
//! BCPNN only uses supervision in its output layer (§II-C): the hidden
//! activations are associated with the class labels through exactly the
//! same probability-trace rule as the hidden layer, with the class one-hot
//! vector playing the role of the (clamped) output activation. Prediction
//! is the softmax over the class supports.

use std::sync::Arc;

use bcpnn_backend::Backend;
use bcpnn_tensor::Matrix;

use crate::error::{CoreError, CoreResult};
use crate::traces::ProbabilityTraces;
use crate::workspace::Workspace;

/// Configuration of the BCPNN classification layer.
#[derive(Debug, Clone, PartialEq)]
pub struct BcpnnClassifierParams {
    /// Trace EMA rate.
    pub trace_rate: f32,
    /// Probability floor.
    pub eps: f32,
    /// Bias gain.
    pub bias_gain: f32,
}

impl Default for BcpnnClassifierParams {
    fn default() -> Self {
        Self {
            trace_rate: 0.05,
            eps: 1e-6,
            bias_gain: 1.0,
        }
    }
}

/// Supervised associative BCPNN readout (one output HCU whose MCUs are the
/// classes).
///
/// `Clone` copies the full trace state, so a clone trains independently of
/// the original (used by the online-learning shadow trainer).
#[derive(Clone)]
pub struct BcpnnClassifier {
    n_inputs: usize,
    n_classes: usize,
    params: BcpnnClassifierParams,
    backend: Arc<dyn Backend>,
    traces: ProbabilityTraces,
    weights: Matrix<f32>,
    bias: Vec<f32>,
}

impl std::fmt::Debug for BcpnnClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BcpnnClassifier")
            .field("n_inputs", &self.n_inputs)
            .field("n_classes", &self.n_classes)
            .field("backend", &self.backend.name())
            .finish()
    }
}

impl BcpnnClassifier {
    /// Create a classifier mapping `n_inputs` hidden activations to
    /// `n_classes` classes.
    pub fn new(
        n_inputs: usize,
        n_classes: usize,
        params: BcpnnClassifierParams,
        backend: Arc<dyn Backend>,
    ) -> CoreResult<Self> {
        if n_inputs == 0 || n_classes < 2 {
            return Err(CoreError::InvalidParams(
                "classifier needs at least one input and two classes".into(),
            ));
        }
        if !(params.trace_rate > 0.0 && params.trace_rate <= 1.0) {
            return Err(CoreError::InvalidParams(
                "trace_rate must be in (0,1]".into(),
            ));
        }
        // The readout is one hypercolumn whose minicolumns are the classes,
        // so the group size equals n_classes. Inputs are hidden activations
        // with typical magnitude ~1/n_mcu; a neutral prior of the mean
        // hidden activity is fine and washes out quickly.
        let traces = ProbabilityTraces::new(n_inputs, n_classes, n_classes, 0.1);
        let mut weights = Matrix::zeros(n_inputs, n_classes);
        let mut bias = vec![0.0f32; n_classes];
        traces.weights_and_bias(
            backend.as_ref(),
            params.eps,
            params.bias_gain,
            &mut weights,
            &mut bias,
        );
        Ok(Self {
            n_inputs,
            n_classes,
            params,
            backend,
            traces,
            weights,
            bias,
        })
    }

    /// Number of input (hidden) dimensions.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The probability traces (read-only, for diagnostics and persistence).
    pub fn traces(&self) -> &ProbabilityTraces {
        &self.traces
    }

    /// The log-odds readout weights (`n_inputs x n_classes`, read-only) —
    /// the tensor a quantizer captures to reproduce this head.
    pub fn weights(&self) -> &Matrix<f32> {
        &self.weights
    }

    /// The per-class bias added before the class softmax (read-only).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    fn check_input(&self, hidden: &Matrix<f32>) -> CoreResult<()> {
        if hidden.cols() != self.n_inputs {
            return Err(CoreError::DataMismatch(format!(
                "hidden activations have {} columns, classifier expects {}",
                hidden.cols(),
                self.n_inputs
            )));
        }
        Ok(())
    }

    /// Encode integer labels as a one-hot matrix.
    ///
    /// # Errors
    /// Fails if a label is out of range.
    pub fn one_hot(&self, labels: &[usize]) -> CoreResult<Matrix<f32>> {
        let mut t = Matrix::zeros(0, 0);
        self.one_hot_into(labels, &mut t)?;
        Ok(t)
    }

    /// Encode integer labels as a one-hot matrix written into a
    /// caller-provided buffer (reset to `labels.len() x n_classes`).
    ///
    /// # Errors
    /// Fails if a label is out of range.
    pub fn one_hot_into(&self, labels: &[usize], out: &mut Matrix<f32>) -> CoreResult<()> {
        out.reset(labels.len(), self.n_classes);
        for (r, &l) in labels.iter().enumerate() {
            if l >= self.n_classes {
                return Err(CoreError::DataMismatch(format!(
                    "label {l} out of range for {} classes",
                    self.n_classes
                )));
            }
            out.set(r, l, 1.0);
        }
        Ok(())
    }

    /// Train on one labeled batch of hidden activations.
    ///
    /// Allocating convenience over
    /// [`BcpnnClassifier::train_batch_with`].
    pub fn train_batch(&mut self, hidden: &Matrix<f32>, labels: &[usize]) -> CoreResult<()> {
        let mut targets = Matrix::zeros(0, 0);
        self.train_batch_core(hidden, labels, &mut targets)
    }

    /// Train on one labeled batch, drawing the one-hot target scratch from
    /// `ws` — zero allocations once the workspace has seen the batch shape.
    pub fn train_batch_with(
        &mut self,
        hidden: &Matrix<f32>,
        labels: &[usize],
        ws: &mut Workspace,
    ) -> CoreResult<()> {
        let mut targets = std::mem::take(&mut ws.targets);
        let result = self.train_batch_core(hidden, labels, &mut targets);
        ws.targets = targets;
        result
    }

    /// The one authoritative supervised trace update both spellings route
    /// through.
    fn train_batch_core(
        &mut self,
        hidden: &Matrix<f32>,
        labels: &[usize],
        targets: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        self.check_input(hidden)?;
        if hidden.rows() != labels.len() {
            return Err(CoreError::DataMismatch(
                "batch size and label count differ".into(),
            ));
        }
        self.one_hot_into(labels, targets)?;
        self.traces.update(
            self.backend.as_ref(),
            hidden,
            targets,
            self.params.trace_rate,
        );
        self.refresh_weights();
        Ok(())
    }

    /// Recompute weights and bias from the traces.
    pub fn refresh_weights(&mut self) {
        self.traces.weights_and_bias(
            self.backend.as_ref(),
            self.params.eps,
            self.params.bias_gain,
            &mut self.weights,
            &mut self.bias,
        );
    }

    /// Class-probability predictions (`batch x n_classes`, rows sum to 1).
    ///
    /// Allocating convenience over
    /// [`BcpnnClassifier::predict_proba_into`].
    pub fn predict_proba(&self, hidden: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        let mut out = Matrix::zeros(0, 0);
        self.predict_proba_into(hidden, &mut out)?;
        Ok(out)
    }

    /// Class-probability predictions written into a caller-provided buffer
    /// (reset to `batch x n_classes` and fully overwritten).
    pub fn predict_proba_into(
        &self,
        hidden: &Matrix<f32>,
        out: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        self.check_input(hidden)?;
        out.reset(hidden.rows(), self.n_classes);
        self.backend
            .linear_forward(hidden, &self.weights, &self.bias, out);
        self.backend.grouped_softmax(out, self.n_classes);
        Ok(())
    }

    /// Hard class predictions.
    pub fn predict(&self, hidden: &Matrix<f32>) -> CoreResult<Vec<usize>> {
        let proba = self.predict_proba(hidden)?;
        Ok(bcpnn_tensor::simd::dispatch::row_argmax(&proba))
    }

    /// Restore persisted traces (used by the serializer).
    pub(crate) fn restore_traces(&mut self, traces: ProbabilityTraces) -> CoreResult<()> {
        if traces.n_inputs() != self.n_inputs || traces.n_units() != self.n_classes {
            return Err(CoreError::DataMismatch(
                "persisted classifier traces have the wrong shape".into(),
            ));
        }
        self.traces = traces;
        self.refresh_weights();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcpnn_backend::BackendKind;
    use bcpnn_tensor::MatrixRng;

    fn classifier(n_inputs: usize, n_classes: usize) -> BcpnnClassifier {
        BcpnnClassifier::new(
            n_inputs,
            n_classes,
            BcpnnClassifierParams {
                trace_rate: 0.2,
                ..Default::default()
            },
            BackendKind::Parallel.create(),
        )
        .unwrap()
    }

    /// Linearly separable toy problem in "hidden activation" space: class 0
    /// activates the first half of the units, class 1 the second half.
    fn toy(rng: &mut MatrixRng, n: usize, d: usize) -> (Matrix<f32>, Vec<usize>) {
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let x = Matrix::from_fn(n, d, |r, c| {
            let cls = labels[r];
            let hot = if cls == 0 { c < d / 2 } else { c >= d / 2 };
            let base = if hot { 0.8 } else { 0.1 };
            (base + rng.uniform_scalar::<f64>(-0.05, 0.05)).max(0.0) as f32
        });
        (x, labels)
    }

    #[test]
    fn constructor_validates_arguments() {
        assert!(BcpnnClassifier::new(
            0,
            2,
            BcpnnClassifierParams::default(),
            BackendKind::Naive.create()
        )
        .is_err());
        assert!(BcpnnClassifier::new(
            4,
            1,
            BcpnnClassifierParams::default(),
            BackendKind::Naive.create()
        )
        .is_err());
    }

    #[test]
    fn one_hot_encoding() {
        let c = classifier(4, 3);
        let t = c.one_hot(&[0, 2, 1]).unwrap();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 2), 1.0);
        assert_eq!(t.get(2, 1), 1.0);
        assert_eq!(bcpnn_tensor::reduce::sum(&t), 3.0);
        assert!(c.one_hot(&[3]).is_err());
    }

    #[test]
    fn untrained_classifier_predicts_valid_distributions() {
        let c = classifier(6, 2);
        let mut rng = MatrixRng::seed_from(1);
        let (x, _) = toy(&mut rng, 5, 6);
        let p = c.predict_proba(&x).unwrap();
        for r in 0..5 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn learns_a_separable_problem() {
        let mut c = classifier(10, 2);
        let mut rng = MatrixRng::seed_from(2);
        for _ in 0..60 {
            let (x, y) = toy(&mut rng, 32, 10);
            c.train_batch(&x, &y).unwrap();
        }
        let (xt, yt) = toy(&mut rng, 200, 10);
        let preds = c.predict(&xt).unwrap();
        let correct = preds.iter().zip(yt.iter()).filter(|(a, b)| a == b).count();
        let acc = correct as f64 / yt.len() as f64;
        assert!(acc > 0.95, "separable accuracy only {acc}");
    }

    #[test]
    fn rejects_mismatched_batches() {
        let mut c = classifier(4, 2);
        let x = Matrix::zeros(3, 5);
        assert!(c.train_batch(&x, &[0, 1, 0]).is_err());
        let x = Matrix::zeros(3, 4);
        assert!(c.train_batch(&x, &[0, 1]).is_err());
        assert!(c.predict_proba(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn multiclass_support() {
        let mut c = classifier(12, 4);
        let mut rng = MatrixRng::seed_from(3);
        // Four clusters, each activating a distinct quarter of the inputs.
        for _ in 0..80 {
            let labels: Vec<usize> = (0..32).map(|i| i % 4).collect();
            let x = Matrix::from_fn(32, 12, |r, col| {
                let cls = labels[r];
                let hot = col / 3 == cls;
                let base: f64 = if hot { 0.8 } else { 0.05 };
                (base + rng.uniform_scalar::<f64>(-0.03, 0.03)) as f32
            });
            c.train_batch(&x, &labels).unwrap();
        }
        let labels: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let x = Matrix::from_fn(
            100,
            12,
            |r, col| {
                if col / 3 == labels[r] {
                    0.8
                } else {
                    0.05
                }
            },
        );
        let preds = c.predict(&x).unwrap();
        let acc = preds
            .iter()
            .zip(labels.iter())
            .filter(|(a, b)| a == b)
            .count() as f64
            / 100.0;
        assert!(acc > 0.95, "multiclass accuracy only {acc}");
    }
}
