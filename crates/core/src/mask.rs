//! Receptive-field masks: the sparse connectivity structure each hypercolumn
//! learns through structural plasticity.
//!
//! Each HCU owns a binary mask over the input variables. The *density*
//! hyperparameter fixes how many connections may be active (Fig. 4 sweeps
//! it); structural plasticity decides *which* connections those are
//! (Fig. 1/2/5 visualise the result).

use bcpnn_tensor::{Matrix, MatrixRng};

/// Binary receptive-field masks for all hypercolumns of a layer
/// (`n_hcu x n_inputs`, entries 0.0 or 1.0).
#[derive(Debug, Clone, PartialEq)]
pub struct ReceptiveFieldMask {
    mask: Matrix<f32>,
    active_per_hcu: usize,
}

impl ReceptiveFieldMask {
    /// Create a mask where every HCU is connected to a uniformly random
    /// subset of `active_per_hcu` inputs (each HCU draws its own subset, so
    /// different HCUs start looking at different parts of the input, as in
    /// Fig. 1).
    pub fn random(
        n_hcu: usize,
        n_inputs: usize,
        active_per_hcu: usize,
        rng: &mut MatrixRng,
    ) -> Self {
        assert!(
            n_hcu > 0 && n_inputs > 0,
            "mask dimensions must be positive"
        );
        let active_per_hcu = active_per_hcu.clamp(1, n_inputs);
        let mut mask = Matrix::zeros(n_hcu, n_inputs);
        for h in 0..n_hcu {
            for idx in rng.choose_indices(n_inputs, active_per_hcu) {
                mask.set(h, idx, 1.0);
            }
        }
        Self {
            mask,
            active_per_hcu,
        }
    }

    /// A fully connected mask (receptive field 100 %).
    pub fn full(n_hcu: usize, n_inputs: usize) -> Self {
        Self {
            mask: Matrix::filled(n_hcu, n_inputs, 1.0),
            active_per_hcu: n_inputs,
        }
    }

    /// Build from an explicit 0/1 matrix (used when loading a saved model).
    ///
    /// # Panics
    /// Panics if the matrix contains values other than 0 and 1 or if rows
    /// have differing numbers of active entries.
    pub fn from_matrix(mask: Matrix<f32>) -> Self {
        assert!(mask.rows() > 0 && mask.cols() > 0, "mask must be non-empty");
        let mut counts = Vec::with_capacity(mask.rows());
        for h in 0..mask.rows() {
            let mut c = 0usize;
            for &v in mask.row(h) {
                assert!(v == 0.0 || v == 1.0, "mask entries must be 0 or 1, got {v}");
                if v == 1.0 {
                    c += 1;
                }
            }
            assert!(c > 0, "HCU {h} has no active connections");
            counts.push(c);
        }
        let first = counts[0];
        assert!(
            counts.iter().all(|&c| c == first),
            "all HCUs must have the same number of active connections"
        );
        Self {
            mask,
            active_per_hcu: first,
        }
    }

    /// Number of hypercolumns.
    pub fn n_hcu(&self) -> usize {
        self.mask.rows()
    }

    /// Number of input variables.
    pub fn n_inputs(&self) -> usize {
        self.mask.cols()
    }

    /// Number of active connections per HCU.
    pub fn active_per_hcu(&self) -> usize {
        self.active_per_hcu
    }

    /// Effective density (active connections / inputs).
    pub fn density(&self) -> f64 {
        self.active_per_hcu as f64 / self.n_inputs() as f64
    }

    /// The raw 0/1 matrix (`n_hcu x n_inputs`), as consumed by
    /// [`bcpnn_backend::Backend::apply_mask`].
    pub fn as_matrix(&self) -> &Matrix<f32> {
        &self.mask
    }

    /// Whether input `i` is connected to HCU `h`.
    pub fn is_active(&self, h: usize, i: usize) -> bool {
        self.mask.get(h, i) == 1.0
    }

    /// Indices of the active connections of HCU `h` (ascending).
    pub fn active_indices(&self, h: usize) -> Vec<usize> {
        self.mask
            .row(h)
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == 1.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the silent connections of HCU `h` (ascending).
    pub fn silent_indices(&self, h: usize) -> Vec<usize> {
        self.mask
            .row(h)
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Swap one connection of HCU `h`: silence `deactivate` and activate
    /// `activate`. The per-HCU active count is preserved.
    ///
    /// # Panics
    /// Panics if `deactivate` is not currently active or `activate` is not
    /// currently silent.
    pub fn swap(&mut self, h: usize, deactivate: usize, activate: usize) {
        assert!(
            self.is_active(h, deactivate),
            "connection {deactivate} of HCU {h} is not active"
        );
        assert!(
            !self.is_active(h, activate),
            "connection {activate} of HCU {h} is already active"
        );
        self.mask.set(h, deactivate, 0.0);
        self.mask.set(h, activate, 1.0);
    }

    /// Fraction of inputs covered by at least one HCU (how much of the data
    /// stream the network can see at all). Used in the Fig. 3 analysis of
    /// why extra HCUs help little once coverage saturates.
    pub fn input_coverage(&self) -> f64 {
        let n = self.n_inputs();
        let mut covered = 0usize;
        for i in 0..n {
            if (0..self.n_hcu()).any(|h| self.is_active(h, i)) {
                covered += 1;
            }
        }
        covered as f64 / n as f64
    }

    /// Overlap between two HCUs' receptive fields (Jaccard index).
    pub fn overlap(&self, h1: usize, h2: usize) -> f64 {
        let a = self.active_indices(h1);
        let b = self.active_indices(h2);
        let bset: std::collections::HashSet<usize> = b.iter().copied().collect();
        let inter = a.iter().filter(|i| bset.contains(i)).count();
        let union = a.len() + b.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_mask_has_exact_density() {
        let mut rng = MatrixRng::seed_from(1);
        let m = ReceptiveFieldMask::random(4, 100, 30, &mut rng);
        assert_eq!(m.n_hcu(), 4);
        assert_eq!(m.n_inputs(), 100);
        assert_eq!(m.active_per_hcu(), 30);
        assert!((m.density() - 0.3).abs() < 1e-12);
        for h in 0..4 {
            assert_eq!(m.active_indices(h).len(), 30);
            assert_eq!(m.silent_indices(h).len(), 70);
        }
    }

    #[test]
    fn different_hcus_get_different_fields() {
        let mut rng = MatrixRng::seed_from(2);
        let m = ReceptiveFieldMask::random(2, 200, 50, &mut rng);
        assert!(m.overlap(0, 1) < 0.9, "random fields should not coincide");
        assert_eq!(m.overlap(0, 0), 1.0);
    }

    #[test]
    fn oversized_request_is_clamped() {
        let mut rng = MatrixRng::seed_from(3);
        let m = ReceptiveFieldMask::random(1, 10, 500, &mut rng);
        assert_eq!(m.active_per_hcu(), 10);
        assert_eq!(m.density(), 1.0);
    }

    #[test]
    fn full_mask_covers_everything() {
        let m = ReceptiveFieldMask::full(3, 17);
        assert_eq!(m.density(), 1.0);
        assert_eq!(m.input_coverage(), 1.0);
        assert!(m.is_active(2, 16));
    }

    #[test]
    fn swap_preserves_active_count() {
        let mut rng = MatrixRng::seed_from(4);
        let mut m = ReceptiveFieldMask::random(1, 20, 5, &mut rng);
        let act = m.active_indices(0);
        let sil = m.silent_indices(0);
        m.swap(0, act[0], sil[0]);
        assert_eq!(m.active_indices(0).len(), 5);
        assert!(!m.is_active(0, act[0]));
        assert!(m.is_active(0, sil[0]));
    }

    #[test]
    #[should_panic(expected = "is not active")]
    fn swap_rejects_silencing_a_silent_connection() {
        let mut rng = MatrixRng::seed_from(5);
        let mut m = ReceptiveFieldMask::random(1, 10, 3, &mut rng);
        let sil = m.silent_indices(0);
        m.swap(0, sil[0], sil[1]);
    }

    #[test]
    fn coverage_grows_with_hcus() {
        let mut rng = MatrixRng::seed_from(6);
        let one = ReceptiveFieldMask::random(1, 100, 30, &mut rng);
        let four = ReceptiveFieldMask::random(4, 100, 30, &mut rng);
        assert!(four.input_coverage() > one.input_coverage());
    }

    #[test]
    fn from_matrix_roundtrip() {
        let mut rng = MatrixRng::seed_from(7);
        let m = ReceptiveFieldMask::random(3, 40, 10, &mut rng);
        let rebuilt = ReceptiveFieldMask::from_matrix(m.as_matrix().clone());
        assert_eq!(rebuilt, m);
    }

    #[test]
    #[should_panic(expected = "must be 0 or 1")]
    fn from_matrix_rejects_non_binary() {
        let bad = Matrix::filled(1, 4, 0.5f32);
        let _ = ReceptiveFieldMask::from_matrix(bad);
    }
}
