//! Probability traces: the sufficient statistics of the BCPNN learning rule.
//!
//! A BCPNN layer does not accumulate gradients; it accumulates estimates of
//! the marginal probabilities `p_i` (pre-synaptic activity), `p_j`
//! (post-synaptic activity) and the joint `p_ij`, each as an exponential
//! moving average of batch statistics. Weights and biases are deterministic
//! functions of these traces (`w_ij = ln(p_ij / p_i p_j)`,
//! `b_j = ln p_j`), which is what makes learning local and
//! communication-free (§II of the paper).

use bcpnn_backend::Backend;
use bcpnn_tensor::Matrix;

/// The probability traces of one layer (`N` pre-synaptic inputs, `U`
/// post-synaptic units).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbabilityTraces {
    /// `P(x_i = 1)` estimates, length `N`.
    pub pi: Vec<f32>,
    /// `P(unit j active)` estimates, length `U`.
    pub pj: Vec<f32>,
    /// Joint `P(x_i = 1, unit j active)` estimates, `N x U`.
    pub pij: Matrix<f32>,
}

impl ProbabilityTraces {
    /// Create traces initialised to an uninformative prior:
    /// `p_i = prior_input`, `p_j = 1 / units_per_group`, and
    /// `p_ij = p_i · p_j` (independence), so initial weights are ~0.
    pub fn new(n_inputs: usize, n_units: usize, units_per_group: usize, prior_input: f32) -> Self {
        assert!(n_units > 0 && units_per_group > 0, "units must be positive");
        assert_eq!(
            n_units % units_per_group,
            0,
            "units {n_units} must be a multiple of the group size {units_per_group}"
        );
        let pj_init = 1.0 / units_per_group as f32;
        let pi = vec![prior_input; n_inputs];
        let pj = vec![pj_init; n_units];
        let pij = Matrix::from_fn(n_inputs, n_units, |i, _| pi[i] * pj_init);
        Self { pi, pj, pij }
    }

    /// Number of pre-synaptic inputs.
    pub fn n_inputs(&self) -> usize {
        self.pi.len()
    }

    /// Number of post-synaptic units.
    pub fn n_units(&self) -> usize {
        self.pj.len()
    }

    /// Fold one batch of (input, activation) pairs into the traces.
    pub fn update(
        &mut self,
        backend: &dyn Backend,
        x: &Matrix<f32>,
        activations: &Matrix<f32>,
        rate: f32,
    ) {
        backend.update_traces(
            x,
            activations,
            rate,
            &mut self.pi,
            &mut self.pj,
            &mut self.pij,
        );
    }

    /// Recompute the weight matrix and bias vector implied by the traces.
    pub fn weights_and_bias(
        &self,
        backend: &dyn Backend,
        eps: f32,
        bias_gain: f32,
        weights: &mut Matrix<f32>,
        bias: &mut [f32],
    ) {
        backend.recompute_weights(&self.pi, &self.pj, &self.pij, eps, bias_gain, weights, bias);
    }

    /// Check the probabilistic invariants the traces must satisfy
    /// (everything in `[0, 1]`, joints bounded by marginals up to `tol`).
    /// Returns a description of the first violation, if any.
    pub fn check_invariants(&self, tol: f32) -> Result<(), String> {
        for (i, &p) in self.pi.iter().enumerate() {
            if !(0.0 - tol..=1.0 + tol).contains(&p) || !p.is_finite() {
                return Err(format!("pi[{i}] = {p} outside [0,1]"));
            }
        }
        for (j, &p) in self.pj.iter().enumerate() {
            if !(0.0 - tol..=1.0 + tol).contains(&p) || !p.is_finite() {
                return Err(format!("pj[{j}] = {p} outside [0,1]"));
            }
        }
        for i in 0..self.pij.rows() {
            for j in 0..self.pij.cols() {
                let pij = self.pij.get(i, j);
                if !pij.is_finite() || pij < -tol {
                    return Err(format!("pij[{i},{j}] = {pij} invalid"));
                }
                if pij > self.pi[i] + tol || pij > self.pj[j] + tol {
                    return Err(format!(
                        "pij[{i},{j}] = {pij} exceeds its marginals ({}, {})",
                        self.pi[i], self.pj[j]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcpnn_backend::{BackendKind, NaiveBackend};
    use bcpnn_tensor::MatrixRng;

    #[test]
    fn initial_traces_encode_independence() {
        let t = ProbabilityTraces::new(10, 6, 3, 0.2);
        assert_eq!(t.n_inputs(), 10);
        assert_eq!(t.n_units(), 6);
        assert!(t.pj.iter().all(|&p| (p - 1.0 / 3.0).abs() < 1e-6));
        assert!((t.pij.get(0, 0) - 0.2 / 3.0).abs() < 1e-6);
        assert!(t.check_invariants(1e-6).is_ok());
    }

    #[test]
    #[should_panic(expected = "multiple of the group size")]
    fn group_size_must_divide_units() {
        let _ = ProbabilityTraces::new(4, 5, 2, 0.1);
    }

    #[test]
    fn initial_weights_are_near_zero() {
        let t = ProbabilityTraces::new(8, 4, 4, 0.3);
        let backend = NaiveBackend::new();
        let mut w = Matrix::zeros(8, 4);
        let mut b = vec![0.0f32; 4];
        t.weights_and_bias(&backend, 1e-8, 1.0, &mut w, &mut b);
        assert!(w.as_slice().iter().all(|v| v.abs() < 1e-4));
        assert!(b.iter().all(|&v| (v - 0.25f32.ln()).abs() < 1e-5));
    }

    #[test]
    fn updates_preserve_invariants() {
        let backend = BackendKind::Parallel.create();
        let mut rng = MatrixRng::seed_from(3);
        let mut t = ProbabilityTraces::new(12, 6, 3, 0.2);
        for _ in 0..50 {
            let x: Matrix<f32> = rng.bernoulli(16, 12, 0.25);
            let mut act: Matrix<f32> = rng.normal(16, 6, 0.0, 1.0);
            backend.grouped_softmax(&mut act, 3);
            t.update(backend.as_ref(), &x, &act, 0.1);
            assert!(t.check_invariants(1e-4).is_ok());
        }
        // After many batches of ~0.25-dense inputs the pi trace reflects it.
        let mean_pi: f32 = t.pi.iter().sum::<f32>() / t.pi.len() as f32;
        assert!((mean_pi - 0.25).abs() < 0.1, "mean pi {mean_pi}");
    }

    #[test]
    fn invariant_checker_detects_violations() {
        let mut t = ProbabilityTraces::new(2, 2, 2, 0.2);
        t.pi[0] = 1.5;
        assert!(t.check_invariants(1e-6).is_err());
        let mut t = ProbabilityTraces::new(2, 2, 2, 0.2);
        t.pij.set(0, 0, 0.9); // exceeds pi = 0.2
        assert!(t.check_invariants(1e-6).is_err());
    }
}
