//! Evaluation metrics: accuracy, confusion matrix, ROC / AUC, precision,
//! recall, F1 and log-loss.
//!
//! The paper reports test accuracy and Area Under the (ROC) Curve; the AUC
//! here is computed with the rank-statistic (Mann–Whitney U) formulation,
//! which is exact and handles ties by assigning mid-ranks.

use bcpnn_tensor::Matrix;

/// Fraction of predictions equal to the labels.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "accuracy: predictions and labels differ in length"
    );
    if labels.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Confusion matrix `C[label][prediction]` for `n_classes` classes.
///
/// # Panics
/// Panics on length mismatch or out-of-range entries.
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    n_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut cm = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &l) in predictions.iter().zip(labels.iter()) {
        assert!(p < n_classes && l < n_classes, "class index out of range");
        cm[l][p] += 1;
    }
    cm
}

/// Binary-classification counts derived from a confusion matrix with class 1
/// treated as "positive".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryCounts {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl BinaryCounts {
    /// Compute the counts from hard predictions.
    pub fn from_predictions(predictions: &[usize], labels: &[usize]) -> Self {
        assert_eq!(predictions.len(), labels.len(), "length mismatch");
        let mut c = Self {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        for (&p, &l) in predictions.iter().zip(labels.iter()) {
            match (l, p) {
                (1, 1) => c.tp += 1,
                (0, 1) => c.fp += 1,
                (0, 0) => c.tn += 1,
                (1, 0) => c.fn_ += 1,
                _ => panic!("binary counts require 0/1 labels and predictions"),
            }
        }
        c
    }

    /// Precision `tp / (tp + fp)` (0 when undefined).
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Recall (true-positive rate) `tp / (tp + fn)` (0 when undefined).
    pub fn recall(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall; 0 when undefined).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Area under the ROC curve for binary labels (1 = positive) and real-valued
/// scores (higher = more positive), computed via the Mann–Whitney U
/// statistic with mid-rank tie handling. Returns 0.5 when one class is
/// absent.
pub fn auc(scores: &[f64], labels: &[usize]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "auc: length mismatch");
    let n_pos = labels.iter().filter(|&&l| l == 1).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank the scores (average rank for ties).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("NaN score"));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Positions i..=j share the same score; assign the average 1-based rank.
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels.iter())
        .filter(|(_, &l)| l == 1)
        .map(|(r, _)| *r)
        .sum();
    let u = rank_sum_pos - (n_pos as f64 * (n_pos as f64 + 1.0)) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// ROC curve points `(false-positive rate, true-positive rate)` swept over
/// every distinct score threshold, ordered by increasing FPR. Includes the
/// trivial (0,0) and (1,1) endpoints.
pub fn roc_curve(scores: &[f64], labels: &[usize]) -> Vec<(f64, f64)> {
    assert_eq!(scores.len(), labels.len(), "roc: length mismatch");
    let n_pos = labels.iter().filter(|&&l| l == 1).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return vec![(0.0, 0.0), (1.0, 1.0)];
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // Descending scores: progressively lower the threshold.
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));
    let mut pts = vec![(0.0, 0.0)];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut k = 0usize;
    while k < order.len() {
        let threshold = scores[order[k]];
        while k < order.len() && scores[order[k]] == threshold {
            if labels[order[k]] == 1 {
                tp += 1;
            } else {
                fp += 1;
            }
            k += 1;
        }
        pts.push((fp as f64 / n_neg as f64, tp as f64 / n_pos as f64));
    }
    pts
}

/// Trapezoidal area under an ROC curve produced by [`roc_curve`]; agrees
/// with [`auc`] up to floating-point error.
pub fn auc_from_curve(curve: &[(f64, f64)]) -> f64 {
    let mut area = 0.0;
    for w in curve.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        area += (x1 - x0) * (y0 + y1) / 2.0;
    }
    area
}

/// Mean cross-entropy (log loss) of probability predictions against labels.
///
/// # Panics
/// Panics on shape mismatch or out-of-range labels.
pub fn log_loss(proba: &Matrix<f32>, labels: &[usize]) -> f64 {
    assert_eq!(proba.rows(), labels.len(), "log_loss: length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for (r, &l) in labels.iter().enumerate() {
        assert!(l < proba.cols(), "label {l} out of range");
        total -= (proba.get(r, l) as f64).max(1e-15).ln();
    }
    total / labels.len() as f64
}

/// Summary of a binary-classification evaluation: the numbers the paper
/// reports per configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Classification accuracy in [0, 1].
    pub accuracy: f64,
    /// Area under the ROC curve in [0, 1].
    pub auc: f64,
    /// Mean cross-entropy of the probability predictions.
    pub log_loss: f64,
    /// Precision of the positive (signal) class.
    pub precision: f64,
    /// Recall of the positive (signal) class.
    pub recall: f64,
    /// F1 of the positive class.
    pub f1: f64,
}

impl EvalReport {
    /// Build the report from class probabilities (`batch x n_classes`, class
    /// 1 = signal) and integer labels.
    pub fn from_probabilities(proba: &Matrix<f32>, labels: &[usize]) -> Self {
        assert_eq!(proba.rows(), labels.len(), "evaluation length mismatch");
        let predictions = bcpnn_tensor::reduce::row_argmax(proba);
        let scores: Vec<f64> = (0..proba.rows()).map(|r| proba.get(r, 1) as f64).collect();
        let counts = BinaryCounts::from_predictions(&predictions, labels);
        Self {
            accuracy: accuracy(&predictions, labels),
            auc: auc(&scores, labels),
            log_loss: log_loss(proba, labels),
            precision: counts.precision(),
            recall: counts.recall(),
            f1: counts.f1(),
        }
    }
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "accuracy {:.2}% | AUC {:.3} | logloss {:.3} | P {:.3} R {:.3} F1 {:.3}",
            self.accuracy * 100.0,
            self.auc,
            self.log_loss,
            self.precision,
            self.recall,
            self.f1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let cm = confusion_matrix(&[0, 1, 1, 0, 1], &[0, 1, 0, 0, 1], 2);
        assert_eq!(cm[0][0], 2);
        assert_eq!(cm[0][1], 1);
        assert_eq!(cm[1][1], 2);
        assert_eq!(cm[1][0], 0);
    }

    #[test]
    fn binary_counts_and_f1() {
        let c = BinaryCounts::from_predictions(&[1, 1, 0, 0, 1], &[1, 0, 0, 1, 1]);
        assert_eq!(c.tp, 2);
        assert_eq!(c.fp, 1);
        assert_eq!(c.tn, 1);
        assert_eq!(c.fn_, 1);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_random_auc() {
        let labels = vec![0, 0, 1, 1];
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &labels), 1.0);
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &labels), 0.0);
        // Constant scores: every pair is a tie => 0.5.
        assert!((auc(&[0.5, 0.5, 0.5, 0.5], &labels) - 0.5).abs() < 1e-12);
        // Degenerate label sets fall back to 0.5.
        assert_eq!(auc(&[0.1, 0.9], &[1, 1]), 0.5);
    }

    #[test]
    fn auc_handles_partial_overlap() {
        let scores = vec![0.1, 0.4, 0.35, 0.8];
        let labels = vec![0, 0, 1, 1];
        // Hand-computed: pairs (pos, neg): (0.35 vs 0.1)=1, (0.35 vs 0.4)=0,
        // (0.8 vs 0.1)=1, (0.8 vs 0.4)=1 → 3/4.
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn roc_curve_matches_rank_auc() {
        let scores = vec![0.2, 0.9, 0.4, 0.7, 0.55, 0.3, 0.8, 0.15];
        let labels = vec![0, 1, 0, 1, 1, 0, 1, 0];
        let curve = roc_curve(&scores, &labels);
        assert_eq!(curve.first(), Some(&(0.0, 0.0)));
        assert_eq!(curve.last(), Some(&(1.0, 1.0)));
        let a1 = auc(&scores, &labels);
        let a2 = auc_from_curve(&curve);
        assert!((a1 - a2).abs() < 1e-12, "{a1} vs {a2}");
    }

    #[test]
    fn log_loss_prefers_confident_correct_predictions() {
        let good = Matrix::from_vec(2, 2, vec![0.9, 0.1, 0.1, 0.9]);
        let bad = Matrix::from_vec(2, 2, vec![0.4, 0.6, 0.6, 0.4]);
        let labels = vec![0, 1];
        assert!(log_loss(&good, &labels) < log_loss(&bad, &labels));
    }

    #[test]
    fn eval_report_from_probabilities() {
        let proba = Matrix::from_vec(4, 2, vec![0.8, 0.2, 0.3, 0.7, 0.6, 0.4, 0.1, 0.9]);
        let labels = vec![0, 1, 0, 1];
        let r = EvalReport::from_probabilities(&proba, &labels);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.auc, 1.0);
        assert!(r.f1 > 0.99);
        let s = r.to_string();
        assert!(s.contains("accuracy"));
    }
}
