//! Baseline classifiers used for the related-work comparison (§VI).
//!
//! The paper compares BCPNN's AUC against shallow MLPs and deep networks
//! from Baldi et al. 2014. To regenerate that comparison on identical
//! inputs, this module provides a small from-scratch backprop MLP
//! ([`MlpClassifier`]) — one ReLU hidden layer, softmax output, mini-batch
//! SGD with momentum — and re-exports the linear softmax model
//! ([`crate::SgdClassifier`]) as the logistic-regression baseline.

use bcpnn_tensor::{gemm, gemm_nt, gemm_tn, Matrix, MatrixRng};

use crate::error::{CoreError, CoreResult};
use crate::params::SgdParams;

/// Configuration of the MLP baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpParams {
    /// Width of the ReLU hidden layer.
    pub hidden_units: usize,
    /// Optimiser settings (shared struct with the SGD head).
    pub sgd: SgdParams,
}

impl Default for MlpParams {
    fn default() -> Self {
        Self {
            hidden_units: 128,
            sgd: SgdParams {
                learning_rate: 0.05,
                ..Default::default()
            },
        }
    }
}

/// One-hidden-layer backprop MLP baseline.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    n_inputs: usize,
    n_classes: usize,
    params: MlpParams,
    w1: Matrix<f32>,
    b1: Vec<f32>,
    w2: Matrix<f32>,
    b2: Vec<f32>,
    vw1: Matrix<f32>,
    vb1: Vec<f32>,
    vw2: Matrix<f32>,
    vb2: Vec<f32>,
    current_lr: f32,
}

impl MlpClassifier {
    /// Create an MLP with He-style random initialisation.
    pub fn new(
        n_inputs: usize,
        n_classes: usize,
        params: MlpParams,
        seed: u64,
    ) -> CoreResult<Self> {
        if n_inputs == 0 || n_classes < 2 || params.hidden_units == 0 {
            return Err(CoreError::InvalidParams(
                "MLP needs inputs, at least two classes and a non-empty hidden layer".into(),
            ));
        }
        params.sgd.validate().map_err(CoreError::InvalidParams)?;
        let mut rng = MatrixRng::seed_from(seed);
        let h = params.hidden_units;
        let s1 = (2.0 / n_inputs as f64).sqrt();
        let s2 = (2.0 / h as f64).sqrt();
        Ok(Self {
            n_inputs,
            n_classes,
            current_lr: params.sgd.learning_rate,
            w1: rng.normal(n_inputs, h, 0.0, s1),
            b1: vec![0.0; h],
            w2: rng.normal(h, n_classes, 0.0, s2),
            b2: vec![0.0; n_classes],
            vw1: Matrix::zeros(n_inputs, h),
            vb1: vec![0.0; h],
            vw2: Matrix::zeros(h, n_classes),
            vb2: vec![0.0; n_classes],
            params,
        })
    }

    /// Number of input dimensions.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn check_input(&self, x: &Matrix<f32>) -> CoreResult<()> {
        if x.cols() != self.n_inputs {
            return Err(CoreError::DataMismatch(format!(
                "input has {} columns, MLP expects {}",
                x.cols(),
                self.n_inputs
            )));
        }
        Ok(())
    }

    /// Forward pass returning (hidden ReLU activations, class probabilities).
    fn forward(&self, x: &Matrix<f32>) -> (Matrix<f32>, Matrix<f32>) {
        let h_units = self.params.hidden_units;
        let mut hidden = Matrix::zeros(x.rows(), h_units);
        gemm(1.0, x, &self.w1, 0.0, &mut hidden);
        for r in 0..hidden.rows() {
            for (v, &b) in hidden.row_mut(r).iter_mut().zip(self.b1.iter()) {
                *v = (*v + b).max(0.0);
            }
        }
        let mut logits = Matrix::zeros(x.rows(), self.n_classes);
        gemm(1.0, &hidden, &self.w2, 0.0, &mut logits);
        for r in 0..logits.rows() {
            for (v, &b) in logits.row_mut(r).iter_mut().zip(self.b2.iter()) {
                *v += b;
            }
        }
        bcpnn_tensor::reduce::softmax_rows(&mut logits);
        (hidden, logits)
    }

    /// Class-probability predictions.
    pub fn predict_proba(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        self.check_input(x)?;
        Ok(self.forward(x).1)
    }

    /// Hard class predictions.
    pub fn predict(&self, x: &Matrix<f32>) -> CoreResult<Vec<usize>> {
        Ok(bcpnn_tensor::reduce::row_argmax(&self.predict_proba(x)?))
    }

    /// One mini-batch backprop step. Returns the mean cross-entropy loss.
    pub fn train_batch(&mut self, x: &Matrix<f32>, labels: &[usize]) -> CoreResult<f32> {
        self.check_input(x)?;
        if x.rows() != labels.len() {
            return Err(CoreError::DataMismatch(
                "batch size and label count differ".into(),
            ));
        }
        if x.rows() == 0 {
            return Ok(0.0);
        }
        for &l in labels {
            if l >= self.n_classes {
                return Err(CoreError::DataMismatch(format!(
                    "label {l} out of range for {} classes",
                    self.n_classes
                )));
            }
        }
        let batch = x.rows() as f32;
        let (hidden, mut proba) = self.forward(x);
        let mut loss = 0.0f32;
        for (r, &l) in labels.iter().enumerate() {
            loss -= proba.get(r, l).max(1e-12).ln();
        }
        loss /= batch;
        // d_logits = (p - y) / B
        for (r, &l) in labels.iter().enumerate() {
            proba.add_at(r, l, -1.0);
        }
        bcpnn_tensor::elementwise::scale(1.0 / batch, &mut proba);
        // grad_w2 = hiddenᵀ · d_logits ; grad_b2 = col_sums(d_logits)
        let mut grad_w2 = Matrix::zeros(self.params.hidden_units, self.n_classes);
        gemm_tn(1.0, &hidden, &proba, 0.0, &mut grad_w2);
        let grad_b2 = bcpnn_tensor::reduce::col_sums(&proba);
        // d_hidden = d_logits · w2ᵀ, gated by ReLU'.
        let mut d_hidden = Matrix::zeros(x.rows(), self.params.hidden_units);
        gemm_nt(1.0, &proba, &self.w2, 0.0, &mut d_hidden);
        for (dh, h) in d_hidden
            .as_mut_slice()
            .iter_mut()
            .zip(hidden.as_slice().iter())
        {
            if *h <= 0.0 {
                *dh = 0.0;
            }
        }
        let mut grad_w1 = Matrix::zeros(self.n_inputs, self.params.hidden_units);
        gemm_tn(1.0, x, &d_hidden, 0.0, &mut grad_w1);
        let grad_b1 = bcpnn_tensor::reduce::col_sums(&d_hidden);
        // Weight decay.
        let wd = self.params.sgd.weight_decay;
        if wd > 0.0 {
            for (g, &w) in grad_w1
                .as_mut_slice()
                .iter_mut()
                .zip(self.w1.as_slice().iter())
            {
                *g += wd * w;
            }
            for (g, &w) in grad_w2
                .as_mut_slice()
                .iter_mut()
                .zip(self.w2.as_slice().iter())
            {
                *g += wd * w;
            }
        }
        // Momentum SGD updates.
        let lr = self.current_lr;
        let mom = self.params.sgd.momentum;
        fn update(weights: &mut [f32], velocity: &mut [f32], grads: &[f32], lr: f32, mom: f32) {
            for ((w, v), g) in weights
                .iter_mut()
                .zip(velocity.iter_mut())
                .zip(grads.iter())
            {
                *v = mom * *v - lr * g;
                *w += *v;
            }
        }
        update(
            self.w1.as_mut_slice(),
            self.vw1.as_mut_slice(),
            grad_w1.as_slice(),
            lr,
            mom,
        );
        update(&mut self.b1, &mut self.vb1, &grad_b1, lr, mom);
        update(
            self.w2.as_mut_slice(),
            self.vw2.as_mut_slice(),
            grad_w2.as_slice(),
            lr,
            mom,
        );
        update(&mut self.b2, &mut self.vb2, &grad_b2, lr, mom);
        Ok(loss)
    }

    /// Train for `epochs` shuffled passes. Returns per-epoch mean loss.
    pub fn fit(
        &mut self,
        x: &Matrix<f32>,
        labels: &[usize],
        epochs: usize,
        batch_size: usize,
        seed: u64,
    ) -> CoreResult<Vec<f32>> {
        self.check_input(x)?;
        if x.rows() != labels.len() {
            return Err(CoreError::DataMismatch(
                "dataset size and label count differ".into(),
            ));
        }
        let batch_size = batch_size.max(1);
        let mut rng = MatrixRng::seed_from(seed);
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let order = rng.permutation(x.rows());
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(batch_size) {
                let xb = x.select_rows(chunk);
                let yb: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                epoch_loss += self.train_batch(&xb, &yb)?;
                batches += 1;
            }
            self.current_lr *= self.params.sgd.lr_decay;
            losses.push(if batches > 0 {
                epoch_loss / batches as f32
            } else {
                0.0
            });
        }
        Ok(losses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-like problem a linear model cannot solve but a 1-hidden-layer MLP
    /// can: label = (x0 > 0.5) XOR (x1 > 0.5), encoded with noise.
    fn xor_data(n: usize, seed: u64) -> (Matrix<f32>, Vec<usize>) {
        let mut rng = MatrixRng::seed_from(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut labels = Vec::with_capacity(n);
        for r in 0..n {
            let a = rng.uniform_scalar::<f64>(0.0, 1.0);
            let b = rng.uniform_scalar::<f64>(0.0, 1.0);
            x.set(r, 0, a as f32);
            x.set(r, 1, b as f32);
            labels.push(usize::from((a > 0.5) ^ (b > 0.5)));
        }
        (x, labels)
    }

    #[test]
    fn constructor_validates() {
        assert!(MlpClassifier::new(0, 2, MlpParams::default(), 0).is_err());
        assert!(MlpClassifier::new(4, 1, MlpParams::default(), 0).is_err());
        let bad = MlpParams {
            hidden_units: 0,
            ..Default::default()
        };
        assert!(MlpClassifier::new(4, 2, bad, 0).is_err());
    }

    #[test]
    fn probabilities_are_normalised() {
        let m = MlpClassifier::new(3, 4, MlpParams::default(), 1).unwrap();
        let x = Matrix::from_fn(5, 3, |r, c| (r + c) as f32 * 0.1);
        let p = m.predict_proba(&x).unwrap();
        for r in 0..5 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn solves_xor_unlike_a_linear_model() {
        let (x, y) = xor_data(1500, 2);
        let mut mlp = MlpClassifier::new(
            2,
            2,
            MlpParams {
                hidden_units: 32,
                sgd: SgdParams {
                    learning_rate: 0.3,
                    lr_decay: 0.98,
                    weight_decay: 0.0,
                    ..Default::default()
                },
            },
            3,
        )
        .unwrap();
        mlp.fit(&x, &y, 60, 64, 4).unwrap();
        let (xt, yt) = xor_data(400, 5);
        let preds = mlp.predict(&xt).unwrap();
        let acc = preds.iter().zip(yt.iter()).filter(|(a, b)| a == b).count() as f64 / 400.0;
        assert!(acc > 0.9, "MLP should solve XOR, accuracy {acc}");

        // The linear SGD classifier cannot do much better than chance here.
        let mut lin = crate::SgdClassifier::new(2, 2, SgdParams::default(), 6).unwrap();
        lin.fit(&x, &y, 30, 64, 7).unwrap();
        let lp = lin.predict(&xt).unwrap();
        let lacc = lp.iter().zip(yt.iter()).filter(|(a, b)| a == b).count() as f64 / 400.0;
        assert!(lacc < 0.7, "linear model unexpectedly solved XOR: {lacc}");
        assert!(
            acc > lacc + 0.15,
            "MLP must clearly beat the linear baseline"
        );
    }

    #[test]
    fn loss_decreases() {
        let (x, y) = xor_data(800, 8);
        let mut mlp = MlpClassifier::new(2, 2, MlpParams::default(), 9).unwrap();
        let losses = mlp.fit(&x, &y, 20, 64, 10).unwrap();
        assert!(losses.first().unwrap() > losses.last().unwrap());
    }

    #[test]
    fn rejects_bad_input() {
        let mut mlp = MlpClassifier::new(4, 2, MlpParams::default(), 11).unwrap();
        assert!(mlp.predict(&Matrix::zeros(2, 3)).is_err());
        let x = Matrix::zeros(2, 4);
        assert!(mlp.train_batch(&x, &[0]).is_err());
        assert!(mlp.train_batch(&x, &[0, 9]).is_err());
    }
}
