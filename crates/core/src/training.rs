//! Training orchestration: the unsupervised + supervised two-phase loop,
//! per-epoch statistics, and the observer hook used for in-situ
//! visualization (§III-B of the paper).

use std::time::{Duration, Instant};

use bcpnn_tensor::{Matrix, MatrixRng};

use crate::error::{CoreError, CoreResult};
use crate::network::Network;
use crate::params::TrainingParams;
use crate::workspace::Workspace;

/// Which phase of training an epoch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingPhase {
    /// Label-free training of the hidden HCU/MCU layer.
    Unsupervised,
    /// Supervised training of the classification head(s) on the frozen
    /// hidden code.
    Supervised,
}

impl std::fmt::Display for TrainingPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainingPhase::Unsupervised => f.write_str("unsupervised"),
            TrainingPhase::Supervised => f.write_str("supervised"),
        }
    }
}

/// Statistics of one completed epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Phase the epoch belongs to.
    pub phase: TrainingPhase,
    /// Epoch index within its phase (0-based).
    pub epoch: usize,
    /// Wall-clock duration of the epoch.
    pub duration: Duration,
    /// Number of structural-plasticity swaps performed at the end of the
    /// epoch (unsupervised epochs only, and only on plasticity epochs).
    pub plasticity_swaps: Option<usize>,
    /// Mean cross-entropy of the SGD head during the epoch (supervised
    /// epochs of networks with an SGD head only).
    pub sgd_loss: Option<f32>,
}

/// Observer invoked at the end of every epoch — the hook behind the in-situ
/// receptive-field visualization (the `bcpnn-viz` crate implements it with a
/// VTI/PGM exporter playing the role of the ParaView Catalyst adaptor).
pub trait TrainingObserver {
    /// Called after each epoch with the network state and the epoch stats.
    fn on_epoch_end(&mut self, network: &Network, stats: &EpochStats);
}

/// Full report of a training run.
#[derive(Debug, Clone, Default)]
pub struct FitReport {
    /// Per-epoch statistics in execution order.
    pub epochs: Vec<EpochStats>,
    /// Total wall-clock training time.
    pub total_duration: Duration,
}

impl FitReport {
    /// Total training time in seconds (the quantity on the right axis of
    /// Fig. 3 / Fig. 4).
    #[must_use]
    pub fn train_time_seconds(&self) -> f64 {
        self.total_duration.as_secs_f64()
    }

    /// Total number of structural-plasticity swaps across the run.
    #[must_use]
    pub fn total_plasticity_swaps(&self) -> usize {
        self.epochs.iter().filter_map(|e| e.plasticity_swaps).sum()
    }

    /// Mean SGD loss of the final supervised epoch, if any.
    #[must_use]
    pub fn final_sgd_loss(&self) -> Option<f32> {
        self.epochs.iter().rev().find_map(|e| e.sgd_loss)
    }
}

/// The two-phase trainer.
#[derive(Debug, Clone, Default)]
pub struct Trainer {
    params: TrainingParams,
}

impl Trainer {
    /// Create a trainer with the given schedule.
    pub fn new(params: TrainingParams) -> Self {
        Self { params }
    }

    /// The training schedule.
    pub fn params(&self) -> &TrainingParams {
        &self.params
    }

    /// Train `network` on `(x, labels)` without observers.
    pub fn fit(
        &self,
        network: &mut Network,
        x: &Matrix<f32>,
        labels: &[usize],
    ) -> CoreResult<FitReport> {
        self.fit_with_observers(network, x, labels, &mut [])
    }

    /// Train `network` on `(x, labels)`, invoking every observer at the end
    /// of each epoch.
    pub fn fit_with_observers(
        &self,
        network: &mut Network,
        x: &Matrix<f32>,
        labels: &[usize],
        observers: &mut [&mut dyn TrainingObserver],
    ) -> CoreResult<FitReport> {
        self.params.validate().map_err(CoreError::InvalidParams)?;
        if x.rows() != labels.len() {
            return Err(CoreError::DataMismatch(format!(
                "{} samples but {} labels",
                x.rows(),
                labels.len()
            )));
        }
        if x.rows() == 0 {
            return Err(CoreError::DataMismatch("empty training set".into()));
        }
        for &l in labels {
            if l >= network.n_classes() {
                return Err(CoreError::DataMismatch(format!(
                    "label {l} out of range for {} classes",
                    network.n_classes()
                )));
            }
        }
        let start = Instant::now();
        let mut report = FitReport::default();
        let mut rng = MatrixRng::seed_from(self.params.seed);
        let batch = self.params.batch_size;
        let plasticity_interval = network.hidden().params().plasticity_interval;
        // One workspace across every epoch of both phases: batch assembly,
        // activations, noise, targets and gradients all reach a steady
        // state after the first batch and stop churning the allocator.
        let mut ws = Workspace::new();

        // ---- Phase 1: unsupervised hidden-layer training -----------------
        for epoch in 0..self.params.unsupervised_epochs {
            let t0 = Instant::now();
            let order = self.epoch_order(&mut rng, x.rows());
            for chunk in order.chunks(batch) {
                let mut xb = std::mem::take(&mut ws.batch);
                x.select_rows_into(chunk, &mut xb);
                let step = network.hidden_mut().train_batch_with(&xb, &mut ws);
                ws.batch = xb;
                step?;
            }
            // Structural plasticity runs once per `plasticity_interval`
            // epochs (the paper updates the receptive fields every epoch).
            let swaps = if (epoch + 1) % plasticity_interval == 0 {
                Some(
                    network
                        .hidden_mut()
                        .structural_plasticity_step()
                        .total_swaps(),
                )
            } else {
                None
            };
            let stats = EpochStats {
                phase: TrainingPhase::Unsupervised,
                epoch,
                duration: t0.elapsed(),
                plasticity_swaps: swaps,
                sgd_loss: None,
            };
            for obs in observers.iter_mut() {
                obs.on_epoch_end(network, &stats);
            }
            report.epochs.push(stats);
        }

        // ---- Phase 2: supervised readout training -------------------------
        for epoch in 0..self.params.supervised_epochs {
            let t0 = Instant::now();
            let order = self.epoch_order(&mut rng, x.rows());
            let mut sgd_loss_acc = 0.0f32;
            let mut sgd_batches = 0usize;
            for chunk in order.chunks(batch) {
                let mut xb = std::mem::take(&mut ws.batch);
                let mut yb = std::mem::take(&mut ws.labels);
                let mut hidden = std::mem::take(&mut ws.hidden);
                x.select_rows_into(chunk, &mut xb);
                yb.clear();
                yb.extend(chunk.iter().map(|&i| labels[i]));
                let step = (|| -> CoreResult<()> {
                    network.hidden().forward_into(&xb, &mut hidden)?;
                    if let Some(readout) = network.bcpnn_readout_mut() {
                        readout.train_batch_with(&hidden, &yb, &mut ws)?;
                    }
                    if let Some(readout) = network.sgd_readout_mut() {
                        sgd_loss_acc += readout.train_batch_with(&hidden, &yb, &mut ws)?;
                        sgd_batches += 1;
                    }
                    Ok(())
                })();
                ws.batch = xb;
                ws.labels = yb;
                ws.hidden = hidden;
                step?;
            }
            if let Some(readout) = network.sgd_readout_mut() {
                readout.end_epoch();
            }
            let stats = EpochStats {
                phase: TrainingPhase::Supervised,
                epoch,
                duration: t0.elapsed(),
                plasticity_swaps: None,
                sgd_loss: (sgd_batches > 0).then(|| sgd_loss_acc / sgd_batches as f32),
            };
            for obs in observers.iter_mut() {
                obs.on_epoch_end(network, &stats);
            }
            report.epochs.push(stats);
        }

        report.total_duration = start.elapsed();
        Ok(report)
    }

    fn epoch_order(&self, rng: &mut MatrixRng, n: usize) -> Vec<usize> {
        if self.params.shuffle {
            rng.permutation(n)
        } else {
            (0..n).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ReadoutKind;
    use bcpnn_backend::BackendKind;

    /// Toy binary dataset: class decided by which half of the binary inputs
    /// is denser.
    fn toy_data(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Vec<usize>) {
        let mut rng = MatrixRng::seed_from(seed);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let x = Matrix::from_fn(n, d, |r, c| {
            let cls = labels[r];
            let hot = if cls == 0 { c < d / 2 } else { c >= d / 2 };
            let p = if hot { 0.55 } else { 0.1 };
            f32::from(rng.uniform_scalar::<f64>(0.0, 1.0) < p)
        });
        (x, labels)
    }

    fn tiny_network(readout: ReadoutKind, seed: u64) -> Network {
        Network::builder()
            .input(24)
            .hidden(2, 6, 0.5)
            .classes(2)
            .readout(readout)
            .backend(BackendKind::Parallel)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn trainer(unsup: usize, sup: usize) -> Trainer {
        Trainer::new(TrainingParams {
            unsupervised_epochs: unsup,
            supervised_epochs: sup,
            batch_size: 32,
            seed: 7,
            shuffle: true,
        })
    }

    #[test]
    fn fit_produces_one_stat_per_epoch() {
        let (x, y) = toy_data(256, 24, 1);
        let mut net = tiny_network(ReadoutKind::Hybrid, 2);
        let report = trainer(3, 2).fit(&mut net, &x, &y).unwrap();
        assert_eq!(report.epochs.len(), 5);
        assert_eq!(
            report
                .epochs
                .iter()
                .filter(|e| e.phase == TrainingPhase::Unsupervised)
                .count(),
            3
        );
        assert!(report.total_duration.as_secs_f64() > 0.0);
        assert!(report.train_time_seconds() > 0.0);
        assert!(report.final_sgd_loss().is_some());
    }

    #[test]
    fn training_beats_chance_on_a_separable_problem() {
        let (x, y) = toy_data(600, 24, 3);
        let (xt, yt) = toy_data(300, 24, 4);
        let mut net = tiny_network(ReadoutKind::Hybrid, 5);
        trainer(4, 6).fit(&mut net, &x, &y).unwrap();
        let report = net.evaluate(&xt, &yt).unwrap();
        assert!(
            report.accuracy > 0.8,
            "expected well above chance, got {}",
            report.accuracy
        );
        assert!(report.auc > 0.8, "AUC {}", report.auc);
        // The pure-BCPNN head also learns the task.
        let bcpnn_report = net.evaluate_with(ReadoutKind::Bcpnn, &xt, &yt).unwrap();
        assert!(
            bcpnn_report.accuracy > 0.7,
            "BCPNN head {}",
            bcpnn_report.accuracy
        );
    }

    #[test]
    fn observers_are_invoked_every_epoch() {
        struct Counter {
            calls: usize,
            unsup: usize,
        }
        impl TrainingObserver for Counter {
            fn on_epoch_end(&mut self, network: &Network, stats: &EpochStats) {
                self.calls += 1;
                if stats.phase == TrainingPhase::Unsupervised {
                    self.unsup += 1;
                    // The mask snapshot is available in-situ.
                    assert_eq!(network.hidden().receptive_field_snapshot().rows(), 2);
                }
            }
        }
        let (x, y) = toy_data(128, 24, 6);
        let mut net = tiny_network(ReadoutKind::Sgd, 7);
        let mut counter = Counter { calls: 0, unsup: 0 };
        trainer(2, 3)
            .fit_with_observers(&mut net, &x, &y, &mut [&mut counter])
            .unwrap();
        assert_eq!(counter.calls, 5);
        assert_eq!(counter.unsup, 2);
    }

    #[test]
    fn plasticity_runs_on_the_configured_interval() {
        let (x, y) = toy_data(128, 24, 8);
        let mut params = crate::params::HiddenLayerParams {
            n_inputs: 24,
            n_hcu: 2,
            n_mcu: 4,
            receptive_field: 0.4,
            plasticity_interval: 2,
            ..Default::default()
        };
        params.trace_rate = 0.1;
        let mut net = Network::builder()
            .hidden_params(params)
            .classes(2)
            .backend(BackendKind::Naive)
            .seed(9)
            .build()
            .unwrap();
        let report = trainer(4, 0).fit(&mut net, &x, &y).unwrap();
        let with_plasticity: Vec<bool> = report
            .epochs
            .iter()
            .map(|e| e.plasticity_swaps.is_some())
            .collect();
        assert_eq!(with_plasticity, vec![false, true, false, true]);
    }

    #[test]
    fn fit_rejects_inconsistent_inputs() {
        let (x, _) = toy_data(64, 24, 10);
        let mut net = tiny_network(ReadoutKind::Hybrid, 11);
        let t = trainer(1, 1);
        assert!(t.fit(&mut net, &x, &[0, 1]).is_err());
        assert!(t.fit(&mut net, &Matrix::zeros(0, 24), &[]).is_err());
        let bad_labels: Vec<usize> = vec![3; 64];
        assert!(t.fit(&mut net, &x, &bad_labels).is_err());
    }

    #[test]
    fn deterministic_given_the_same_seeds() {
        let (x, y) = toy_data(200, 24, 12);
        let mut a = tiny_network(ReadoutKind::Hybrid, 13);
        let mut b = tiny_network(ReadoutKind::Hybrid, 13);
        trainer(2, 2).fit(&mut a, &x, &y).unwrap();
        trainer(2, 2).fit(&mut b, &x, &y).unwrap();
        let (xt, yt) = toy_data(100, 24, 14);
        let ra = a.evaluate(&xt, &yt).unwrap();
        let rb = b.evaluate(&xt, &yt).unwrap();
        assert_eq!(ra.accuracy, rb.accuracy);
        assert!((ra.auc - rb.auc).abs() < 1e-12);
    }
}
