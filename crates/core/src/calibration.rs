//! Post-hoc probability calibration, fitted on a held-out split.
//!
//! A trained network's `predict_proba` rows are often over- or
//! under-confident: the argmax is right but the probabilities are not
//! trustworthy as *uncertainty* (Hou et al., "PCM and APCM Revisited: An
//! Uncertainty Perspective"). A [`Calibration`] is a small, persistable map
//! applied to every probability row after the readout — it never changes
//! the class *ranking*, only how confident the row claims to be, so
//! downstream abstention and cascade-escalation thresholds
//! (`bcpnn_core::uncertainty`) become meaningful.
//!
//! Two classic fits are supported:
//!
//! * [`Calibration::Temperature`] — temperature scaling: `qᵢ ∝ pᵢ^(1/T)`,
//!   `T` chosen to minimise held-out negative log-likelihood. `T > 1`
//!   softens rows, `T < 1` sharpens them; `T = 1` is the identity.
//! * [`Calibration::Isotonic`] — a single shared nondecreasing
//!   piecewise-linear map `g` (pool-adjacent-violators fit on pooled
//!   one-vs-rest `(probability, correctness)` pairs) applied per class,
//!   then renormalised.
//!
//! Both maps are monotone per row by construction — interpolation results
//! are clamped into their segment and every per-element transform is an
//! order-preserving IEEE operation — so calibrated rows never reorder
//! classes (`crates/core/tests/calibration_prop.rs` property-tests this).
//! A fitted calibration rides along in `v4` model directories (one
//! `calibration.mat` state file; `v1`–`v3` directories still load) and
//! round-trips persistence bit-exactly.

use bcpnn_tensor::Matrix;

use crate::error::{CoreError, CoreResult};

/// Probability floor applied after the isotonic map so a row can always be
/// renormalised (and log-losses downstream stay finite).
const ISOTONIC_FLOOR: f32 = 1e-6;

/// Which calibration family [`Pipeline::fit_calibration`] fits.
///
/// [`Pipeline::fit_calibration`]: crate::Pipeline::fit_calibration
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationMethod {
    /// One-parameter temperature scaling (NLL grid + refine).
    Temperature,
    /// Nondecreasing piecewise-linear map via pool-adjacent-violators.
    Isotonic,
}

/// A fitted, persistable post-hoc calibration map (see the
/// [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub enum Calibration {
    /// Temperature scaling with `T > 0`: `qᵢ ∝ pᵢ^(1/T)`.
    Temperature(f32),
    /// Shared nondecreasing map applied per class probability.
    Isotonic(IsotonicMap),
}

/// A nondecreasing piecewise-linear map on `[0, 1]`, the fitted state of
/// isotonic calibration. Strictly increasing breakpoints `xs` paired with
/// nondecreasing values `ys`; evaluation clamps outside the fitted range.
#[derive(Debug, Clone, PartialEq)]
pub struct IsotonicMap {
    xs: Vec<f32>,
    ys: Vec<f32>,
}

impl IsotonicMap {
    /// Build a map from breakpoints, validating the monotone invariants:
    /// equal non-empty lengths, finite values, `xs` strictly increasing,
    /// `ys` nondecreasing.
    pub fn new(xs: Vec<f32>, ys: Vec<f32>) -> CoreResult<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(CoreError::InvalidParams(format!(
                "isotonic map needs matching non-empty breakpoints ({} xs, {} ys)",
                xs.len(),
                ys.len()
            )));
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(CoreError::InvalidParams(
                "isotonic map breakpoints must be finite".into(),
            ));
        }
        if xs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CoreError::InvalidParams(
                "isotonic map x-breakpoints must be strictly increasing".into(),
            ));
        }
        if ys.windows(2).any(|w| w[0] > w[1]) {
            return Err(CoreError::InvalidParams(
                "isotonic map values must be nondecreasing".into(),
            ));
        }
        Ok(Self { xs, ys })
    }

    /// Breakpoint abscissae (strictly increasing).
    pub fn xs(&self) -> &[f32] {
        &self.xs
    }

    /// Breakpoint values (nondecreasing).
    pub fn ys(&self) -> &[f32] {
        &self.ys
    }

    /// Evaluate the map at `p`. Clamps outside the fitted range; inside a
    /// segment the interpolation result is clamped into `[y₀, y₁]`, which
    /// together with nondecreasing `ys` makes the whole map monotone under
    /// IEEE rounding, not just in exact arithmetic.
    pub fn eval(&self, p: f32) -> f32 {
        let (xs, ys) = (&self.xs, &self.ys);
        if p <= xs[0] {
            return ys[0];
        }
        if p >= *xs.last().expect("validated non-empty") {
            return *ys.last().expect("validated non-empty");
        }
        let i = xs.partition_point(|&x| x < p); // first i with xs[i] >= p; 1..len
        let (x0, x1) = (xs[i - 1], xs[i]);
        let (y0, y1) = (ys[i - 1], ys[i]);
        let t = (p - x0) / (x1 - x0);
        (y0 + t * (y1 - y0)).clamp(y0, y1)
    }
}

impl Calibration {
    /// The stable persistence tag of this calibration kind (manifest value
    /// of the `calibration` key in `v4` model directories).
    pub fn kind(&self) -> &'static str {
        match self {
            Calibration::Temperature(_) => "temperature",
            Calibration::Isotonic(_) => "isotonic",
        }
    }

    /// Validate the invariants a fitted (or loaded) calibration must hold.
    pub fn validate(&self) -> CoreResult<()> {
        match self {
            Calibration::Temperature(t) => {
                if !(t.is_finite() && *t > 0.0) {
                    return Err(CoreError::InvalidParams(format!(
                        "calibration temperature must be finite and positive, got {t}"
                    )));
                }
                Ok(())
            }
            // IsotonicMap::new validated at construction; re-validate so a
            // hand-built value goes through the same checks.
            Calibration::Isotonic(map) => {
                IsotonicMap::new(map.xs.clone(), map.ys.clone()).map(|_| ())
            }
        }
    }

    /// Apply the calibration to every probability row of `proba`, in place
    /// and allocation-free. Rows stay in `[0, 1]`, sum to 1 (up to f32
    /// rounding), and are never reordered.
    pub fn apply_rows(&self, proba: &mut Matrix<f32>) {
        for r in 0..proba.rows() {
            self.apply_row(proba.row_mut(r));
        }
    }

    /// Apply the calibration to one probability row in place.
    pub fn apply_row(&self, row: &mut [f32]) {
        match self {
            Calibration::Temperature(t) => {
                let inv_t = 1.0 / t;
                let mut sum = 0.0f32;
                for v in row.iter_mut() {
                    // powf is order-preserving for a fixed positive
                    // exponent; non-positive entries stay at zero.
                    *v = if *v > 0.0 { v.powf(inv_t) } else { 0.0 };
                    sum += *v;
                }
                if sum > 0.0 {
                    for v in row.iter_mut() {
                        *v /= sum;
                    }
                }
            }
            Calibration::Isotonic(map) => {
                let mut sum = 0.0f32;
                for v in row.iter_mut() {
                    *v = map.eval(*v).max(ISOTONIC_FLOOR);
                    sum += *v;
                }
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// Fit temperature scaling on held-out `(probability row, label)` pairs
    /// by minimising negative log-likelihood over a deterministic
    /// log-spaced grid with local refinement.
    pub fn fit_temperature(proba: &Matrix<f32>, labels: &[usize]) -> CoreResult<Calibration> {
        validate_fit_inputs(proba, labels)?;
        let nll = |t: f64| -> f64 {
            let mut total = 0.0f64;
            for (r, &y) in labels.iter().enumerate() {
                let row = proba.row(r);
                let mut sum = 0.0f64;
                let mut scaled_y = 0.0f64;
                for (c, &p) in row.iter().enumerate() {
                    let p = f64::from(p).max(1e-12);
                    let s = (p.ln() / t).exp();
                    sum += s;
                    if c == y {
                        scaled_y = s;
                    }
                }
                total -= (scaled_y / sum).ln();
            }
            total
        };
        // Coarse log-spaced grid over [0.05, 20]...
        let mut best_t = 1.0f64;
        let mut best = f64::INFINITY;
        let (lo, hi) = (0.05f64.ln(), 20.0f64.ln());
        const GRID: usize = 64;
        for i in 0..=GRID {
            let t = (lo + (hi - lo) * i as f64 / GRID as f64).exp();
            let v = nll(t);
            if v < best {
                best = v;
                best_t = t;
            }
        }
        // ...then golden-section refinement in the bracketing interval.
        let step = (hi - lo) / GRID as f64;
        let (mut a, mut b) = ((best_t.ln() - step).exp(), (best_t.ln() + step).exp());
        const PHI: f64 = 0.618_033_988_749_894_9;
        for _ in 0..48 {
            let c = b - PHI * (b - a);
            let d = a + PHI * (b - a);
            if nll(c) <= nll(d) {
                b = d;
            } else {
                a = c;
            }
        }
        let fitted = Calibration::Temperature((0.5 * (a + b)) as f32);
        fitted.validate()?;
        Ok(fitted)
    }

    /// Fit isotonic calibration on held-out `(probability row, label)`
    /// pairs: pool one-vs-rest `(pᵢ, correctᵢ)` pairs across all classes,
    /// run pool-adjacent-violators, and keep the resulting nondecreasing
    /// piecewise-linear map.
    pub fn fit_isotonic(proba: &Matrix<f32>, labels: &[usize]) -> CoreResult<Calibration> {
        validate_fit_inputs(proba, labels)?;
        // Pooled one-vs-rest pairs, sorted by probability (total order —
        // validated finite — so the fit is deterministic).
        let mut pairs: Vec<(f32, f32)> = Vec::with_capacity(proba.rows() * proba.cols());
        for (r, &y) in labels.iter().enumerate() {
            for (c, &p) in proba.row(r).iter().enumerate() {
                pairs.push((p, f32::from(u8::from(c == y))));
            }
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Pool adjacent violators: merge neighbouring blocks while a left
        // block's mean response exceeds its right neighbour's.
        struct Block {
            x_sum: f64,
            y_sum: f64,
            n: f64,
        }
        let mut blocks: Vec<Block> = Vec::new();
        for (x, y) in pairs {
            blocks.push(Block {
                x_sum: f64::from(x),
                y_sum: f64::from(y),
                n: 1.0,
            });
            while blocks.len() >= 2 {
                let [left, right] = &blocks[blocks.len() - 2..] else {
                    unreachable!()
                };
                if left.y_sum / left.n <= right.y_sum / right.n {
                    break;
                }
                let right = blocks.pop().expect("len checked");
                let left = blocks.last_mut().expect("len checked");
                left.x_sum += right.x_sum;
                left.y_sum += right.y_sum;
                left.n += right.n;
            }
        }

        // Blocks → strictly-increasing breakpoints (x-ties merged).
        let mut xs: Vec<f32> = Vec::with_capacity(blocks.len());
        let mut ys: Vec<f32> = Vec::with_capacity(blocks.len());
        for b in &blocks {
            let x = (b.x_sum / b.n) as f32;
            let y = ((b.y_sum / b.n) as f32).clamp(0.0, 1.0);
            match xs.last() {
                Some(&last_x) if x <= last_x => {
                    let last_y = ys.last_mut().expect("parallel vectors");
                    *last_y = last_y.max(y);
                }
                _ => {
                    xs.push(x);
                    ys.push(y);
                }
            }
        }
        Ok(Calibration::Isotonic(IsotonicMap::new(xs, ys)?))
    }
}

fn validate_fit_inputs(proba: &Matrix<f32>, labels: &[usize]) -> CoreResult<()> {
    if proba.rows() == 0 || proba.cols() == 0 {
        return Err(CoreError::DataMismatch(
            "cannot fit a calibration on an empty probability matrix".into(),
        ));
    }
    if proba.rows() != labels.len() {
        return Err(CoreError::DataMismatch(format!(
            "{} probability rows but {} labels",
            proba.rows(),
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&y| y >= proba.cols()) {
        return Err(CoreError::DataMismatch(format!(
            "label {bad} out of range for {} classes",
            proba.cols()
        )));
    }
    if proba.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(CoreError::DataMismatch(
            "probability matrix has non-finite entries".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharp_rows() -> (Matrix<f32>, Vec<usize>) {
        // Overconfident rows: predicted 0.9 but right only ~2/3 of the time.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            rows.extend_from_slice(&[0.9, 0.1]);
            labels.push(usize::from(i % 3 == 0)); // wrong every third row
        }
        (Matrix::from_vec(30, 2, rows), labels)
    }

    #[test]
    fn temperature_identity_is_a_no_op() {
        let cal = Calibration::Temperature(1.0);
        let mut m = Matrix::from_vec(1, 3, vec![0.5, 0.3, 0.2]);
        let before = m.clone();
        cal.apply_rows(&mut m);
        for (a, b) in m.as_slice().iter().zip(before.as_slice()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn high_temperature_softens_and_preserves_ranking() {
        let cal = Calibration::Temperature(4.0);
        let mut m = Matrix::from_vec(1, 3, vec![0.8, 0.15, 0.05]);
        cal.apply_rows(&mut m);
        let row = m.row(0);
        assert!(row[0] < 0.8, "softened: {row:?}");
        assert!(row[0] > row[1] && row[1] > row[2], "ranking kept: {row:?}");
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fitting_overconfident_rows_raises_the_temperature() {
        let (proba, labels) = sharp_rows();
        let Calibration::Temperature(t) = Calibration::fit_temperature(&proba, &labels).unwrap()
        else {
            panic!("wrong calibration kind")
        };
        assert!(t > 1.0, "overconfident rows need softening, got T={t}");
    }

    #[test]
    fn isotonic_fit_is_monotone_and_normalising() {
        let (proba, labels) = sharp_rows();
        let cal = Calibration::fit_isotonic(&proba, &labels).unwrap();
        cal.validate().unwrap();
        let mut m = Matrix::from_vec(2, 2, vec![0.9, 0.1, 0.6, 0.4]);
        cal.apply_rows(&mut m);
        for r in 0..2 {
            let row = m.row(r);
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
            assert!(row.iter().all(|p| (0.0..=1.0).contains(p)));
        }
        // The 0.9-class entry stays the argmax after recalibration.
        assert!(m.row(0)[0] >= m.row(0)[1]);
    }

    #[test]
    fn isotonic_map_evaluation_clamps_and_interpolates() {
        let map = IsotonicMap::new(vec![0.2, 0.8], vec![0.4, 0.6]).unwrap();
        assert_eq!(map.eval(0.0), 0.4);
        assert_eq!(map.eval(1.0), 0.6);
        let mid = map.eval(0.5);
        assert!((mid - 0.5).abs() < 1e-6, "got {mid}");
    }

    #[test]
    fn invalid_parameters_are_typed_errors() {
        assert!(Calibration::Temperature(0.0).validate().is_err());
        assert!(Calibration::Temperature(f32::NAN).validate().is_err());
        assert!(IsotonicMap::new(vec![], vec![]).is_err());
        assert!(IsotonicMap::new(vec![0.5, 0.5], vec![0.1, 0.2]).is_err());
        assert!(IsotonicMap::new(vec![0.1, 0.2], vec![0.9, 0.2]).is_err());
        assert!(IsotonicMap::new(vec![0.1, f32::NAN], vec![0.1, 0.2]).is_err());
        let m = Matrix::from_vec(1, 2, vec![0.5, 0.5]);
        assert!(Calibration::fit_temperature(&m, &[7]).is_err());
        assert!(Calibration::fit_isotonic(&m, &[0, 1]).is_err());
        assert!(Calibration::fit_temperature(&Matrix::zeros(0, 2), &[]).is_err());
    }
}
