//! Per-prediction uncertainty measures over class-probability rows.
//!
//! Hou et al. ("PCM and APCM Revisited: An Uncertainty Perspective") argue
//! that membership scores should be read as calibrated uncertainty rather
//! than argmax fodder. This module is the quantitative half of that story:
//! two cheap, allocation-free summaries of how sure one `predict_proba` row
//! is, computed directly on the probability slice the forward pass already
//! produced.
//!
//! * [`entropy`] — Shannon entropy `-Σ pᵢ ln pᵢ` in nats. `0` for a
//!   one-hot row, `ln n_classes` for the uniform row.
//! * [`margin`] — top-2 margin `p₍1₎ − p₍2₎` (largest minus second-largest
//!   probability). `1` for a one-hot row, `0` for a tie. This is the
//!   decision quantity the serving tier thresholds on: abstention
//!   ([`SubmitOptions::abstain_below`]) and quantized→f32 cascade
//!   escalation both compare the margin against a threshold.
//!
//! Every consumer — the serve-tier margin checks, the gateway's predict
//! JSON, the cluster front-end — calls these same functions, so uncertainty
//! numbers computed at different layers over the same probability row agree
//! **bit for bit** (`tests/uncertainty_roundtrip.rs` proves it end to end).
//!
//! [`SubmitOptions::abstain_below`]: ../../bcpnn_serve/struct.SubmitOptions.html#method.abstain_below

use bcpnn_tensor::Matrix;

/// Shannon entropy of one probability row, in nats: `-Σ pᵢ ln pᵢ`, with
/// `0 ln 0 = 0`. Non-positive entries contribute nothing, so the function
/// is total on any slice.
pub fn entropy(proba: &[f32]) -> f32 {
    let mut h = 0.0f32;
    for &p in proba {
        if p > 0.0 {
            h -= p * p.ln();
        }
    }
    h
}

/// Top-2 margin of one probability row: the largest entry minus the
/// second-largest. One pass, no allocation. Degenerate rows are total:
/// an empty row has margin `0`, a single-class row has margin `p₀`.
pub fn margin(proba: &[f32]) -> f32 {
    let mut top = f32::NEG_INFINITY;
    let mut second = f32::NEG_INFINITY;
    for &p in proba {
        if p > top {
            second = top;
            top = p;
        } else if p > second {
            second = p;
        }
    }
    match (top.is_finite(), second.is_finite()) {
        (true, true) => top - second,
        (true, false) => top,
        _ => 0.0,
    }
}

/// Entropy of every row of a probability matrix, written into `out`
/// (resized to `proba.rows()`, every element overwritten). The in-place
/// spelling for zero-allocation callers holding a reusable buffer.
pub fn entropy_into(proba: &Matrix<f32>, out: &mut Vec<f32>) {
    out.clear();
    out.extend((0..proba.rows()).map(|r| entropy(proba.row(r))));
}

/// Top-2 margin of every row of a probability matrix, written into `out`
/// (resized to `proba.rows()`, every element overwritten).
pub fn margin_into(proba: &Matrix<f32>, out: &mut Vec<f32>) {
    out.clear();
    out.extend((0..proba.rows()).map(|r| margin(proba.row(r))));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_rows_are_certain() {
        assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
        assert_eq!(margin(&[1.0, 0.0, 0.0]), 1.0);
    }

    #[test]
    fn uniform_rows_are_maximally_uncertain() {
        let h = entropy(&[0.25; 4]);
        assert!((h - (4.0f32).ln()).abs() < 1e-6, "got {h}");
        assert_eq!(margin(&[0.25; 4]), 0.0);
    }

    #[test]
    fn margin_ignores_order() {
        assert_eq!(margin(&[0.1, 0.7, 0.2]), margin(&[0.7, 0.2, 0.1]));
        assert!((margin(&[0.1, 0.7, 0.2]) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn degenerate_rows_are_total() {
        assert_eq!(margin(&[]), 0.0);
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(margin(&[0.8]), 0.8);
    }

    #[test]
    fn batch_spellings_match_the_scalar_ones() {
        let m = Matrix::from_vec(2, 3, vec![0.5, 0.3, 0.2, 0.9, 0.05, 0.05]);
        let mut h = vec![f32::NAN; 1];
        let mut g = Vec::new();
        entropy_into(&m, &mut h);
        margin_into(&m, &mut g);
        assert_eq!(h, vec![entropy(m.row(0)), entropy(m.row(1))]);
        assert_eq!(g, vec![margin(m.row(0)), margin(m.row(1))]);
    }
}
