//! The full three-layer network (input → hidden HCUs → classification) and
//! its Keras-like builder, mirroring StreamBrain's layer-by-layer interface.

use std::sync::Arc;

use bcpnn_backend::{Backend, BackendKind};
use bcpnn_tensor::Matrix;

use crate::classifier::{BcpnnClassifier, BcpnnClassifierParams};
use crate::error::{CoreError, CoreResult};
use crate::hcu::HiddenLayer;
use crate::metrics::EvalReport;
use crate::params::{HiddenLayerParams, SgdParams};
use crate::sgd::SgdClassifier;
use crate::workspace::Workspace;

/// Which classification head produces the network's predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadoutKind {
    /// Pure BCPNN: the associative probability-trace readout
    /// (the paper's 68.58 % / 75.5 % AUC configuration).
    Bcpnn,
    /// A softmax-regression head trained by SGD on the hidden code.
    Sgd,
    /// Train both heads; predict with the SGD head (the paper's
    /// "BCPNN + SGD" hybrid, 69.15 % / 76.4 % AUC).
    #[default]
    Hybrid,
}

impl ReadoutKind {
    /// Parse a readout name.
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "bcpnn" => Some(Self::Bcpnn),
            "sgd" => Some(Self::Sgd),
            "hybrid" | "bcpnn+sgd" => Some(Self::Hybrid),
            _ => None,
        }
    }

    /// Name of the readout kind.
    pub fn name(self) -> &'static str {
        match self {
            Self::Bcpnn => "bcpnn",
            Self::Sgd => "sgd",
            Self::Hybrid => "hybrid",
        }
    }
}

/// A trained (or trainable) BCPNN network.
///
/// `Clone` copies all trainable state (layers clone deeply; the backend
/// `Arc` is shared — backends are stateless compute), so a clone trains
/// independently of the original. The online-learning shadow trainer
/// clones a published network and folds new rows into the copy.
#[derive(Clone)]
pub struct Network {
    hidden: HiddenLayer,
    bcpnn_readout: Option<BcpnnClassifier>,
    sgd_readout: Option<SgdClassifier>,
    readout_kind: ReadoutKind,
    n_classes: usize,
    backend: Arc<dyn Backend>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("hidden", &self.hidden)
            .field("n_classes", &self.n_classes)
            .field("readout", &self.readout_kind)
            .finish()
    }
}

impl Network {
    /// Start building a network (Keras-style fluent interface).
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// The unsupervised hidden layer.
    pub fn hidden(&self) -> &HiddenLayer {
        &self.hidden
    }

    /// Mutable access to the hidden layer (used by the trainer).
    pub fn hidden_mut(&mut self) -> &mut HiddenLayer {
        &mut self.hidden
    }

    /// The BCPNN readout, if this network has one.
    pub fn bcpnn_readout(&self) -> Option<&BcpnnClassifier> {
        self.bcpnn_readout.as_ref()
    }

    /// Mutable BCPNN readout (used by the trainer).
    pub fn bcpnn_readout_mut(&mut self) -> Option<&mut BcpnnClassifier> {
        self.bcpnn_readout.as_mut()
    }

    /// The SGD readout, if this network has one.
    pub fn sgd_readout(&self) -> Option<&SgdClassifier> {
        self.sgd_readout.as_ref()
    }

    /// Mutable SGD readout (used by the trainer).
    pub fn sgd_readout_mut(&mut self) -> Option<&mut SgdClassifier> {
        self.sgd_readout.as_mut()
    }

    /// Which head produces [`Network::predict_proba`].
    pub fn readout_kind(&self) -> ReadoutKind {
        self.readout_kind
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The compute backend shared by the layers.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// Encode inputs into the hidden (HCU/MCU activation) representation.
    pub fn encode(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        self.hidden.forward(x)
    }

    /// Encode inputs into a caller-provided buffer (reset to
    /// `batch x n_units`): the buffer-reusing twin of [`Network::encode`].
    pub fn encode_into(&self, x: &Matrix<f32>, out: &mut Matrix<f32>) -> CoreResult<()> {
        self.hidden.forward_into(x, out)
    }

    /// Class probabilities using the head selected by the readout kind
    /// (hybrid networks predict with the SGD head).
    ///
    /// Allocating convenience over [`Network::predict_proba_into`] — there
    /// is exactly one encode → readout kernel sequence behind every
    /// spelling.
    pub fn predict_proba(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        match self.readout_kind {
            ReadoutKind::Bcpnn => self.predict_proba_with(ReadoutKind::Bcpnn, x),
            ReadoutKind::Sgd | ReadoutKind::Hybrid => self.predict_proba_with(ReadoutKind::Sgd, x),
        }
    }

    /// Class probabilities written into `out` (reset to
    /// `batch x n_classes`), drawing the hidden-activation scratch from
    /// `ws`. Zero allocations once the workspace has seen the batch shape;
    /// bit-identical to [`Network::predict_proba`].
    pub fn predict_proba_into(
        &self,
        x: &Matrix<f32>,
        ws: &mut Workspace,
        out: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        match self.readout_kind {
            ReadoutKind::Bcpnn => self.predict_proba_with_into(ReadoutKind::Bcpnn, x, ws, out),
            ReadoutKind::Sgd | ReadoutKind::Hybrid => {
                self.predict_proba_with_into(ReadoutKind::Sgd, x, ws, out)
            }
        }
    }

    /// Class probabilities from a specific head (useful for reporting the
    /// pure-BCPNN and hybrid numbers from the same trained network, as the
    /// paper does).
    pub fn predict_proba_with(
        &self,
        head: ReadoutKind,
        x: &Matrix<f32>,
    ) -> CoreResult<Matrix<f32>> {
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(0, 0);
        self.predict_proba_with_into(head, x, &mut ws, &mut out)?;
        Ok(out)
    }

    /// Class probabilities from a specific head written into `out`: the one
    /// authoritative encode → readout kernel sequence every predict
    /// spelling routes through.
    pub fn predict_proba_with_into(
        &self,
        head: ReadoutKind,
        x: &Matrix<f32>,
        ws: &mut Workspace,
        out: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        let mut hidden = std::mem::take(&mut ws.hidden);
        let result = self
            .hidden
            .forward_into(x, &mut hidden)
            .and_then(|()| match head {
                ReadoutKind::Bcpnn => self
                    .bcpnn_readout
                    .as_ref()
                    .ok_or_else(|| CoreError::InvalidParams("network has no BCPNN readout".into()))?
                    .predict_proba_into(&hidden, out),
                ReadoutKind::Sgd | ReadoutKind::Hybrid => self
                    .sgd_readout
                    .as_ref()
                    .ok_or_else(|| CoreError::InvalidParams("network has no SGD readout".into()))?
                    .predict_proba_into(&hidden, out),
            });
        ws.hidden = hidden;
        result
    }

    /// Hard class predictions via [`Network::predict_proba`].
    pub fn predict(&self, x: &Matrix<f32>) -> CoreResult<Vec<usize>> {
        Ok(bcpnn_tensor::simd::dispatch::row_argmax(
            &self.predict_proba(x)?,
        ))
    }

    /// Evaluate the network on labeled data (accuracy, AUC, ...).
    pub fn evaluate(&self, x: &Matrix<f32>, labels: &[usize]) -> CoreResult<EvalReport> {
        if x.rows() != labels.len() {
            return Err(CoreError::DataMismatch(
                "evaluation set size and label count differ".into(),
            ));
        }
        let proba = self.predict_proba(x)?;
        Ok(EvalReport::from_probabilities(&proba, labels))
    }

    /// Evaluate a specific head on labeled data.
    pub fn evaluate_with(
        &self,
        head: ReadoutKind,
        x: &Matrix<f32>,
        labels: &[usize],
    ) -> CoreResult<EvalReport> {
        if x.rows() != labels.len() {
            return Err(CoreError::DataMismatch(
                "evaluation set size and label count differ".into(),
            ));
        }
        let proba = self.predict_proba_with(head, x)?;
        Ok(EvalReport::from_probabilities(&proba, labels))
    }

    /// Fold one labeled batch into the trained network's counters — the
    /// online-learning entry point.
    ///
    /// BCPNN weights are Bayesian co-activation counters, so incremental
    /// updates are the native operation: one unsupervised hidden-layer
    /// trace update on the batch, then one supervised readout update on
    /// the refreshed hidden code — the same two kernels
    /// [`crate::Trainer::fit`] loops over, minus the epoch scaffolding
    /// (no shuffling, no structural plasticity, no learning-rate decay:
    /// online folds run at the learning rate the offline fit left behind).
    /// No refit from scratch, no allocation beyond workspace growth.
    ///
    /// Deterministic: starting from identical network state, folding the
    /// same batches in the same order reproduces bit-identical weights —
    /// the property the learn-service replay log relies on.
    pub fn learn_batch(
        &mut self,
        x: &Matrix<f32>,
        labels: &[usize],
        ws: &mut Workspace,
    ) -> CoreResult<()> {
        if x.rows() != labels.len() {
            return Err(CoreError::DataMismatch(
                "learn batch size and label count differ".into(),
            ));
        }
        if x.rows() == 0 {
            return Err(CoreError::DataMismatch("learn batch is empty".into()));
        }
        for &label in labels {
            if label >= self.n_classes {
                return Err(CoreError::DataMismatch(format!(
                    "label {label} out of range for {} classes",
                    self.n_classes
                )));
            }
        }
        // Unsupervised fold: the hidden layer keeps learning the input
        // statistics from live traffic.
        self.hidden.train_batch_with(x, ws)?;
        // Supervised fold on the *updated* hidden code, exactly as a
        // supervised epoch would see it.
        let mut hidden = std::mem::take(&mut ws.hidden);
        let result = self.hidden.forward_into(x, &mut hidden).and_then(|()| {
            if let Some(readout) = self.bcpnn_readout.as_mut() {
                readout.train_batch_with(&hidden, labels, ws)?;
            }
            if let Some(readout) = self.sgd_readout.as_mut() {
                readout.train_batch_with(&hidden, labels, ws)?;
            }
            Ok(())
        });
        ws.hidden = hidden;
        result
    }
}

/// Fluent builder for [`Network`] (StreamBrain's Keras-inspired interface).
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    hidden: HiddenLayerParams,
    n_classes: usize,
    readout: ReadoutKind,
    backend: BackendKind,
    classifier_params: BcpnnClassifierParams,
    sgd_params: SgdParams,
    seed: u64,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self {
            hidden: HiddenLayerParams::default(),
            n_classes: 2,
            readout: ReadoutKind::default(),
            backend: BackendKind::default(),
            classifier_params: BcpnnClassifierParams::default(),
            sgd_params: SgdParams::default(),
            seed: 42,
        }
    }
}

impl NetworkBuilder {
    /// Set the input width (e.g. 280 for the encoded Higgs features).
    #[must_use]
    pub fn input(mut self, n_inputs: usize) -> Self {
        self.hidden.n_inputs = n_inputs;
        self
    }

    /// Configure the hidden layer: number of HCUs, MCUs per HCU, and the
    /// receptive-field density.
    #[must_use]
    pub fn hidden(mut self, n_hcu: usize, n_mcu: usize, receptive_field: f64) -> Self {
        self.hidden.n_hcu = n_hcu;
        self.hidden.n_mcu = n_mcu;
        self.hidden.receptive_field = receptive_field;
        self
    }

    /// Replace the full hidden-layer parameter struct.
    #[must_use]
    pub fn hidden_params(mut self, params: HiddenLayerParams) -> Self {
        self.hidden = params;
        self
    }

    /// Set the number of output classes (2 for signal vs background).
    #[must_use]
    pub fn classes(mut self, n_classes: usize) -> Self {
        self.n_classes = n_classes;
        self
    }

    /// Select the classification head.
    #[must_use]
    pub fn readout(mut self, readout: ReadoutKind) -> Self {
        self.readout = readout;
        self
    }

    /// Select the compute backend.
    #[must_use]
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Parameters for the BCPNN readout.
    #[must_use]
    pub fn classifier_params(mut self, params: BcpnnClassifierParams) -> Self {
        self.classifier_params = params;
        self
    }

    /// Parameters for the SGD readout.
    #[must_use]
    pub fn sgd_params(mut self, params: SgdParams) -> Self {
        self.sgd_params = params;
        self
    }

    /// RNG seed controlling initial masks, weights and shuffling.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the network.
    pub fn build(self) -> CoreResult<Network> {
        if self.n_classes < 2 {
            return Err(CoreError::InvalidParams(
                "a classifier needs at least two classes".into(),
            ));
        }
        let backend = self.backend.create();
        let hidden = HiddenLayer::new(self.hidden.clone(), Arc::clone(&backend), self.seed)?;
        let n_hidden_units = hidden.n_units();
        let bcpnn_readout = match self.readout {
            ReadoutKind::Bcpnn | ReadoutKind::Hybrid => Some(BcpnnClassifier::new(
                n_hidden_units,
                self.n_classes,
                self.classifier_params.clone(),
                Arc::clone(&backend),
            )?),
            ReadoutKind::Sgd => None,
        };
        let sgd_readout = match self.readout {
            ReadoutKind::Sgd | ReadoutKind::Hybrid => Some(SgdClassifier::new(
                n_hidden_units,
                self.n_classes,
                self.sgd_params.clone(),
                self.seed ^ 0x5eed_5eed,
            )?),
            ReadoutKind::Bcpnn => None,
        };
        Ok(Network {
            hidden,
            bcpnn_readout,
            sgd_readout,
            readout_kind: self.readout,
            n_classes: self.n_classes,
            backend,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_builder() -> NetworkBuilder {
        Network::builder()
            .input(20)
            .hidden(2, 4, 0.5)
            .classes(2)
            .backend(BackendKind::Naive)
            .seed(1)
    }

    #[test]
    fn builder_constructs_requested_topology() {
        let net = tiny_builder().readout(ReadoutKind::Hybrid).build().unwrap();
        assert_eq!(net.hidden().n_units(), 8);
        assert_eq!(net.n_classes(), 2);
        assert!(net.bcpnn_readout().is_some());
        assert!(net.sgd_readout().is_some());
        assert_eq!(net.readout_kind(), ReadoutKind::Hybrid);
    }

    #[test]
    fn readout_selection_controls_which_heads_exist() {
        let b = tiny_builder().readout(ReadoutKind::Bcpnn).build().unwrap();
        assert!(b.bcpnn_readout().is_some());
        assert!(b.sgd_readout().is_none());
        let s = tiny_builder().readout(ReadoutKind::Sgd).build().unwrap();
        assert!(s.bcpnn_readout().is_none());
        assert!(s.sgd_readout().is_some());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(tiny_builder().classes(1).build().is_err());
        assert!(tiny_builder().hidden(0, 4, 0.5).build().is_err());
        assert!(tiny_builder().hidden(2, 4, 0.0).build().is_err());
    }

    #[test]
    fn untrained_network_still_produces_valid_probabilities() {
        let net = tiny_builder().build().unwrap();
        let x = Matrix::from_fn(5, 20, |r, c| f32::from((r + c) % 3 == 0));
        let p = net.predict_proba(&x).unwrap();
        assert_eq!(p.shape(), (5, 2));
        for r in 0..5 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
        let preds = net.predict(&x).unwrap();
        assert_eq!(preds.len(), 5);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn predict_proba_into_matches_the_allocating_path_bit_exactly() {
        let net = tiny_builder().readout(ReadoutKind::Hybrid).build().unwrap();
        let mut ws = Workspace::new();
        let mut out = Matrix::filled(2, 2, f32::NAN);
        for n in [5usize, 1, 9] {
            let x = Matrix::from_fn(n, 20, |r, c| f32::from((r + 2 * c) % 3 == 0));
            net.predict_proba_into(&x, &mut ws, &mut out).unwrap();
            assert_eq!(out, net.predict_proba(&x).unwrap(), "batch of {n}");
            // Head-specific spelling agrees too.
            net.predict_proba_with_into(ReadoutKind::Bcpnn, &x, &mut ws, &mut out)
                .unwrap();
            assert_eq!(out, net.predict_proba_with(ReadoutKind::Bcpnn, &x).unwrap());
        }
        // Missing heads are still typed errors through the _into spelling.
        let sgd_only = tiny_builder().readout(ReadoutKind::Sgd).build().unwrap();
        let x = Matrix::zeros(2, 20);
        assert!(sgd_only
            .predict_proba_with_into(ReadoutKind::Bcpnn, &x, &mut ws, &mut out)
            .is_err());
    }

    #[test]
    fn predict_proba_with_requires_the_head() {
        let net = tiny_builder().readout(ReadoutKind::Sgd).build().unwrap();
        let x = Matrix::zeros(2, 20);
        assert!(net.predict_proba_with(ReadoutKind::Bcpnn, &x).is_err());
        assert!(net.predict_proba_with(ReadoutKind::Sgd, &x).is_ok());
    }

    #[test]
    fn evaluate_checks_lengths() {
        let net = tiny_builder().build().unwrap();
        let x = Matrix::zeros(3, 20);
        assert!(net.evaluate(&x, &[0, 1]).is_err());
        let report = net.evaluate(&x, &[0, 1, 0]).unwrap();
        assert!(report.accuracy >= 0.0 && report.accuracy <= 1.0);
    }

    #[test]
    fn network_and_backend_handles_are_send_and_sync() {
        // Static assertions: the serving subsystem shares trained networks
        // across threads as `Arc<ServedModel>`, which requires these bounds.
        // A failure here is a compile error, not a runtime failure.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Network>();
        assert_send_sync::<Arc<dyn Backend>>();
        assert_send_sync::<HiddenLayer>();
        assert_send_sync::<crate::BcpnnClassifier>();
        assert_send_sync::<crate::SgdClassifier>();
    }

    #[test]
    fn readout_kind_parsing() {
        assert_eq!(ReadoutKind::parse("bcpnn"), Some(ReadoutKind::Bcpnn));
        assert_eq!(ReadoutKind::parse("BCPNN+SGD"), Some(ReadoutKind::Hybrid));
        assert_eq!(ReadoutKind::parse("sgd"), Some(ReadoutKind::Sgd));
        assert_eq!(ReadoutKind::parse("???"), None);
        assert_eq!(ReadoutKind::Hybrid.name(), "hybrid");
    }
}
