//! Hyperparameters of the BCPNN model.
//!
//! BCPNN exposes more hyperparameters than a plain backprop network (§IV of
//! the paper motivates using Ax/Nevergrad to search them); this module
//! gathers them in one validated struct so the experiment harness and the
//! `bcpnn-hyperopt` search can manipulate them uniformly.

/// Configuration of the unsupervised hidden layer (the HCU/MCU layer).
#[derive(Debug, Clone, PartialEq)]
pub struct HiddenLayerParams {
    /// Number of input variables (e.g. 280 for the 28-feature, 10-bin
    /// one-hot encoded Higgs data).
    pub n_inputs: usize,
    /// Number of hypercolumn units. Fig. 3 sweeps {1, 2, 4, 6, 8}.
    pub n_hcu: usize,
    /// Number of minicolumn units per hypercolumn. Fig. 3 sweeps
    /// {30, 300, 3000}.
    pub n_mcu: usize,
    /// Receptive-field density in (0, 1]: the fraction of inputs each HCU is
    /// allowed to connect to. Fig. 4 sweeps 0.05–0.95; the paper's default
    /// for Fig. 3 is 0.30.
    pub receptive_field: f64,
    /// Exponential-moving-average rate of the probability traces
    /// (≈ `1 / τ_p`); one batch moves the traces this fraction of the way
    /// towards the batch statistics.
    pub trace_rate: f32,
    /// Probability floor used inside `ln` (StreamBrain's `eps`).
    pub eps: f32,
    /// Gain applied to the bias term `b_j = gain · ln(p_j)`. For the
    /// unsupervised hidden layer the default is 0: with a full prior bias,
    /// frequently-winning minicolumns get an ever larger head start and a
    /// single MCU can capture the whole hypercolumn (winner-take-all
    /// collapse). Dropping the prior term lets the log-odds weights alone
    /// drive the competition, which is what makes the MCUs differentiate
    /// into distinct features. The supervised readout keeps its own bias
    /// gain of 1 (class priors are informative there).
    pub bias_gain: f32,
    /// Standard deviation of the Gaussian noise added to the support during
    /// unsupervised training. Symmetry breaking between minicolumns; 0
    /// disables it.
    pub support_noise: f32,
    /// Number of (activate, silence) connection swaps attempted per HCU per
    /// structural-plasticity update.
    pub plasticity_swaps: usize,
    /// Run structural plasticity every `plasticity_interval` epochs
    /// (1 = every epoch, which is what the paper does).
    pub plasticity_interval: usize,
}

impl Default for HiddenLayerParams {
    fn default() -> Self {
        Self {
            n_inputs: 280,
            n_hcu: 1,
            n_mcu: 300,
            receptive_field: 0.30,
            trace_rate: 0.05,
            eps: 1e-6,
            bias_gain: 0.0,
            support_noise: 0.1,
            plasticity_swaps: 8,
            plasticity_interval: 1,
        }
    }
}

impl HiddenLayerParams {
    /// Total number of minicolumn units across all hypercolumns.
    pub fn n_units(&self) -> usize {
        self.n_hcu * self.n_mcu
    }

    /// Number of active connections per HCU implied by the receptive field.
    /// Always at least 1 so an HCU is never completely blind.
    pub fn active_connections(&self) -> usize {
        ((self.n_inputs as f64 * self.receptive_field).round() as usize).clamp(1, self.n_inputs)
    }

    /// Validate the parameter combination, returning a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_inputs == 0 {
            return Err("n_inputs must be positive".into());
        }
        if self.n_hcu == 0 {
            return Err("n_hcu must be positive".into());
        }
        if self.n_mcu == 0 {
            return Err("n_mcu must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.receptive_field) || self.receptive_field == 0.0 {
            return Err(format!(
                "receptive_field must be in (0, 1], got {}",
                self.receptive_field
            ));
        }
        if !(self.trace_rate > 0.0 && self.trace_rate <= 1.0) {
            return Err(format!(
                "trace_rate must be in (0, 1], got {}",
                self.trace_rate
            ));
        }
        if self.eps <= 0.0 {
            return Err("eps must be positive".into());
        }
        if self.support_noise < 0.0 {
            return Err("support_noise must be non-negative".into());
        }
        if self.plasticity_interval == 0 {
            return Err("plasticity_interval must be positive".into());
        }
        Ok(())
    }
}

/// Configuration of the whole training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingParams {
    /// Unsupervised epochs over the training set for the hidden layer.
    pub unsupervised_epochs: usize,
    /// Supervised epochs for the classification layer.
    pub supervised_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base RNG seed; repetition `r` of an experiment uses `seed + r`.
    pub seed: u64,
    /// Shuffle the training set between epochs.
    pub shuffle: bool,
}

impl Default for TrainingParams {
    fn default() -> Self {
        Self {
            unsupervised_epochs: 5,
            supervised_epochs: 5,
            batch_size: 128,
            seed: 42,
            shuffle: true,
        }
    }
}

impl TrainingParams {
    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.unsupervised_epochs == 0 && self.supervised_epochs == 0 {
            return Err("at least one training phase must have epochs".into());
        }
        Ok(())
    }
}

/// Parameters of the SGD (softmax-regression) classification head used for
/// the paper's "BCPNN + SGD" hybrid and for the baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct SgdParams {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    /// Multiplicative learning-rate decay applied after every epoch.
    pub lr_decay: f32,
}

impl Default for SgdParams {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay: 0.95,
        }
    }
}

impl SgdParams {
    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.learning_rate <= 0.0 {
            return Err("learning_rate must be positive".into());
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err("momentum must be in [0, 1)".into());
        }
        if self.weight_decay < 0.0 {
            return Err("weight_decay must be non-negative".into());
        }
        if !(0.0 < self.lr_decay && self.lr_decay <= 1.0) {
            return Err("lr_decay must be in (0, 1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(HiddenLayerParams::default().validate().is_ok());
        assert!(TrainingParams::default().validate().is_ok());
        assert!(SgdParams::default().validate().is_ok());
    }

    #[test]
    fn unit_and_connection_counts() {
        let p = HiddenLayerParams {
            n_inputs: 280,
            n_hcu: 4,
            n_mcu: 300,
            receptive_field: 0.30,
            ..Default::default()
        };
        assert_eq!(p.n_units(), 1200);
        assert_eq!(p.active_connections(), 84);
    }

    #[test]
    fn tiny_receptive_field_keeps_at_least_one_connection() {
        let p = HiddenLayerParams {
            n_inputs: 100,
            receptive_field: 0.001,
            ..Default::default()
        };
        assert_eq!(p.active_connections(), 1);
    }

    #[test]
    fn invalid_hidden_params_are_rejected() {
        let bad_rf = HiddenLayerParams {
            receptive_field: 0.0,
            ..Default::default()
        };
        assert!(bad_rf.validate().is_err());
        let bad_rate = HiddenLayerParams {
            trace_rate: 1.5,
            ..Default::default()
        };
        assert!(bad_rate.validate().is_err());
        let bad_mcu = HiddenLayerParams {
            n_mcu: 0,
            ..Default::default()
        };
        assert!(bad_mcu.validate().is_err());
        let bad_interval = HiddenLayerParams {
            plasticity_interval: 0,
            ..Default::default()
        };
        assert!(bad_interval.validate().is_err());
    }

    #[test]
    fn invalid_training_params_are_rejected() {
        let bad = TrainingParams {
            batch_size: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let no_epochs = TrainingParams {
            unsupervised_epochs: 0,
            supervised_epochs: 0,
            ..Default::default()
        };
        assert!(no_epochs.validate().is_err());
    }

    #[test]
    fn invalid_sgd_params_are_rejected() {
        assert!(SgdParams {
            learning_rate: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SgdParams {
            momentum: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SgdParams {
            lr_decay: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
