//! Reusable scratch buffers for the zero-allocation inference and training
//! data plane.
//!
//! Every stage of a forward pass — stage-chain encoding, the hidden-layer
//! support/softmax, the readout probabilities — needs a batch-sized
//! temporary. The simple API ([`Network::predict_proba`],
//! [`Pipeline::predict_proba`]) allocates those temporaries per call, which
//! is fine for offline experiments but puts the allocator on the serving
//! hot path: a micro-batching worker would create and drop several matrices
//! per batch, forever. A [`Workspace`] owns those temporaries instead. The
//! `_into` variants ([`Network::predict_proba_into`],
//! [`Predictor::predict_proba_into`], `HiddenLayer::train_batch_with`, …)
//! borrow their scratch from the workspace and write the result into a
//! caller-provided output matrix, so a warmed-up worker performs **zero
//! heap allocations per batch** (`tests/alloc_regression.rs` enforces this
//! with a counting allocator).
//!
//! Buffers grow on demand ([`bcpnn_tensor::Matrix::resize`]) and never
//! shrink, so the steady state is reached after the largest batch shape has
//! been seen once.
//!
//! [`Network::predict_proba`]: crate::Network::predict_proba
//! [`Network::predict_proba_into`]: crate::Network::predict_proba_into
//! [`Pipeline::predict_proba`]: crate::model::Predictor::predict_proba
//! [`Predictor::predict_proba_into`]: crate::model::Predictor::predict_proba_into

use bcpnn_tensor::Matrix;

/// Preallocated, named scratch buffers threaded through the `_into` compute
/// paths (see the [module docs](self)).
///
/// A workspace is plain mutable state: keep one per worker thread (they are
/// `Send`, not shared). Buffer contents between calls are unspecified —
/// every `_into` kernel fully overwrites the slots it uses.
///
/// ```
/// use bcpnn_backend::BackendKind;
/// use bcpnn_core::model::Predictor;
/// use bcpnn_core::{Network, Pipeline, TrainingParams, Workspace};
/// use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
/// use bcpnn_tensor::Matrix;
///
/// let data = generate(&SyntheticHiggsConfig { n_samples: 200, ..Default::default() });
/// let (pipeline, _) = Pipeline::fit(
///     &data,
///     10,
///     Network::builder().hidden(1, 4, 0.4).classes(2).backend(BackendKind::Naive),
///     TrainingParams {
///         unsupervised_epochs: 1,
///         supervised_epochs: 1,
///         batch_size: 50,
///         ..Default::default()
///     },
/// )
/// .unwrap();
///
/// // One workspace + one output buffer serve any number of batches.
/// let mut ws = Workspace::new();
/// let mut proba = Matrix::zeros(0, 0);
/// for batch in 0..3 {
///     pipeline
///         .predict_proba_into(&data.features, &mut ws, &mut proba)
///         .unwrap();
///     assert_eq!(proba.shape(), (200, 2), "batch {batch}");
/// }
/// // Identical (bit-for-bit) to the allocating path.
/// assert_eq!(proba, pipeline.predict_proba(&data.features).unwrap());
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    /// Stage-chain ping buffer (first/odd stage outputs).
    pub(crate) encode_a: Matrix<f32>,
    /// Stage-chain pong buffer (even stage outputs of multi-stage chains).
    pub(crate) encode_b: Matrix<f32>,
    /// Hidden activations (`batch x n_units`).
    pub(crate) hidden: Matrix<f32>,
    /// Gaussian support noise for training forward passes.
    pub(crate) noise: Matrix<f32>,
    /// Readout probabilities / logits scratch (`batch x n_classes`).
    pub(crate) proba: Matrix<f32>,
    /// One-hot target scratch for the BCPNN readout (`batch x n_classes`).
    pub(crate) targets: Matrix<f32>,
    /// SGD weight-gradient scratch (`n_inputs x n_classes`).
    pub(crate) grad_w: Matrix<f32>,
    /// SGD bias-gradient scratch (`n_classes`).
    pub(crate) grad_b: Vec<f32>,
    /// Batch-assembly scratch for epoch loops (`batch x features`).
    pub(crate) batch: Matrix<f32>,
    /// Label-assembly scratch for epoch loops.
    pub(crate) labels: Vec<usize>,
    /// Cascade gather scratch: escalated input rows (`escalated x width`).
    pub(crate) cascade_x: Matrix<f32>,
    /// Cascade output scratch: escalated probability rows
    /// (`escalated x n_classes`).
    pub(crate) cascade_out: Matrix<f32>,
    /// Escalated row indices for the cascade scatter step.
    pub(crate) cascade_rows: Vec<usize>,
}

impl Workspace {
    /// Create an empty workspace. No memory is reserved up front; buffers
    /// grow to the shapes they first see and stay there.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow the three inference scratch buffers — stage-chain ping
    /// (`encode_a`), stage-chain pong (`encode_b`), and hidden activations
    /// — for a foreign `Predictor` implementation that lives outside this
    /// crate (e.g. the quantized pipeline in `bcpnn-lowprec`).
    ///
    /// The built-in models reach the fields directly; this seam is what
    /// lets external predictors run the same allocation-free
    /// `predict_proba_into` discipline against the same per-worker
    /// workspace, without widening the fields themselves. Contents are
    /// unspecified between calls, exactly like every other slot.
    pub fn inference_scratch(&mut self) -> (&mut Matrix<f32>, &mut Matrix<f32>, &mut Matrix<f32>) {
        (&mut self.encode_a, &mut self.encode_b, &mut self.hidden)
    }

    /// Take ownership of the cascade scratch buffers — the gather matrix
    /// (escalated input rows), the escalated-output matrix, and the
    /// escalated-row index list.
    ///
    /// A cascading `Predictor` (the quantized→f32 `CascadeModel` in
    /// `bcpnn-serve`) must run its *inner* predictors against this same
    /// workspace while holding per-call gather/scatter buffers of its own;
    /// taking the buffers out (and restoring them with
    /// [`Workspace::restore_cascade_scratch`] afterwards) keeps the whole
    /// nested call allocation-free without aliasing the inference scratch.
    pub fn take_cascade_scratch(&mut self) -> (Matrix<f32>, Matrix<f32>, Vec<usize>) {
        (
            std::mem::take(&mut self.cascade_x),
            std::mem::take(&mut self.cascade_out),
            std::mem::take(&mut self.cascade_rows),
        )
    }

    /// Give the cascade scratch buffers back after
    /// [`Workspace::take_cascade_scratch`], preserving their grown
    /// capacity for the next batch.
    pub fn restore_cascade_scratch(&mut self, x: Matrix<f32>, out: Matrix<f32>, rows: Vec<usize>) {
        self.cascade_x = x;
        self.cascade_out = out;
        self.cascade_rows = rows;
    }

    /// Total number of `f32` scratch elements reserved across all buffers
    /// — capacity, not current shape, so it tracks the never-shrinking
    /// high-water mark (diagnostic: watch it plateau after warmup even as
    /// batch sizes vary).
    pub fn allocated_elems(&self) -> usize {
        self.encode_a.capacity()
            + self.encode_b.capacity()
            + self.hidden.capacity()
            + self.noise.capacity()
            + self.proba.capacity()
            + self.targets.capacity()
            + self.grad_w.capacity()
            + self.grad_b.capacity()
            + self.batch.capacity()
            + self.cascade_x.capacity()
            + self.cascade_out.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_workspace_holds_nothing() {
        let ws = Workspace::new();
        assert_eq!(ws.allocated_elems(), 0);
        assert!(ws.labels.is_empty());
    }

    #[test]
    fn workspace_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Workspace>();
    }
}
