//! Model persistence.
//!
//! A trained [`Network`] is saved as a directory containing a small
//! key/value manifest plus one text matrix file (see `bcpnn_tensor::io`)
//! per state tensor: the hidden mask, the hidden and readout probability
//! traces, and the SGD head parameters. Weights are *not* stored — they are
//! deterministic functions of the traces and are recomputed on load, which
//! both keeps the files small and guarantees the loaded model is internally
//! consistent.
//!
//! ## Format versions
//!
//! * `v1` — network state only.
//! * `v2` — additionally records whether a fitted input encoder ships with
//!   the model (`encoder quantile` + `encoder.txt`), so a model directory
//!   can be a complete raw-features-in → probabilities-out serving
//!   artifact.
//! * `v3` — self-describing **stage-tagged** format: the
//!   manifest carries a `stages N` count plus one `stage<i> <kind>` line
//!   per fitted transformer stage (kinds: `quantile`, `thermometer`,
//!   `standardize`; state in `stage<i>.txt`), so an arbitrary
//!   [`Pipeline`](crate::model::Pipeline) chain persists and reloads
//!   exactly (see [`save_pipeline`] / [`load_pipeline`]). An unknown stage
//!   tag is a typed [`CoreError::Format`], never a panic.
//! * `v4` (current) — additionally persists an attached post-hoc
//!   [`Calibration`]: a `calibration <kind>` manifest line (kinds:
//!   `temperature`, `isotonic`) plus the fitted state in
//!   `calibration.mat`, written **only when a calibration is attached** —
//!   an uncalibrated `v4` directory differs from a `v3` one solely in the
//!   header version. `v1`–`v3` directories still load.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use bcpnn_backend::BackendKind;
use bcpnn_data::encode::{Standardizer, ThermometerEncoder};
use bcpnn_data::QuantileEncoder;
use bcpnn_tensor::{load_matrix, save_matrix, Matrix};

use crate::calibration::{Calibration, IsotonicMap};
use crate::classifier::BcpnnClassifierParams;
use crate::error::{CoreError, CoreResult};
use crate::mask::ReceptiveFieldMask;
use crate::model::{Pipeline, Stage, Transformer};
use crate::network::{Network, NetworkBuilder, ReadoutKind};
use crate::params::{HiddenLayerParams, SgdParams};
use crate::traces::ProbabilityTraces;

const MANIFEST: &str = "manifest.txt";
/// File the fitted input encoder is stored in (v2 directories only).
const ENCODER_FILE: &str = "encoder.txt";
/// File an attached calibration is stored in (v4 directories only).
const CALIBRATION_FILE: &str = "calibration.mat";
const MAGIC: &str = "bcpnn-network";
/// Version written by [`save_network`] / [`save_pipeline`].
const VERSION: &str = "v4";
/// Versions [`load_network`] accepts.
const READABLE_VERSIONS: [&str; 4] = ["v1", "v2", "v3", "v4"];

/// File one fitted stage is stored in (v3 directories).
fn stage_file(i: usize) -> String {
    format!("stage{i}.txt")
}

/// Persist one fitted [`Stage`] to `path` (the per-stage state file of the
/// stage-tagged directory formats). Public so sibling crates persisting
/// their own stage-tagged artifacts — e.g. the quantized-pipeline format in
/// `bcpnn-lowprec` — reuse the exact stage encodings of the `v3` model
/// directories instead of inventing parallel ones.
pub fn save_stage(stage: &Stage, path: &Path) -> CoreResult<()> {
    match stage {
        Stage::Quantile(enc) => enc.save(path)?,
        Stage::Thermometer(enc) => enc.save(path)?,
        Stage::Standardize(std) => std.save(path)?,
    }
    Ok(())
}

/// Load one fitted [`Stage`] from `path`, dispatching on its stable
/// persistence tag ([`Stage::kind`]). An unknown tag is a typed
/// [`CoreError::Format`]. Counterpart of [`save_stage`].
pub fn load_stage(kind: &str, path: &Path) -> CoreResult<Stage> {
    match kind {
        "quantile" => Ok(Stage::Quantile(QuantileEncoder::load(path)?)),
        "thermometer" => Ok(Stage::Thermometer(ThermometerEncoder::load(path)?)),
        "standardize" => Ok(Stage::Standardize(Standardizer::load(path)?)),
        other => Err(CoreError::Format(format!(
            "unknown pipeline stage kind {other:?}"
        ))),
    }
}

fn vec_to_matrix(v: &[f32]) -> Matrix<f32> {
    Matrix::from_vec(1, v.len(), v.to_vec())
}

fn matrix_to_vec(m: Matrix<f32>) -> Vec<f32> {
    m.into_vec()
}

/// Persist one fitted [`Calibration`] to `path` (the `calibration.mat`
/// state file of `v4` directories). The parameters travel through the
/// bit-exact text matrix format: temperature as a `1x1` matrix, an
/// isotonic map as a `2xK` matrix (row 0 the breakpoints, row 1 the
/// values).
pub fn save_calibration(calibration: &Calibration, path: &Path) -> CoreResult<()> {
    let m = match calibration {
        Calibration::Temperature(t) => Matrix::from_vec(1, 1, vec![*t]),
        Calibration::Isotonic(map) => {
            let mut data = Vec::with_capacity(2 * map.xs().len());
            data.extend_from_slice(map.xs());
            data.extend_from_slice(map.ys());
            Matrix::from_vec(2, map.xs().len(), data)
        }
    };
    save_matrix(&m, path)?;
    Ok(())
}

/// Load one fitted [`Calibration`] from `path`, dispatching on its stable
/// persistence tag ([`Calibration::kind`]). Unknown tags, shape
/// mismatches, and parameter values that violate the calibration
/// invariants are all typed errors. Counterpart of [`save_calibration`].
pub fn load_calibration(kind: &str, path: &Path) -> CoreResult<Calibration> {
    let m: Matrix<f32> = load_matrix(path)?;
    let calibration = match kind {
        "temperature" => {
            if m.shape() != (1, 1) {
                return Err(CoreError::Format(format!(
                    "temperature calibration state must be 1x1, got {:?}",
                    m.shape()
                )));
            }
            Calibration::Temperature(m.as_slice()[0])
        }
        "isotonic" => {
            if m.rows() != 2 {
                return Err(CoreError::Format(format!(
                    "isotonic calibration state must have 2 rows, got {}",
                    m.rows()
                )));
            }
            Calibration::Isotonic(IsotonicMap::new(m.row(0).to_vec(), m.row(1).to_vec())?)
        }
        other => {
            return Err(CoreError::Format(format!(
                "unknown calibration kind {other:?}"
            )))
        }
    };
    calibration.validate()?;
    Ok(calibration)
}

/// Save a network into `dir` (created if missing), without any stages.
pub fn save_network<P: AsRef<Path>>(network: &Network, dir: P) -> CoreResult<()> {
    save_stages(network, &[], None, dir.as_ref())
}

/// Save a network into `dir` (created if missing) together with the fitted
/// input encoder, making the directory a self-contained serving artifact
/// that accepts raw (un-encoded) feature vectors.
///
/// Compatibility spelling for the canonical single-encoder chain; prefer
/// [`save_pipeline`], which persists arbitrary stage chains.
pub fn save_network_with_encoder<P: AsRef<Path>>(
    network: &Network,
    encoder: Option<&QuantileEncoder>,
    dir: P,
) -> CoreResult<()> {
    let stages: Vec<Stage> = encoder
        .map(|enc| Stage::Quantile(enc.clone()))
        .into_iter()
        .collect();
    save_stages(network, &stages, None, dir.as_ref())
}

/// Save a [`Pipeline`] — its fitted stage chain, any attached calibration,
/// plus the trained network — as a self-describing `v4` model directory.
pub fn save_pipeline<P: AsRef<Path>>(pipeline: &Pipeline, dir: P) -> CoreResult<()> {
    save_stages(
        pipeline.network(),
        pipeline.stages(),
        pipeline.calibration(),
        dir.as_ref(),
    )
}

fn save_stages(
    network: &Network,
    stages: &[Stage],
    calibration: Option<&Calibration>,
    dir: &Path,
) -> CoreResult<()> {
    let hp = network.hidden().params();
    // Validate the chain before touching the filesystem.
    crate::model::validate_chain(stages, hp.n_inputs)?;
    fs::create_dir_all(dir)?;
    let mut manifest = String::new();
    manifest.push_str(&format!("{MAGIC} {VERSION}\n"));
    manifest.push_str(&format!("n_inputs {}\n", hp.n_inputs));
    manifest.push_str(&format!("n_hcu {}\n", hp.n_hcu));
    manifest.push_str(&format!("n_mcu {}\n", hp.n_mcu));
    manifest.push_str(&format!("receptive_field {}\n", hp.receptive_field));
    manifest.push_str(&format!("trace_rate {}\n", hp.trace_rate));
    manifest.push_str(&format!("eps {}\n", hp.eps));
    manifest.push_str(&format!("bias_gain {}\n", hp.bias_gain));
    manifest.push_str(&format!("support_noise {}\n", hp.support_noise));
    manifest.push_str(&format!("plasticity_swaps {}\n", hp.plasticity_swaps));
    manifest.push_str(&format!("plasticity_interval {}\n", hp.plasticity_interval));
    manifest.push_str(&format!("n_classes {}\n", network.n_classes()));
    manifest.push_str(&format!("readout {}\n", network.readout_kind().name()));
    manifest.push_str(&format!("stages {}\n", stages.len()));
    for (i, stage) in stages.iter().enumerate() {
        manifest.push_str(&format!("stage{i} {}\n", stage.kind()));
        save_stage(stage, &dir.join(stage_file(i)))?;
    }
    // The calibration key (and its state file) exists only when a
    // calibration is attached, so uncalibrated v4 directories stay
    // byte-identical to v3 ones apart from the header version.
    if let Some(cal) = calibration {
        cal.validate()?;
        manifest.push_str(&format!("calibration {}\n", cal.kind()));
        save_calibration(cal, &dir.join(CALIBRATION_FILE))?;
    }
    fs::write(dir.join(MANIFEST), manifest)?;

    save_matrix(
        network.hidden().mask().as_matrix(),
        dir.join("hidden_mask.mat"),
    )?;
    let ht = network.hidden().traces();
    save_matrix(&vec_to_matrix(&ht.pi), dir.join("hidden_pi.mat"))?;
    save_matrix(&vec_to_matrix(&ht.pj), dir.join("hidden_pj.mat"))?;
    save_matrix(&ht.pij, dir.join("hidden_pij.mat"))?;

    if let Some(readout) = network.bcpnn_readout() {
        let rt = readout.traces();
        save_matrix(&vec_to_matrix(&rt.pi), dir.join("readout_pi.mat"))?;
        save_matrix(&vec_to_matrix(&rt.pj), dir.join("readout_pj.mat"))?;
        save_matrix(&rt.pij, dir.join("readout_pij.mat"))?;
    }
    if let Some(sgd) = network.sgd_readout() {
        save_matrix(sgd.weights(), dir.join("sgd_weights.mat"))?;
        save_matrix(&vec_to_matrix(sgd.bias()), dir.join("sgd_bias.mat"))?;
    }
    Ok(())
}

fn parse_manifest(path: &Path) -> CoreResult<(String, HashMap<String, String>)> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| CoreError::Format("empty manifest".into()))?;
    let mut hp = header.split_whitespace();
    let version = match (hp.next(), hp.next()) {
        (Some(m), Some(v)) if m == MAGIC && READABLE_VERSIONS.contains(&v) => v.to_string(),
        _ => {
            return Err(CoreError::Format(format!(
                "bad manifest header: {header:?}"
            )))
        }
    };
    let mut map = HashMap::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once(' ')
            .ok_or_else(|| CoreError::Format(format!("bad manifest line: {line:?}")))?;
        map.insert(k.to_string(), v.trim().to_string());
    }
    Ok((version, map))
}

fn get<T: std::str::FromStr>(map: &HashMap<String, String>, key: &str) -> CoreResult<T> {
    let raw = map
        .get(key)
        .ok_or_else(|| CoreError::Format(format!("manifest missing key {key:?}")))?;
    raw.parse::<T>()
        .map_err(|_| CoreError::Format(format!("manifest key {key:?} has invalid value {raw:?}")))
}

/// Load a network previously written by [`save_network`], instantiating it
/// on the given backend (backends are runtime configuration, not model
/// state, so the caller chooses). Any stages in the directory are ignored;
/// use [`load_pipeline`] to get the full artifact.
pub fn load_network<P: AsRef<Path>>(dir: P, backend: BackendKind) -> CoreResult<Network> {
    Ok(load_stages(dir.as_ref(), backend)?.0)
}

/// Versions whose manifests are stage-tagged (`stages N` + `stage<i>`
/// keys) rather than carrying the legacy `encoder` key.
fn is_stage_tagged(version: &str) -> bool {
    matches!(version, "v3" | "v4")
}

/// Load a network together with the fitted input encoder, if the directory
/// carries the canonical single-encoder chain (`v2` directories written by
/// [`save_network_with_encoder`], or `v3` directories whose only stage is
/// a quantile encoder). `v1` directories and stage-less directories yield
/// `None`; use [`load_pipeline`] for arbitrary stage chains.
pub fn load_network_with_encoder<P: AsRef<Path>>(
    dir: P,
    backend: BackendKind,
) -> CoreResult<(Network, Option<QuantileEncoder>)> {
    let (network, mut stages, _) = load_stages(dir.as_ref(), backend)?;
    let encoder = match (stages.len(), stages.pop()) {
        (1, Some(Stage::Quantile(enc))) => Some(enc),
        _ => None,
    };
    Ok((network, encoder))
}

/// Load a full [`Pipeline`] — the fitted stage chain, any attached
/// calibration, plus the trained network — from a `v1`–`v4` model
/// directory, instantiating the network on the given backend.
pub fn load_pipeline<P: AsRef<Path>>(dir: P, backend: BackendKind) -> CoreResult<Pipeline> {
    let (network, stages, calibration) = load_stages(dir.as_ref(), backend)?;
    let mut pipeline = Pipeline::from_stages(stages, network)?;
    pipeline.set_calibration(calibration)?;
    Ok(pipeline)
}

#[allow(clippy::type_complexity)]
fn load_stages(
    dir: &Path,
    backend: BackendKind,
) -> CoreResult<(Network, Vec<Stage>, Option<Calibration>)> {
    let (version, manifest) = parse_manifest(&dir.join(MANIFEST))?;
    let stages: Vec<Stage> = if is_stage_tagged(&version) {
        let n_stages: usize = get(&manifest, "stages")?;
        (0..n_stages)
            .map(|i| {
                let key = format!("stage{i}");
                let kind = manifest
                    .get(&key)
                    .ok_or_else(|| CoreError::Format(format!("manifest missing key {key:?}")))?;
                load_stage(kind, &dir.join(stage_file(i)))
            })
            .collect::<CoreResult<_>>()?
    } else {
        // v1 manifests have no `encoder` key at all; v2 tags one encoder.
        match manifest.get("encoder").map(String::as_str) {
            Some("quantile") => vec![Stage::Quantile(QuantileEncoder::load(
                dir.join(ENCODER_FILE),
            )?)],
            Some("none") | None => Vec::new(),
            Some(other) => {
                return Err(CoreError::Format(format!("unknown encoder kind {other:?}")))
            }
        }
    };
    // Only v4 manifests may carry a calibration; the key is absent when no
    // calibration was attached at save time.
    let calibration = match (version.as_str(), manifest.get("calibration")) {
        ("v4", Some(kind)) => Some(load_calibration(kind, &dir.join(CALIBRATION_FILE))?),
        _ => None,
    };
    let hidden = HiddenLayerParams {
        n_inputs: get(&manifest, "n_inputs")?,
        n_hcu: get(&manifest, "n_hcu")?,
        n_mcu: get(&manifest, "n_mcu")?,
        receptive_field: get(&manifest, "receptive_field")?,
        trace_rate: get(&manifest, "trace_rate")?,
        eps: get(&manifest, "eps")?,
        bias_gain: get(&manifest, "bias_gain")?,
        support_noise: get(&manifest, "support_noise")?,
        plasticity_swaps: get(&manifest, "plasticity_swaps")?,
        plasticity_interval: get(&manifest, "plasticity_interval")?,
    };
    let chain_out = stages.last().map(Transformer::output_width);
    if let Some(width) = chain_out {
        if width != hidden.n_inputs {
            return Err(CoreError::Format(format!(
                "pipeline stages produce {width} columns but the network expects {} \
                 (the stage files do not belong to this model)",
                hidden.n_inputs
            )));
        }
    }
    let n_classes: usize = get(&manifest, "n_classes")?;
    let readout_name: String = get(&manifest, "readout")?;
    let readout = ReadoutKind::parse(&readout_name)
        .ok_or_else(|| CoreError::Format(format!("unknown readout kind {readout_name:?}")))?;

    let mut network = NetworkBuilder::default()
        .hidden_params(hidden)
        .classes(n_classes)
        .readout(readout)
        .backend(backend)
        .classifier_params(BcpnnClassifierParams::default())
        .sgd_params(SgdParams::default())
        .build()?;

    // Hidden layer state.
    let mask_m: Matrix<f32> = load_matrix(dir.join("hidden_mask.mat"))?;
    let mask = ReceptiveFieldMask::from_matrix(mask_m);
    let traces = ProbabilityTraces {
        pi: matrix_to_vec(load_matrix(dir.join("hidden_pi.mat"))?),
        pj: matrix_to_vec(load_matrix(dir.join("hidden_pj.mat"))?),
        pij: load_matrix(dir.join("hidden_pij.mat"))?,
    };
    network.hidden_mut().restore_state(mask, traces)?;

    // BCPNN readout state.
    if network.bcpnn_readout().is_some() {
        let traces = ProbabilityTraces {
            pi: matrix_to_vec(load_matrix(dir.join("readout_pi.mat"))?),
            pj: matrix_to_vec(load_matrix(dir.join("readout_pj.mat"))?),
            pij: load_matrix(dir.join("readout_pij.mat"))?,
        };
        network
            .bcpnn_readout_mut()
            .expect("readout checked above")
            .restore_traces(traces)?;
    }

    // SGD readout state.
    if network.sgd_readout().is_some() {
        let weights: Matrix<f32> = load_matrix(dir.join("sgd_weights.mat"))?;
        let bias = matrix_to_vec(load_matrix(dir.join("sgd_bias.mat"))?);
        network
            .sgd_readout_mut()
            .expect("readout checked above")
            .set_parameters(weights, bias)?;
    }
    Ok((network, stages, calibration))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TrainingParams;
    use crate::training::Trainer;
    use bcpnn_tensor::MatrixRng;

    fn toy_data(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Vec<usize>) {
        let mut rng = MatrixRng::seed_from(seed);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let x = Matrix::from_fn(n, d, |r, c| {
            let cls = labels[r];
            let hot = if cls == 0 { c < d / 2 } else { c >= d / 2 };
            let p = if hot { 0.5 } else { 0.1 };
            f32::from(rng.uniform_scalar::<f64>(0.0, 1.0) < p)
        });
        (x, labels)
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("bcpnn_serialize_tests")
            .join(format!("{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let (x, y) = toy_data(200, 16, 1);
        let mut net = Network::builder()
            .input(16)
            .hidden(2, 4, 0.5)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(2)
            .build()
            .unwrap();
        Trainer::new(TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 3,
            batch_size: 32,
            seed: 3,
            shuffle: true,
        })
        .fit(&mut net, &x, &y)
        .unwrap();

        let dir = temp_dir("roundtrip");
        save_network(&net, &dir).unwrap();
        let loaded = load_network(&dir, BackendKind::Naive).unwrap();

        let (xt, _) = toy_data(50, 16, 4);
        let p_orig = net.predict_proba(&xt).unwrap();
        let p_load = loaded.predict_proba(&xt).unwrap();
        assert!(
            p_orig.max_abs_diff(&p_load) < 1e-4,
            "loaded network must predict identically (diff {})",
            p_orig.max_abs_diff(&p_load)
        );
        // The pure-BCPNN head also survives the roundtrip.
        let b_orig = net.predict_proba_with(ReadoutKind::Bcpnn, &xt).unwrap();
        let b_load = loaded.predict_proba_with(ReadoutKind::Bcpnn, &xt).unwrap();
        assert!(b_orig.max_abs_diff(&b_load) < 1e-4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_on_a_different_backend_gives_the_same_answers() {
        let (x, y) = toy_data(150, 16, 5);
        let mut net = Network::builder()
            .input(16)
            .hidden(1, 5, 0.6)
            .classes(2)
            .readout(ReadoutKind::Bcpnn)
            .backend(BackendKind::Parallel)
            .seed(6)
            .build()
            .unwrap();
        Trainer::new(TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 2,
            batch_size: 25,
            seed: 7,
            shuffle: false,
        })
        .fit(&mut net, &x, &y)
        .unwrap();
        let dir = temp_dir("cross_backend");
        save_network(&net, &dir).unwrap();
        let loaded = load_network(&dir, BackendKind::Naive).unwrap();
        let (xt, _) = toy_data(40, 16, 8);
        let a = net.predict_proba(&xt).unwrap();
        let b = loaded.predict_proba(&xt).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn encoder_rides_along_in_v2_directories() {
        use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};

        let data = generate(&SyntheticHiggsConfig {
            n_samples: 400,
            seed: 11,
            ..Default::default()
        });
        let encoder = QuantileEncoder::fit(&data, 10);
        let x = encoder.transform(&data);
        let mut net = Network::builder()
            .input(encoder.encoded_width())
            .hidden(2, 4, 0.3)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(12)
            .build()
            .unwrap();
        Trainer::new(TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 50,
            ..Default::default()
        })
        .fit(&mut net, &x, &data.labels)
        .unwrap();

        let dir = temp_dir("with_encoder");
        save_network_with_encoder(&net, Some(&encoder), &dir).unwrap();
        let (loaded, enc) = load_network_with_encoder(&dir, BackendKind::Naive).unwrap();
        let enc = enc.expect("v2 directory must carry the encoder");
        assert_eq!(enc, encoder);

        // Raw features -> encoded -> predictions match the original model.
        let fresh = generate(&SyntheticHiggsConfig {
            n_samples: 30,
            seed: 13,
            ..Default::default()
        });
        let direct = net.predict_proba(&encoder.transform(&fresh)).unwrap();
        let served = loaded
            .predict_proba(&enc.transform_rows(&fresh.features))
            .unwrap();
        assert!(direct.max_abs_diff(&served) < 1e-5);

        // Plain load_network still works and ignores the encoder.
        let plain = load_network(&dir, BackendKind::Naive).unwrap();
        assert!(
            plain
                .predict_proba(&encoder.transform(&fresh))
                .unwrap()
                .max_abs_diff(&direct)
                < 1e-5
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_encoder_width_is_rejected_at_save() {
        use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
        let data = generate(&SyntheticHiggsConfig {
            n_samples: 100,
            seed: 14,
            ..Default::default()
        });
        let encoder = QuantileEncoder::fit(&data, 10); // 280 columns
        let net = Network::builder()
            .input(16)
            .hidden(2, 4, 0.5)
            .classes(2)
            .backend(BackendKind::Naive)
            .build()
            .unwrap();
        let dir = temp_dir("bad_encoder_width");
        let err = save_network_with_encoder(&net, Some(&encoder), &dir).unwrap_err();
        assert!(matches!(err, CoreError::DataMismatch(_)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_directories_still_load() {
        let (x, y) = toy_data(120, 16, 20);
        let mut net = Network::builder()
            .input(16)
            .hidden(2, 3, 0.5)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(21)
            .build()
            .unwrap();
        Trainer::new(TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 30,
            ..Default::default()
        })
        .fit(&mut net, &x, &y)
        .unwrap();
        let dir = temp_dir("v1_compat");
        save_network(&net, &dir).unwrap();

        // Rewrite the manifest as a v1 writer would have produced it: v1
        // header, no `encoder` or `stage*` keys.
        let manifest_path = dir.join(MANIFEST);
        let text = fs::read_to_string(&manifest_path).unwrap();
        let v1_text: String = text
            .lines()
            .filter(|l| !l.starts_with("encoder ") && !l.starts_with("stage"))
            .map(|l| {
                if l.starts_with(MAGIC) {
                    format!("{MAGIC} v1\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        fs::write(&manifest_path, v1_text).unwrap();

        let (loaded, enc) = load_network_with_encoder(&dir, BackendKind::Naive).unwrap();
        assert!(enc.is_none(), "v1 directories carry no encoder");
        let (xt, _) = toy_data(20, 16, 22);
        assert!(
            net.predict_proba(&xt)
                .unwrap()
                .max_abs_diff(&loaded.predict_proba(&xt).unwrap())
                < 1e-4
        );
        fs::remove_dir_all(&dir).ok();
    }

    /// Write the directory the pre-v3 (`v2`) writer would have produced:
    /// `v2` header, `encoder quantile` key, state in `encoder.txt`.
    fn downgrade_to_v2(dir: &Path) {
        let manifest_path = dir.join(MANIFEST);
        let text = fs::read_to_string(&manifest_path).unwrap();
        let v2_text: String = text
            .lines()
            .filter_map(|l| {
                if l.starts_with(MAGIC) {
                    Some(format!("{MAGIC} v2\n"))
                } else if l == "stages 1" {
                    Some("encoder quantile\n".into())
                } else if l == "stages 0" {
                    Some("encoder none\n".into())
                } else if l.starts_with("stage0 ") {
                    None
                } else {
                    Some(format!("{l}\n"))
                }
            })
            .collect();
        fs::write(&manifest_path, v2_text).unwrap();
        if dir.join(stage_file(0)).exists() {
            fs::rename(dir.join(stage_file(0)), dir.join(ENCODER_FILE)).unwrap();
        }
    }

    #[test]
    fn v2_directories_load_into_the_v3_world() {
        let (pipeline, data) = crate::model::tests::tiny_pipeline(30);
        let dir = temp_dir("v2_compat");
        save_pipeline(&pipeline, &dir).unwrap();
        downgrade_to_v2(&dir);
        assert!(
            fs::read_to_string(dir.join(MANIFEST))
                .unwrap()
                .contains("encoder quantile"),
            "fixture must be a genuine v2 directory"
        );

        // Loads as a pipeline, as a (network, encoder) pair, and as a bare
        // network — all agreeing with the original model.
        let loaded = load_pipeline(&dir, BackendKind::Naive).unwrap();
        assert_eq!(loaded.stages().len(), 1);
        use crate::model::Predictor;
        let a = pipeline.predict_proba(&data.features).unwrap();
        let b = loaded.predict_proba(&data.features).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-6);
        let (_, enc) = load_network_with_encoder(&dir, BackendKind::Naive).unwrap();
        assert_eq!(enc.as_ref(), pipeline.encoder());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v3_roundtrip_is_bit_exact() {
        let (pipeline, data) = crate::model::tests::tiny_pipeline(31);
        let dir_a = temp_dir("v3_exact_a");
        let dir_b = temp_dir("v3_exact_b");
        save_pipeline(&pipeline, &dir_a).unwrap();
        let loaded = load_pipeline(&dir_a, BackendKind::Naive).unwrap();
        // Re-saving the loaded pipeline reproduces every file byte-exactly.
        save_pipeline(&loaded, &dir_b).unwrap();
        let mut names: Vec<String> = fs::read_dir(&dir_a)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert!(names.contains(&MANIFEST.to_string()));
        assert!(names.contains(&stage_file(0)));
        for name in &names {
            let a = fs::read(dir_a.join(name)).unwrap();
            let b = fs::read(dir_b.join(name)).unwrap();
            assert_eq!(a, b, "file {name} must round-trip bit-exactly");
        }
        // And predictions agree exactly.
        use crate::model::Predictor;
        let pa = pipeline.predict_proba(&data.features).unwrap();
        let pb = loaded.predict_proba(&data.features).unwrap();
        assert_eq!(pa, pb);
        fs::remove_dir_all(&dir_a).ok();
        fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn multi_stage_chains_persist_and_reload() {
        use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
        let data = generate(&SyntheticHiggsConfig {
            n_samples: 300,
            seed: 32,
            ..Default::default()
        });
        let standardizer = Standardizer::fit_matrix(&data.features);
        let z = standardizer.transform_rows(&data.features);
        let encoder = QuantileEncoder::fit_matrix(&z, 8);
        let x = encoder.transform_rows(&z);
        let mut net = Network::builder()
            .input(encoder.encoded_width())
            .hidden(2, 3, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(33)
            .build()
            .unwrap();
        Trainer::new(TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 50,
            ..Default::default()
        })
        .fit(&mut net, &x, &data.labels)
        .unwrap();
        let pipeline = Pipeline::from_stages(
            vec![Stage::Standardize(standardizer), Stage::Quantile(encoder)],
            net,
        )
        .unwrap();
        let dir = temp_dir("multi_stage");
        save_pipeline(&pipeline, &dir).unwrap();
        let manifest = fs::read_to_string(dir.join(MANIFEST)).unwrap();
        assert!(manifest.contains("stages 2"));
        assert!(manifest.contains("stage0 standardize"));
        assert!(manifest.contains("stage1 quantile"));

        let loaded = load_pipeline(&dir, BackendKind::Naive).unwrap();
        assert_eq!(loaded.stages(), pipeline.stages());
        use crate::model::Predictor;
        let a = pipeline.predict_proba(&data.features).unwrap();
        let b = loaded.predict_proba(&data.features).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-6);
        // The multi-stage chain is not the canonical encoder one.
        let (_, enc) = load_network_with_encoder(&dir, BackendKind::Naive).unwrap();
        assert!(enc.is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v4_calibration_rides_along_and_roundtrips_bit_exactly() {
        use crate::calibration::CalibrationMethod;
        use crate::model::Predictor;

        let (mut pipeline, data) = crate::model::tests::tiny_pipeline(40);
        let held_out = bcpnn_data::higgs::generate(&bcpnn_data::higgs::SyntheticHiggsConfig {
            n_samples: 120,
            seed: 41,
            ..Default::default()
        });
        pipeline
            .fit_calibration(
                &held_out.features,
                &held_out.labels,
                CalibrationMethod::Temperature,
            )
            .unwrap();
        let dir_a = temp_dir("v4_cal_a");
        let dir_b = temp_dir("v4_cal_b");
        save_pipeline(&pipeline, &dir_a).unwrap();
        let manifest = fs::read_to_string(dir_a.join(MANIFEST)).unwrap();
        assert!(manifest.starts_with("bcpnn-network v4"));
        assert!(manifest.contains("calibration temperature"));

        // Calibration survives the round trip and predictions agree
        // bit-exactly; the re-save reproduces every file byte for byte.
        let loaded = load_pipeline(&dir_a, BackendKind::Naive).unwrap();
        assert_eq!(loaded.calibration(), pipeline.calibration());
        assert_eq!(
            loaded.predict_proba(&data.features).unwrap(),
            pipeline.predict_proba(&data.features).unwrap()
        );
        save_pipeline(&loaded, &dir_b).unwrap();
        for entry in fs::read_dir(&dir_a).unwrap() {
            let name = entry.unwrap().file_name();
            let a = fs::read(dir_a.join(&name)).unwrap();
            let b = fs::read(dir_b.join(&name)).unwrap();
            assert_eq!(a, b, "file {name:?} must round-trip bit-exactly");
        }

        // Isotonic calibrations persist through the same path.
        let mut iso = load_pipeline(&dir_a, BackendKind::Naive).unwrap();
        iso.fit_calibration(
            &held_out.features,
            &held_out.labels,
            CalibrationMethod::Isotonic,
        )
        .unwrap();
        let dir_c = temp_dir("v4_cal_c");
        save_pipeline(&iso, &dir_c).unwrap();
        let iso_loaded = load_pipeline(&dir_c, BackendKind::Naive).unwrap();
        assert_eq!(iso_loaded.calibration(), iso.calibration());
        assert_eq!(
            iso_loaded.predict_proba(&data.features).unwrap(),
            iso.predict_proba(&data.features).unwrap()
        );

        // A corrupted calibration file is a typed error, not a panic.
        fs::write(dir_c.join(CALIBRATION_FILE), "garbage\n").unwrap();
        assert!(load_pipeline(&dir_c, BackendKind::Naive).is_err());
        // An unknown calibration kind is a typed error too.
        let text = fs::read_to_string(dir_a.join(MANIFEST))
            .unwrap()
            .replace("calibration temperature", "calibration platt");
        fs::write(dir_a.join(MANIFEST), text).unwrap();
        let err = load_pipeline(&dir_a, BackendKind::Naive).unwrap_err();
        assert!(matches!(err, CoreError::Format(_)), "got {err:?}");
        assert!(err.to_string().contains("platt"));
        fs::remove_dir_all(&dir_a).ok();
        fs::remove_dir_all(&dir_b).ok();
        fs::remove_dir_all(&dir_c).ok();
    }

    #[test]
    fn unknown_stage_tag_is_a_typed_error() {
        let (pipeline, _) = crate::model::tests::tiny_pipeline(34);
        let dir = temp_dir("unknown_stage");
        save_pipeline(&pipeline, &dir).unwrap();
        let manifest_path = dir.join(MANIFEST);
        let text = fs::read_to_string(&manifest_path)
            .unwrap()
            .replace("stage0 quantile", "stage0 wavelet");
        fs::write(&manifest_path, text).unwrap();
        let err = load_pipeline(&dir, BackendKind::Naive).unwrap_err();
        assert!(matches!(err, CoreError::Format(_)), "got {err:?}");
        assert!(err.to_string().contains("wavelet"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_stage_file_is_a_typed_error() {
        let (pipeline, _) = crate::model::tests::tiny_pipeline(35);
        let dir = temp_dir("corrupt_stage");
        save_pipeline(&pipeline, &dir).unwrap();
        fs::write(dir.join(stage_file(0)), "not an encoder\n").unwrap();
        let err = load_pipeline(&dir, BackendKind::Naive).unwrap_err();
        assert!(matches!(err, CoreError::Format(_)), "got {err:?}");
        // NaN boundaries parse as floats but must surface as a typed error
        // (not a panic deep inside the binner's ordering assertions).
        fs::write(
            dir.join(stage_file(0)),
            "bcpnn-quantile-encoder v1 1 3\nNaN 1.0\n",
        )
        .unwrap();
        let err = load_pipeline(&dir, BackendKind::Naive).unwrap_err();
        assert!(matches!(err, CoreError::Format(_)), "got {err:?}");
        // A stage file swapped in from a different model is caught by the
        // width check.
        let (other, _) = crate::model::tests::tiny_pipeline(36);
        let wrong_width = temp_dir("wrong_width_stage");
        save_pipeline(&other, &wrong_width).unwrap();
        let narrower = QuantileEncoder::fit_matrix(&Matrix::zeros(4, 28), 4);
        narrower.save(wrong_width.join(stage_file(0))).unwrap();
        let err = load_pipeline(&wrong_width, BackendKind::Naive).unwrap_err();
        assert!(matches!(err, CoreError::Format(_)), "got {err:?}");
        fs::remove_dir_all(&dir).ok();
        fs::remove_dir_all(&wrong_width).ok();
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = temp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(load_network(&dir, BackendKind::Naive).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_an_error() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST), "something-else v9\n").unwrap();
        let err = load_network(&dir, BackendKind::Naive).unwrap_err();
        assert!(matches!(err, CoreError::Format(_)));
        fs::remove_dir_all(&dir).ok();
    }
}
