//! Model persistence.
//!
//! A trained [`Network`] is saved as a directory containing a small
//! key/value manifest plus one text matrix file (see `bcpnn_tensor::io`)
//! per state tensor: the hidden mask, the hidden and readout probability
//! traces, and the SGD head parameters. Weights are *not* stored — they are
//! deterministic functions of the traces and are recomputed on load, which
//! both keeps the files small and guarantees the loaded model is internally
//! consistent.
//!
//! ## Format versions
//!
//! * `v1` — network state only.
//! * `v2` (current) — additionally records whether a fitted input encoder
//!   ships with the model (`encoder quantile` + `encoder.txt`), so a model
//!   directory can be a complete raw-features-in → probabilities-out
//!   serving artifact (see [`save_network_with_encoder`]). `v1` directories
//!   still load; they simply carry no encoder.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use bcpnn_backend::BackendKind;
use bcpnn_data::QuantileEncoder;
use bcpnn_tensor::{load_matrix, save_matrix, Matrix};

use crate::classifier::BcpnnClassifierParams;
use crate::error::{CoreError, CoreResult};
use crate::mask::ReceptiveFieldMask;
use crate::network::{Network, NetworkBuilder, ReadoutKind};
use crate::params::{HiddenLayerParams, SgdParams};
use crate::traces::ProbabilityTraces;

const MANIFEST: &str = "manifest.txt";
/// File the fitted input encoder is stored in (v2 directories only).
const ENCODER_FILE: &str = "encoder.txt";
const MAGIC: &str = "bcpnn-network";
/// Version written by [`save_network`] / [`save_network_with_encoder`].
const VERSION: &str = "v2";
/// Versions [`load_network`] accepts.
const READABLE_VERSIONS: [&str; 2] = ["v1", "v2"];

fn vec_to_matrix(v: &[f32]) -> Matrix<f32> {
    Matrix::from_vec(1, v.len(), v.to_vec())
}

fn matrix_to_vec(m: Matrix<f32>) -> Vec<f32> {
    m.into_vec()
}

/// Save a network into `dir` (created if missing), without an encoder.
pub fn save_network<P: AsRef<Path>>(network: &Network, dir: P) -> CoreResult<()> {
    save_network_with_encoder(network, None, dir)
}

/// Save a network into `dir` (created if missing) together with the fitted
/// input encoder, making the directory a self-contained serving artifact
/// that accepts raw (un-encoded) feature vectors.
pub fn save_network_with_encoder<P: AsRef<Path>>(
    network: &Network,
    encoder: Option<&QuantileEncoder>,
    dir: P,
) -> CoreResult<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let hp = network.hidden().params();
    let mut manifest = String::new();
    manifest.push_str(&format!("{MAGIC} {VERSION}\n"));
    manifest.push_str(&format!("n_inputs {}\n", hp.n_inputs));
    manifest.push_str(&format!("n_hcu {}\n", hp.n_hcu));
    manifest.push_str(&format!("n_mcu {}\n", hp.n_mcu));
    manifest.push_str(&format!("receptive_field {}\n", hp.receptive_field));
    manifest.push_str(&format!("trace_rate {}\n", hp.trace_rate));
    manifest.push_str(&format!("eps {}\n", hp.eps));
    manifest.push_str(&format!("bias_gain {}\n", hp.bias_gain));
    manifest.push_str(&format!("support_noise {}\n", hp.support_noise));
    manifest.push_str(&format!("plasticity_swaps {}\n", hp.plasticity_swaps));
    manifest.push_str(&format!("plasticity_interval {}\n", hp.plasticity_interval));
    manifest.push_str(&format!("n_classes {}\n", network.n_classes()));
    manifest.push_str(&format!("readout {}\n", network.readout_kind().name()));
    match encoder {
        Some(enc) => {
            if enc.encoded_width() != hp.n_inputs {
                return Err(CoreError::DataMismatch(format!(
                    "encoder produces {} columns but the network expects {}",
                    enc.encoded_width(),
                    hp.n_inputs
                )));
            }
            manifest.push_str("encoder quantile\n");
            enc.save(dir.join(ENCODER_FILE))?;
        }
        None => manifest.push_str("encoder none\n"),
    }
    fs::write(dir.join(MANIFEST), manifest)?;

    save_matrix(
        network.hidden().mask().as_matrix(),
        dir.join("hidden_mask.mat"),
    )?;
    let ht = network.hidden().traces();
    save_matrix(&vec_to_matrix(&ht.pi), dir.join("hidden_pi.mat"))?;
    save_matrix(&vec_to_matrix(&ht.pj), dir.join("hidden_pj.mat"))?;
    save_matrix(&ht.pij, dir.join("hidden_pij.mat"))?;

    if let Some(readout) = network.bcpnn_readout() {
        let rt = readout.traces();
        save_matrix(&vec_to_matrix(&rt.pi), dir.join("readout_pi.mat"))?;
        save_matrix(&vec_to_matrix(&rt.pj), dir.join("readout_pj.mat"))?;
        save_matrix(&rt.pij, dir.join("readout_pij.mat"))?;
    }
    if let Some(sgd) = network.sgd_readout() {
        save_matrix(sgd.weights(), dir.join("sgd_weights.mat"))?;
        save_matrix(&vec_to_matrix(sgd.bias()), dir.join("sgd_bias.mat"))?;
    }
    Ok(())
}

fn parse_manifest(path: &Path) -> CoreResult<(String, HashMap<String, String>)> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| CoreError::Format("empty manifest".into()))?;
    let mut hp = header.split_whitespace();
    let version = match (hp.next(), hp.next()) {
        (Some(m), Some(v)) if m == MAGIC && READABLE_VERSIONS.contains(&v) => v.to_string(),
        _ => {
            return Err(CoreError::Format(format!(
                "bad manifest header: {header:?}"
            )))
        }
    };
    let mut map = HashMap::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once(' ')
            .ok_or_else(|| CoreError::Format(format!("bad manifest line: {line:?}")))?;
        map.insert(k.to_string(), v.trim().to_string());
    }
    Ok((version, map))
}

fn get<T: std::str::FromStr>(map: &HashMap<String, String>, key: &str) -> CoreResult<T> {
    let raw = map
        .get(key)
        .ok_or_else(|| CoreError::Format(format!("manifest missing key {key:?}")))?;
    raw.parse::<T>()
        .map_err(|_| CoreError::Format(format!("manifest key {key:?} has invalid value {raw:?}")))
}

/// Load a network previously written by [`save_network`], instantiating it
/// on the given backend (backends are runtime configuration, not model
/// state, so the caller chooses). Any encoder in the directory is ignored;
/// use [`load_network_with_encoder`] to get it too.
pub fn load_network<P: AsRef<Path>>(dir: P, backend: BackendKind) -> CoreResult<Network> {
    Ok(load_network_with_encoder(dir, backend)?.0)
}

/// Load a network together with the fitted input encoder, if the directory
/// carries one (`v2` directories written by [`save_network_with_encoder`];
/// `v1` directories and encoder-less `v2` directories yield `None`).
pub fn load_network_with_encoder<P: AsRef<Path>>(
    dir: P,
    backend: BackendKind,
) -> CoreResult<(Network, Option<QuantileEncoder>)> {
    let dir = dir.as_ref();
    let (_version, manifest) = parse_manifest(&dir.join(MANIFEST))?;
    let encoder = match manifest.get("encoder").map(String::as_str) {
        Some("quantile") => Some(QuantileEncoder::load(dir.join(ENCODER_FILE))?),
        // v1 manifests have no `encoder` key at all.
        Some("none") | None => None,
        Some(other) => return Err(CoreError::Format(format!("unknown encoder kind {other:?}"))),
    };
    let hidden = HiddenLayerParams {
        n_inputs: get(&manifest, "n_inputs")?,
        n_hcu: get(&manifest, "n_hcu")?,
        n_mcu: get(&manifest, "n_mcu")?,
        receptive_field: get(&manifest, "receptive_field")?,
        trace_rate: get(&manifest, "trace_rate")?,
        eps: get(&manifest, "eps")?,
        bias_gain: get(&manifest, "bias_gain")?,
        support_noise: get(&manifest, "support_noise")?,
        plasticity_swaps: get(&manifest, "plasticity_swaps")?,
        plasticity_interval: get(&manifest, "plasticity_interval")?,
    };
    if let Some(enc) = &encoder {
        if enc.encoded_width() != hidden.n_inputs {
            return Err(CoreError::Format(format!(
                "encoder produces {} columns but the network expects {} \
                 (encoder.txt does not belong to this model)",
                enc.encoded_width(),
                hidden.n_inputs
            )));
        }
    }
    let n_classes: usize = get(&manifest, "n_classes")?;
    let readout_name: String = get(&manifest, "readout")?;
    let readout = ReadoutKind::parse(&readout_name)
        .ok_or_else(|| CoreError::Format(format!("unknown readout kind {readout_name:?}")))?;

    let mut network = NetworkBuilder::default()
        .hidden_params(hidden)
        .classes(n_classes)
        .readout(readout)
        .backend(backend)
        .classifier_params(BcpnnClassifierParams::default())
        .sgd_params(SgdParams::default())
        .build()?;

    // Hidden layer state.
    let mask_m: Matrix<f32> = load_matrix(dir.join("hidden_mask.mat"))?;
    let mask = ReceptiveFieldMask::from_matrix(mask_m);
    let traces = ProbabilityTraces {
        pi: matrix_to_vec(load_matrix(dir.join("hidden_pi.mat"))?),
        pj: matrix_to_vec(load_matrix(dir.join("hidden_pj.mat"))?),
        pij: load_matrix(dir.join("hidden_pij.mat"))?,
    };
    network.hidden_mut().restore_state(mask, traces)?;

    // BCPNN readout state.
    if network.bcpnn_readout().is_some() {
        let traces = ProbabilityTraces {
            pi: matrix_to_vec(load_matrix(dir.join("readout_pi.mat"))?),
            pj: matrix_to_vec(load_matrix(dir.join("readout_pj.mat"))?),
            pij: load_matrix(dir.join("readout_pij.mat"))?,
        };
        network
            .bcpnn_readout_mut()
            .expect("readout checked above")
            .restore_traces(traces)?;
    }

    // SGD readout state.
    if network.sgd_readout().is_some() {
        let weights: Matrix<f32> = load_matrix(dir.join("sgd_weights.mat"))?;
        let bias = matrix_to_vec(load_matrix(dir.join("sgd_bias.mat"))?);
        network
            .sgd_readout_mut()
            .expect("readout checked above")
            .set_parameters(weights, bias)?;
    }
    Ok((network, encoder))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TrainingParams;
    use crate::training::Trainer;
    use bcpnn_tensor::MatrixRng;

    fn toy_data(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Vec<usize>) {
        let mut rng = MatrixRng::seed_from(seed);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let x = Matrix::from_fn(n, d, |r, c| {
            let cls = labels[r];
            let hot = if cls == 0 { c < d / 2 } else { c >= d / 2 };
            let p = if hot { 0.5 } else { 0.1 };
            f32::from(rng.uniform_scalar::<f64>(0.0, 1.0) < p)
        });
        (x, labels)
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("bcpnn_serialize_tests")
            .join(format!("{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let (x, y) = toy_data(200, 16, 1);
        let mut net = Network::builder()
            .input(16)
            .hidden(2, 4, 0.5)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(2)
            .build()
            .unwrap();
        Trainer::new(TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 3,
            batch_size: 32,
            seed: 3,
            shuffle: true,
        })
        .fit(&mut net, &x, &y)
        .unwrap();

        let dir = temp_dir("roundtrip");
        save_network(&net, &dir).unwrap();
        let loaded = load_network(&dir, BackendKind::Naive).unwrap();

        let (xt, _) = toy_data(50, 16, 4);
        let p_orig = net.predict_proba(&xt).unwrap();
        let p_load = loaded.predict_proba(&xt).unwrap();
        assert!(
            p_orig.max_abs_diff(&p_load) < 1e-4,
            "loaded network must predict identically (diff {})",
            p_orig.max_abs_diff(&p_load)
        );
        // The pure-BCPNN head also survives the roundtrip.
        let b_orig = net.predict_proba_with(ReadoutKind::Bcpnn, &xt).unwrap();
        let b_load = loaded.predict_proba_with(ReadoutKind::Bcpnn, &xt).unwrap();
        assert!(b_orig.max_abs_diff(&b_load) < 1e-4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_on_a_different_backend_gives_the_same_answers() {
        let (x, y) = toy_data(150, 16, 5);
        let mut net = Network::builder()
            .input(16)
            .hidden(1, 5, 0.6)
            .classes(2)
            .readout(ReadoutKind::Bcpnn)
            .backend(BackendKind::Parallel)
            .seed(6)
            .build()
            .unwrap();
        Trainer::new(TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 2,
            batch_size: 25,
            seed: 7,
            shuffle: false,
        })
        .fit(&mut net, &x, &y)
        .unwrap();
        let dir = temp_dir("cross_backend");
        save_network(&net, &dir).unwrap();
        let loaded = load_network(&dir, BackendKind::Naive).unwrap();
        let (xt, _) = toy_data(40, 16, 8);
        let a = net.predict_proba(&xt).unwrap();
        let b = loaded.predict_proba(&xt).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn encoder_rides_along_in_v2_directories() {
        use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};

        let data = generate(&SyntheticHiggsConfig {
            n_samples: 400,
            seed: 11,
            ..Default::default()
        });
        let encoder = QuantileEncoder::fit(&data, 10);
        let x = encoder.transform(&data);
        let mut net = Network::builder()
            .input(encoder.encoded_width())
            .hidden(2, 4, 0.3)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(12)
            .build()
            .unwrap();
        Trainer::new(TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 50,
            ..Default::default()
        })
        .fit(&mut net, &x, &data.labels)
        .unwrap();

        let dir = temp_dir("with_encoder");
        save_network_with_encoder(&net, Some(&encoder), &dir).unwrap();
        let (loaded, enc) = load_network_with_encoder(&dir, BackendKind::Naive).unwrap();
        let enc = enc.expect("v2 directory must carry the encoder");
        assert_eq!(enc, encoder);

        // Raw features -> encoded -> predictions match the original model.
        let fresh = generate(&SyntheticHiggsConfig {
            n_samples: 30,
            seed: 13,
            ..Default::default()
        });
        let direct = net.predict_proba(&encoder.transform(&fresh)).unwrap();
        let served = loaded
            .predict_proba(&enc.transform_rows(&fresh.features))
            .unwrap();
        assert!(direct.max_abs_diff(&served) < 1e-5);

        // Plain load_network still works and ignores the encoder.
        let plain = load_network(&dir, BackendKind::Naive).unwrap();
        assert!(
            plain
                .predict_proba(&encoder.transform(&fresh))
                .unwrap()
                .max_abs_diff(&direct)
                < 1e-5
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_encoder_width_is_rejected_at_save() {
        use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
        let data = generate(&SyntheticHiggsConfig {
            n_samples: 100,
            seed: 14,
            ..Default::default()
        });
        let encoder = QuantileEncoder::fit(&data, 10); // 280 columns
        let net = Network::builder()
            .input(16)
            .hidden(2, 4, 0.5)
            .classes(2)
            .backend(BackendKind::Naive)
            .build()
            .unwrap();
        let dir = temp_dir("bad_encoder_width");
        let err = save_network_with_encoder(&net, Some(&encoder), &dir).unwrap_err();
        assert!(matches!(err, CoreError::DataMismatch(_)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_directories_still_load() {
        let (x, y) = toy_data(120, 16, 20);
        let mut net = Network::builder()
            .input(16)
            .hidden(2, 3, 0.5)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(21)
            .build()
            .unwrap();
        Trainer::new(TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 30,
            ..Default::default()
        })
        .fit(&mut net, &x, &y)
        .unwrap();
        let dir = temp_dir("v1_compat");
        save_network(&net, &dir).unwrap();

        // Rewrite the manifest as a v1 writer would have produced it: v1
        // header, no `encoder` key.
        let manifest_path = dir.join(MANIFEST);
        let text = fs::read_to_string(&manifest_path).unwrap();
        let v1_text: String = text
            .lines()
            .filter(|l| !l.starts_with("encoder "))
            .map(|l| {
                if l.starts_with(MAGIC) {
                    format!("{MAGIC} v1\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        fs::write(&manifest_path, v1_text).unwrap();

        let (loaded, enc) = load_network_with_encoder(&dir, BackendKind::Naive).unwrap();
        assert!(enc.is_none(), "v1 directories carry no encoder");
        let (xt, _) = toy_data(20, 16, 22);
        assert!(
            net.predict_proba(&xt)
                .unwrap()
                .max_abs_diff(&loaded.predict_proba(&xt).unwrap())
                < 1e-4
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = temp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(load_network(&dir, BackendKind::Naive).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_an_error() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST), "something-else v9\n").unwrap();
        let err = load_network(&dir, BackendKind::Naive).unwrap_err();
        assert!(matches!(err, CoreError::Format(_)));
        fs::remove_dir_all(&dir).ok();
    }
}
