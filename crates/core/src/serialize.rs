//! Model persistence.
//!
//! A trained [`Network`] is saved as a directory containing a small
//! key/value manifest plus one text matrix file (see `bcpnn_tensor::io`)
//! per state tensor: the hidden mask, the hidden and readout probability
//! traces, and the SGD head parameters. Weights are *not* stored — they are
//! deterministic functions of the traces and are recomputed on load, which
//! both keeps the files small and guarantees the loaded model is internally
//! consistent.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use bcpnn_backend::BackendKind;
use bcpnn_tensor::{load_matrix, save_matrix, Matrix};

use crate::classifier::BcpnnClassifierParams;
use crate::error::{CoreError, CoreResult};
use crate::mask::ReceptiveFieldMask;
use crate::network::{Network, NetworkBuilder, ReadoutKind};
use crate::params::{HiddenLayerParams, SgdParams};
use crate::traces::ProbabilityTraces;

const MANIFEST: &str = "manifest.txt";
const MAGIC: &str = "bcpnn-network";
const VERSION: &str = "v1";

fn vec_to_matrix(v: &[f32]) -> Matrix<f32> {
    Matrix::from_vec(1, v.len(), v.to_vec())
}

fn matrix_to_vec(m: Matrix<f32>) -> Vec<f32> {
    m.into_vec()
}

/// Save a network into `dir` (created if missing).
pub fn save_network<P: AsRef<Path>>(network: &Network, dir: P) -> CoreResult<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let hp = network.hidden().params();
    let mut manifest = String::new();
    manifest.push_str(&format!("{MAGIC} {VERSION}\n"));
    manifest.push_str(&format!("n_inputs {}\n", hp.n_inputs));
    manifest.push_str(&format!("n_hcu {}\n", hp.n_hcu));
    manifest.push_str(&format!("n_mcu {}\n", hp.n_mcu));
    manifest.push_str(&format!("receptive_field {}\n", hp.receptive_field));
    manifest.push_str(&format!("trace_rate {}\n", hp.trace_rate));
    manifest.push_str(&format!("eps {}\n", hp.eps));
    manifest.push_str(&format!("bias_gain {}\n", hp.bias_gain));
    manifest.push_str(&format!("support_noise {}\n", hp.support_noise));
    manifest.push_str(&format!("plasticity_swaps {}\n", hp.plasticity_swaps));
    manifest.push_str(&format!("plasticity_interval {}\n", hp.plasticity_interval));
    manifest.push_str(&format!("n_classes {}\n", network.n_classes()));
    manifest.push_str(&format!("readout {}\n", network.readout_kind().name()));
    fs::write(dir.join(MANIFEST), manifest)?;

    save_matrix(network.hidden().mask().as_matrix(), dir.join("hidden_mask.mat"))?;
    let ht = network.hidden().traces();
    save_matrix(&vec_to_matrix(&ht.pi), dir.join("hidden_pi.mat"))?;
    save_matrix(&vec_to_matrix(&ht.pj), dir.join("hidden_pj.mat"))?;
    save_matrix(&ht.pij, dir.join("hidden_pij.mat"))?;

    if let Some(readout) = network.bcpnn_readout() {
        let rt = readout.traces();
        save_matrix(&vec_to_matrix(&rt.pi), dir.join("readout_pi.mat"))?;
        save_matrix(&vec_to_matrix(&rt.pj), dir.join("readout_pj.mat"))?;
        save_matrix(&rt.pij, dir.join("readout_pij.mat"))?;
    }
    if let Some(sgd) = network.sgd_readout() {
        save_matrix(sgd.weights(), dir.join("sgd_weights.mat"))?;
        save_matrix(&vec_to_matrix(sgd.bias()), dir.join("sgd_bias.mat"))?;
    }
    Ok(())
}

fn parse_manifest(path: &Path) -> CoreResult<HashMap<String, String>> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| CoreError::Format("empty manifest".into()))?;
    let mut hp = header.split_whitespace();
    if hp.next() != Some(MAGIC) || hp.next() != Some(VERSION) {
        return Err(CoreError::Format(format!("bad manifest header: {header:?}")));
    }
    let mut map = HashMap::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once(' ')
            .ok_or_else(|| CoreError::Format(format!("bad manifest line: {line:?}")))?;
        map.insert(k.to_string(), v.trim().to_string());
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(map: &HashMap<String, String>, key: &str) -> CoreResult<T> {
    let raw = map
        .get(key)
        .ok_or_else(|| CoreError::Format(format!("manifest missing key {key:?}")))?;
    raw.parse::<T>()
        .map_err(|_| CoreError::Format(format!("manifest key {key:?} has invalid value {raw:?}")))
}

/// Load a network previously written by [`save_network`], instantiating it
/// on the given backend (backends are runtime configuration, not model
/// state, so the caller chooses).
pub fn load_network<P: AsRef<Path>>(dir: P, backend: BackendKind) -> CoreResult<Network> {
    let dir = dir.as_ref();
    let manifest = parse_manifest(&dir.join(MANIFEST))?;
    let hidden = HiddenLayerParams {
        n_inputs: get(&manifest, "n_inputs")?,
        n_hcu: get(&manifest, "n_hcu")?,
        n_mcu: get(&manifest, "n_mcu")?,
        receptive_field: get(&manifest, "receptive_field")?,
        trace_rate: get(&manifest, "trace_rate")?,
        eps: get(&manifest, "eps")?,
        bias_gain: get(&manifest, "bias_gain")?,
        support_noise: get(&manifest, "support_noise")?,
        plasticity_swaps: get(&manifest, "plasticity_swaps")?,
        plasticity_interval: get(&manifest, "plasticity_interval")?,
    };
    let n_classes: usize = get(&manifest, "n_classes")?;
    let readout_name: String = get(&manifest, "readout")?;
    let readout = ReadoutKind::parse(&readout_name)
        .ok_or_else(|| CoreError::Format(format!("unknown readout kind {readout_name:?}")))?;

    let mut network = NetworkBuilder::default()
        .hidden_params(hidden)
        .classes(n_classes)
        .readout(readout)
        .backend(backend)
        .classifier_params(BcpnnClassifierParams::default())
        .sgd_params(SgdParams::default())
        .build()?;

    // Hidden layer state.
    let mask_m: Matrix<f32> = load_matrix(dir.join("hidden_mask.mat"))?;
    let mask = ReceptiveFieldMask::from_matrix(mask_m);
    let traces = ProbabilityTraces {
        pi: matrix_to_vec(load_matrix(dir.join("hidden_pi.mat"))?),
        pj: matrix_to_vec(load_matrix(dir.join("hidden_pj.mat"))?),
        pij: load_matrix(dir.join("hidden_pij.mat"))?,
    };
    network.hidden_mut().restore_state(mask, traces)?;

    // BCPNN readout state.
    if network.bcpnn_readout().is_some() {
        let traces = ProbabilityTraces {
            pi: matrix_to_vec(load_matrix(dir.join("readout_pi.mat"))?),
            pj: matrix_to_vec(load_matrix(dir.join("readout_pj.mat"))?),
            pij: load_matrix(dir.join("readout_pij.mat"))?,
        };
        network
            .bcpnn_readout_mut()
            .expect("readout checked above")
            .restore_traces(traces)?;
    }

    // SGD readout state.
    if network.sgd_readout().is_some() {
        let weights: Matrix<f32> = load_matrix(dir.join("sgd_weights.mat"))?;
        let bias = matrix_to_vec(load_matrix(dir.join("sgd_bias.mat"))?);
        network
            .sgd_readout_mut()
            .expect("readout checked above")
            .set_parameters(weights, bias)?;
    }
    Ok(network)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TrainingParams;
    use crate::training::Trainer;
    use bcpnn_tensor::MatrixRng;

    fn toy_data(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Vec<usize>) {
        let mut rng = MatrixRng::seed_from(seed);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let x = Matrix::from_fn(n, d, |r, c| {
            let cls = labels[r];
            let hot = if cls == 0 { c < d / 2 } else { c >= d / 2 };
            let p = if hot { 0.5 } else { 0.1 };
            f32::from(rng.uniform_scalar::<f64>(0.0, 1.0) < p)
        });
        (x, labels)
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("bcpnn_serialize_tests")
            .join(format!("{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let (x, y) = toy_data(200, 16, 1);
        let mut net = Network::builder()
            .input(16)
            .hidden(2, 4, 0.5)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(2)
            .build()
            .unwrap();
        Trainer::new(TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 3,
            batch_size: 32,
            seed: 3,
            shuffle: true,
        })
        .fit(&mut net, &x, &y)
        .unwrap();

        let dir = temp_dir("roundtrip");
        save_network(&net, &dir).unwrap();
        let loaded = load_network(&dir, BackendKind::Naive).unwrap();

        let (xt, _) = toy_data(50, 16, 4);
        let p_orig = net.predict_proba(&xt).unwrap();
        let p_load = loaded.predict_proba(&xt).unwrap();
        assert!(
            p_orig.max_abs_diff(&p_load) < 1e-4,
            "loaded network must predict identically (diff {})",
            p_orig.max_abs_diff(&p_load)
        );
        // The pure-BCPNN head also survives the roundtrip.
        let b_orig = net.predict_proba_with(ReadoutKind::Bcpnn, &xt).unwrap();
        let b_load = loaded.predict_proba_with(ReadoutKind::Bcpnn, &xt).unwrap();
        assert!(b_orig.max_abs_diff(&b_load) < 1e-4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_on_a_different_backend_gives_the_same_answers() {
        let (x, y) = toy_data(150, 16, 5);
        let mut net = Network::builder()
            .input(16)
            .hidden(1, 5, 0.6)
            .classes(2)
            .readout(ReadoutKind::Bcpnn)
            .backend(BackendKind::Parallel)
            .seed(6)
            .build()
            .unwrap();
        Trainer::new(TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 2,
            batch_size: 25,
            seed: 7,
            shuffle: false,
        })
        .fit(&mut net, &x, &y)
        .unwrap();
        let dir = temp_dir("cross_backend");
        save_network(&net, &dir).unwrap();
        let loaded = load_network(&dir, BackendKind::Naive).unwrap();
        let (xt, _) = toy_data(40, 16, 8);
        let a = net.predict_proba(&xt).unwrap();
        let b = loaded.predict_proba(&xt).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = temp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(load_network(&dir, BackendKind::Naive).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_an_error() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST), "something-else v9\n").unwrap();
        let err = load_network(&dir, BackendKind::Naive).unwrap_err();
        assert!(matches!(err, CoreError::Format(_)));
        fs::remove_dir_all(&dir).ok();
    }
}
