//! Error type for the core BCPNN crate.

use std::fmt;

/// Errors surfaced by model construction, training and persistence.
///
/// Marked `#[non_exhaustive]`: new failure modes may be added without a
/// breaking change, so downstream matches need a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A hyperparameter combination failed validation.
    InvalidParams(String),
    /// Input data did not match the model (wrong width, empty set, label out
    /// of range, ...).
    DataMismatch(String),
    /// Persistence failure while saving or loading a model.
    Io(std::io::Error),
    /// A serialized model was malformed.
    Format(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            CoreError::DataMismatch(msg) => write!(f, "data mismatch: {msg}"),
            CoreError::Io(e) => write!(f, "I/O error: {e}"),
            CoreError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

impl From<bcpnn_tensor::IoError> for CoreError {
    fn from(e: bcpnn_tensor::IoError) -> Self {
        match e {
            bcpnn_tensor::IoError::Io(io) => CoreError::Io(io),
            bcpnn_tensor::IoError::Format(msg) => CoreError::Format(msg),
        }
    }
}

/// Convenience alias used across the crate.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::InvalidParams("n_mcu must be positive".into());
        assert!(e.to_string().contains("n_mcu"));
        let e = CoreError::DataMismatch("expected 280 columns".into());
        assert!(e.to_string().contains("280"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: CoreError = io.into();
        assert!(matches!(e, CoreError::Io(_)));
        let fe: CoreError = bcpnn_tensor::IoError::Format("bad".into()).into();
        assert!(matches!(fe, CoreError::Format(_)));
    }
}
