//! # bcpnn-core
//!
//! The Bayesian Confidence Propagation Neural Network (BCPNN), as used for
//! Higgs-boson classification in the StreamBrain paper (Svedin et al.,
//! CLUSTER 2021).
//!
//! The model is a three-layer network (input → hidden → classification)
//! whose hidden layer is a population of **hypercolumn units** (HCUs), each
//! containing `n_mcu` **minicolumn units** (MCUs) competing through a
//! softmax over the HCU's sparse, learned receptive field. Learning is
//! purely local: probability traces (`p_i`, `p_j`, `p_ij`) accumulate batch
//! statistics and the weights are their log-odds — no backpropagation.
//! **Structural plasticity** re-learns *where* each HCU looks, by swapping
//! low-information active connections for high-information silent ones once
//! per epoch. Supervision only enters in the output layer, either as a
//! BCPNN associative readout or as an SGD-trained softmax head (the paper's
//! "BCPNN + SGD" hybrid).
//!
//! ```
//! use bcpnn_core::{Network, ReadoutKind, Trainer, TrainingParams};
//! use bcpnn_backend::BackendKind;
//! use bcpnn_tensor::{Matrix, MatrixRng};
//!
//! // A tiny separable toy problem (the real pipeline feeds quantile-encoded
//! // Higgs collisions from `bcpnn-data`).
//! let mut rng = MatrixRng::seed_from(0);
//! let labels: Vec<usize> = (0..128).map(|i| i % 2).collect();
//! let x = Matrix::from_fn(128, 20, |r, c| {
//!     let hot = if labels[r] == 0 { c < 10 } else { c >= 10 };
//!     f32::from(rng.uniform_scalar::<f64>(0.0, 1.0) < if hot { 0.5 } else { 0.1 })
//! });
//!
//! let mut net = Network::builder()
//!     .input(20)
//!     .hidden(2, 4, 0.5)            // 2 HCUs x 4 MCUs, 50% receptive field
//!     .classes(2)
//!     .readout(ReadoutKind::Hybrid) // BCPNN features + SGD head
//!     .backend(BackendKind::Parallel)
//!     .seed(1)
//!     .build()
//!     .unwrap();
//! let trainer = Trainer::new(TrainingParams {
//!     unsupervised_epochs: 2,
//!     supervised_epochs: 2,
//!     batch_size: 32,
//!     ..Default::default()
//! });
//! trainer.fit(&mut net, &x, &labels).unwrap();
//! let report = net.evaluate(&x, &labels).unwrap();
//! assert!(report.accuracy > 0.5);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod calibration;
mod classifier;
mod error;
mod hcu;
mod mask;
pub mod metrics;
pub mod model;
mod network;
mod params;
mod plasticity;
mod serialize;
mod sgd;
mod traces;
mod training;
pub mod uncertainty;
pub mod workspace;

pub use baseline::{MlpClassifier, MlpParams};
pub use calibration::{Calibration, CalibrationMethod, IsotonicMap};
pub use classifier::{BcpnnClassifier, BcpnnClassifierParams};
pub use error::{CoreError, CoreResult};
pub use hcu::HiddenLayer;
pub use mask::ReceptiveFieldMask;
pub use metrics::EvalReport;
pub use model::{
    Estimator, NetworkEstimator, Pipeline, PipelineEstimator, Predictor, Stage, Transformer,
};
pub use network::{Network, NetworkBuilder, ReadoutKind};
pub use params::{HiddenLayerParams, SgdParams, TrainingParams};
pub use plasticity::{PlasticityConfig, PlasticityReport, StructuralPlasticity};
pub use serialize::{
    load_calibration, load_network, load_network_with_encoder, load_pipeline, load_stage,
    save_calibration, save_network, save_network_with_encoder, save_pipeline, save_stage,
};
pub use sgd::SgdClassifier;
pub use traces::ProbabilityTraces;
pub use training::{EpochStats, FitReport, Trainer, TrainingObserver, TrainingPhase};
pub use workspace::Workspace;
