//! The unified estimator/transformer model API: one `fit → predict`
//! surface from core training to serving.
//!
//! Every layer of the reproduction talks to models through three small
//! traits, in the scikit-learn tradition of separating the *estimation
//! procedure* from the *fitted model*:
//!
//! * [`Transformer`] — a fittable feature map (`fit` / `transform` /
//!   `fit_transform`). The `bcpnn-data` encoders ([`QuantileEncoder`],
//!   [`ThermometerEncoder`], [`Standardizer`]) all implement it.
//! * [`Estimator`] — a configuration that consumes training data and
//!   yields a fitted [`Predictor`]. [`NetworkEstimator`] (builder +
//!   training schedule → [`Network`]) and [`PipelineEstimator`] (encoder
//!   parameters + network estimator → [`Pipeline`]) implement it.
//! * [`Predictor`] — a fitted model: `predict_proba` / `predict` /
//!   `n_inputs` / `n_classes` (plus a default `evaluate`). Implemented by
//!   [`Network`], by the readout heads ([`BcpnnClassifier`],
//!   [`SgdClassifier`] over hidden activations), and by [`Pipeline`].
//!
//! [`Pipeline`] is the deployable artifact: a chain of fitted transformer
//! [`Stage`]s in front of a trained network, so raw feature vectors go in
//! and class probabilities come out. It persists as a self-describing
//! stage-tagged `v3` model directory (`v1`/`v2` directories still load);
//! `bcpnn-serve` serves any `Predictor` — a loaded `Pipeline` being the
//! common case.
//!
//! # Fitting an estimator
//!
//! ```
//! use bcpnn_backend::BackendKind;
//! use bcpnn_core::model::{Estimator, NetworkEstimator, Predictor};
//! use bcpnn_core::{Network, TrainingParams};
//! use bcpnn_tensor::Matrix;
//!
//! // A tiny separable toy problem.
//! let labels: Vec<usize> = (0..64).map(|i| i % 2).collect();
//! let x = Matrix::from_fn(64, 8, |r, c| {
//!     f32::from(if labels[r] == 0 { c < 4 } else { c >= 4 })
//! });
//!
//! let estimator = NetworkEstimator::new(
//!     Network::builder()
//!         .input(8)
//!         .hidden(1, 4, 0.5)
//!         .classes(2)
//!         .backend(BackendKind::Naive)
//!         .seed(1),
//!     TrainingParams {
//!         unsupervised_epochs: 1,
//!         supervised_epochs: 2,
//!         batch_size: 16,
//!         ..Default::default()
//!     },
//! );
//! let fitted = estimator.fit(&x, &labels).unwrap();
//! assert_eq!(fitted.n_inputs(), 8);
//! assert_eq!(fitted.n_classes(), 2);
//! let report = fitted.evaluate(&x, &labels).unwrap();
//! assert!(report.accuracy > 0.5);
//! ```
//!
//! # Transformers and pipelines
//!
//! ```
//! use bcpnn_core::model::{Predictor, Transformer};
//! use bcpnn_core::{Network, Pipeline, TrainingParams};
//! use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
//! use bcpnn_data::QuantileEncoder;
//!
//! let data = generate(&SyntheticHiggsConfig { n_samples: 200, ..Default::default() });
//!
//! // A fitted transformer maps 28 raw features to 280 binary inputs.
//! // (`Transformer::transform` works on bare matrices; the inherent
//! // `transform` keeps its dataset-level spelling.)
//! let mut encoder = QuantileEncoder::fit_matrix(&data.features, 10);
//! let encoded = Transformer::transform(&encoder, &data.features).unwrap();
//! assert_eq!(encoded.cols(), encoder.output_width());
//! encoder.fit(&data.features).unwrap(); // transformers re-fit in place
//!
//! // Pipeline::fit is the one-call spelling: encoder + network together.
//! let (pipeline, _report) = Pipeline::fit(
//!     &data,
//!     10,
//!     Network::builder()
//!         .hidden(1, 4, 0.4)
//!         .classes(2)
//!         .backend(bcpnn_backend::BackendKind::Naive),
//!     TrainingParams {
//!         unsupervised_epochs: 1,
//!         supervised_epochs: 1,
//!         batch_size: 50,
//!         ..Default::default()
//!     },
//! )
//! .unwrap();
//! let proba = pipeline.predict_proba(&data.features).unwrap();
//! assert_eq!(proba.shape(), (200, 2));
//! ```

use bcpnn_data::encode::{QuantileEncoder, Standardizer, ThermometerEncoder};
use bcpnn_data::Dataset;
use bcpnn_tensor::Matrix;

use crate::calibration::{Calibration, CalibrationMethod};
use crate::classifier::BcpnnClassifier;
use crate::error::{CoreError, CoreResult};
use crate::metrics::EvalReport;
use crate::network::{Network, NetworkBuilder};
use crate::params::TrainingParams;
use crate::sgd::SgdClassifier;
use crate::training::{FitReport, Trainer};
use crate::workspace::Workspace;

/// A fittable feature map: `fit` learns parameters from training rows,
/// `transform` applies them to any rows with the same schema.
pub trait Transformer {
    /// Re-fit the transformer's parameters on training rows (keeping its
    /// structural configuration, e.g. an encoder's bin count).
    fn fit(&mut self, x: &Matrix<f32>) -> CoreResult<()>;

    /// Apply the fitted map to a batch of rows.
    fn transform(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>>;

    /// Apply the fitted map into a caller-provided buffer (resized to
    /// `rows x output_width`, every element overwritten).
    ///
    /// The default implementation falls back to the allocating
    /// [`Transformer::transform`], so foreign transformers keep working;
    /// the built-in encoders override it with true in-place encoding, which
    /// is what keeps the serving data plane allocation-free.
    fn transform_into(&self, x: &Matrix<f32>, out: &mut Matrix<f32>) -> CoreResult<()> {
        *out = self.transform(x)?;
        Ok(())
    }

    /// Fit on `x`, then transform it.
    fn fit_transform(&mut self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        self.fit(x)?;
        self.transform(x)
    }

    /// Number of input columns the fitted transformer expects.
    fn input_width(&self) -> usize;

    /// Number of output columns the fitted transformer produces.
    fn output_width(&self) -> usize;
}

/// A fitted classification model: probabilities in, decisions out.
///
/// Object safe — the serving subsystem stores models as
/// `Box<dyn Predictor + Send + Sync>` so any fitted artifact can be
/// published and hot-swapped.
pub trait Predictor {
    /// Class probabilities for a batch of rows (`batch x n_classes`, rows
    /// sum to 1).
    fn predict_proba(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>>;

    /// Class probabilities written into a caller-provided buffer, drawing
    /// all intermediate scratch (stage encodings, hidden activations) from
    /// `ws`. A warmed-up `(workspace, out)` pair makes repeated batched
    /// inference allocation-free — the serving workers' steady state.
    ///
    /// The default implementation falls back to the allocating
    /// [`Predictor::predict_proba`], so foreign `Predictor` impls keep
    /// working unchanged; every built-in model overrides it with the true
    /// zero-allocation path, bit-identical to the allocating one. Object
    /// safe: callable through `dyn Predictor`.
    fn predict_proba_into(
        &self,
        x: &Matrix<f32>,
        ws: &mut Workspace,
        out: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        let _ = ws;
        *out = self.predict_proba(x)?;
        Ok(())
    }

    /// Hard class predictions (argmax over [`Predictor::predict_proba`]).
    fn predict(&self, x: &Matrix<f32>) -> CoreResult<Vec<usize>> {
        Ok(bcpnn_tensor::simd::dispatch::row_argmax(
            &self.predict_proba(x)?,
        ))
    }

    /// Number of input columns the predictor expects.
    fn n_inputs(&self) -> usize;

    /// Number of output classes.
    fn n_classes(&self) -> usize;

    /// Evaluate on labeled data (accuracy, AUC, ...).
    fn evaluate(&self, x: &Matrix<f32>, labels: &[usize]) -> CoreResult<EvalReport> {
        if x.rows() != labels.len() {
            return Err(CoreError::DataMismatch(
                "evaluation set size and label count differ".into(),
            ));
        }
        let proba = self.predict_proba(x)?;
        Ok(EvalReport::from_probabilities(&proba, labels))
    }
}

/// An estimation procedure: configuration that consumes `(x, labels)` and
/// yields a fitted [`Predictor`].
pub trait Estimator {
    /// The fitted model this estimator produces.
    type Fitted: Predictor;

    /// Fit on labeled training data.
    fn fit(&self, x: &Matrix<f32>, labels: &[usize]) -> CoreResult<Self::Fitted>;
}

// ---------------------------------------------------------------------------
// Trait retrofits for the existing surface.
// ---------------------------------------------------------------------------

/// Both quantile-binner-backed encoders carry the same `fit_matrix` /
/// `transform_rows` / `n_features` / `n_bins` surface; one macro keeps
/// their trait retrofits from diverging.
macro_rules! impl_transformer_for_binned_encoder {
    ($encoder:ty) => {
        impl Transformer for $encoder {
            fn fit(&mut self, x: &Matrix<f32>) -> CoreResult<()> {
                if x.rows() == 0 {
                    return Err(CoreError::DataMismatch(
                        "cannot fit an encoder on an empty matrix".into(),
                    ));
                }
                *self = <$encoder>::fit_matrix(x, self.n_bins());
                Ok(())
            }

            fn transform(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
                if x.cols() != self.n_features() {
                    return Err(CoreError::DataMismatch(format!(
                        "encoder was fitted on {} features, matrix has {}",
                        self.n_features(),
                        x.cols()
                    )));
                }
                Ok(self.transform_rows(x))
            }

            fn transform_into(&self, x: &Matrix<f32>, out: &mut Matrix<f32>) -> CoreResult<()> {
                if x.cols() != self.n_features() {
                    return Err(CoreError::DataMismatch(format!(
                        "encoder was fitted on {} features, matrix has {}",
                        self.n_features(),
                        x.cols()
                    )));
                }
                self.transform_rows_into(x, out);
                Ok(())
            }

            fn input_width(&self) -> usize {
                self.n_features()
            }

            fn output_width(&self) -> usize {
                self.encoded_width()
            }
        }
    };
}

impl_transformer_for_binned_encoder!(QuantileEncoder);
impl_transformer_for_binned_encoder!(ThermometerEncoder);

impl Transformer for Standardizer {
    fn fit(&mut self, x: &Matrix<f32>) -> CoreResult<()> {
        if x.rows() == 0 {
            return Err(CoreError::DataMismatch(
                "cannot fit a standardizer on an empty matrix".into(),
            ));
        }
        *self = Standardizer::fit_matrix(x);
        Ok(())
    }

    fn transform(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        if x.cols() != self.n_features() {
            return Err(CoreError::DataMismatch(format!(
                "standardizer was fitted on {} features, matrix has {}",
                self.n_features(),
                x.cols()
            )));
        }
        Ok(self.transform_rows(x))
    }

    fn transform_into(&self, x: &Matrix<f32>, out: &mut Matrix<f32>) -> CoreResult<()> {
        if x.cols() != self.n_features() {
            return Err(CoreError::DataMismatch(format!(
                "standardizer was fitted on {} features, matrix has {}",
                self.n_features(),
                x.cols()
            )));
        }
        self.transform_rows_into(x, out);
        Ok(())
    }

    fn input_width(&self) -> usize {
        self.n_features()
    }

    fn output_width(&self) -> usize {
        self.n_features()
    }
}

impl Predictor for Network {
    fn predict_proba(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        Network::predict_proba(self, x)
    }

    fn predict_proba_into(
        &self,
        x: &Matrix<f32>,
        ws: &mut Workspace,
        out: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        Network::predict_proba_into(self, x, ws, out)
    }

    fn n_inputs(&self) -> usize {
        self.hidden().params().n_inputs
    }

    fn n_classes(&self) -> usize {
        Network::n_classes(self)
    }
}

impl Predictor for BcpnnClassifier {
    fn predict_proba(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        BcpnnClassifier::predict_proba(self, x)
    }

    fn predict_proba_into(
        &self,
        x: &Matrix<f32>,
        _ws: &mut Workspace,
        out: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        BcpnnClassifier::predict_proba_into(self, x, out)
    }

    fn n_inputs(&self) -> usize {
        BcpnnClassifier::n_inputs(self)
    }

    fn n_classes(&self) -> usize {
        BcpnnClassifier::n_classes(self)
    }
}

impl Predictor for SgdClassifier {
    fn predict_proba(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        SgdClassifier::predict_proba(self, x)
    }

    fn predict_proba_into(
        &self,
        x: &Matrix<f32>,
        _ws: &mut Workspace,
        out: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        SgdClassifier::predict_proba_into(self, x, out)
    }

    fn n_inputs(&self) -> usize {
        SgdClassifier::n_inputs(self)
    }

    fn n_classes(&self) -> usize {
        SgdClassifier::n_classes(self)
    }
}

// ---------------------------------------------------------------------------
// Estimators.
// ---------------------------------------------------------------------------

/// The network estimation procedure: a [`NetworkBuilder`] topology plus a
/// [`TrainingParams`] schedule. `fit` builds a fresh [`Network`] and trains
/// it with the two-phase [`Trainer`].
#[derive(Debug, Clone, Default)]
pub struct NetworkEstimator {
    /// The network topology to instantiate per fit.
    pub builder: NetworkBuilder,
    /// The training schedule.
    pub training: TrainingParams,
}

impl NetworkEstimator {
    /// Pair a topology with a training schedule.
    pub fn new(builder: NetworkBuilder, training: TrainingParams) -> Self {
        Self { builder, training }
    }

    /// Fit, also returning the per-epoch [`FitReport`] (timings, SGD loss,
    /// plasticity swaps) that [`Estimator::fit`] discards.
    pub fn fit_report(
        &self,
        x: &Matrix<f32>,
        labels: &[usize],
    ) -> CoreResult<(Network, FitReport)> {
        let mut network = self.builder.clone().build()?;
        let report = Trainer::new(self.training.clone()).fit(&mut network, x, labels)?;
        Ok((network, report))
    }
}

impl Estimator for NetworkEstimator {
    type Fitted = Network;

    fn fit(&self, x: &Matrix<f32>, labels: &[usize]) -> CoreResult<Network> {
        Ok(self.fit_report(x, labels)?.0)
    }
}

/// The end-to-end estimation procedure behind [`Pipeline::fit`]: fit a
/// quantile encoder on the raw features, then train a network on the
/// encoded code. Because the encoder configuration (`n_bins`) is part of
/// the estimator, hyperparameter search over encoder parameters plugs into
/// the same [`Estimator`] surface as network parameters.
#[derive(Debug, Clone)]
pub struct PipelineEstimator {
    /// Quantile bins per feature for the input encoder (the paper uses 10).
    pub n_bins: usize,
    /// The downstream network estimation procedure. Its builder's input
    /// width is overridden with the encoder's output width at fit time.
    pub network: NetworkEstimator,
}

impl Default for PipelineEstimator {
    fn default() -> Self {
        Self {
            n_bins: 10,
            network: NetworkEstimator::default(),
        }
    }
}

impl PipelineEstimator {
    /// Pair an encoder bin count with a network estimation procedure.
    pub fn new(n_bins: usize, network: NetworkEstimator) -> Self {
        Self { n_bins, network }
    }

    /// Fit, also returning the network's [`FitReport`].
    pub fn fit_report(
        &self,
        x: &Matrix<f32>,
        labels: &[usize],
    ) -> CoreResult<(Pipeline, FitReport)> {
        if self.n_bins < 2 {
            return Err(CoreError::InvalidParams(
                "a quantile encoder needs at least two bins".into(),
            ));
        }
        if x.rows() == 0 {
            return Err(CoreError::DataMismatch("empty training set".into()));
        }
        let encoder = QuantileEncoder::fit_matrix(x, self.n_bins);
        let encoded = encoder.transform_rows(x);
        let network = NetworkEstimator::new(
            self.network.builder.clone().input(encoder.encoded_width()),
            self.network.training.clone(),
        );
        let (network, report) = network.fit_report(&encoded, labels)?;
        Ok((Pipeline::new(network, Some(encoder))?, report))
    }
}

impl Estimator for PipelineEstimator {
    type Fitted = Pipeline;

    fn fit(&self, x: &Matrix<f32>, labels: &[usize]) -> CoreResult<Pipeline> {
        Ok(self.fit_report(x, labels)?.0)
    }
}

// ---------------------------------------------------------------------------
// Pipeline: a chain of fitted transformer stages + a trained network.
// ---------------------------------------------------------------------------

/// A persistable transformer stage of a [`Pipeline`].
///
/// The closed set of stage kinds is what makes the `v3` model-directory
/// format self-describing: each stage serializes under a stable tag
/// ([`Stage::kind`]) so a loader can reconstruct the exact chain — and an
/// unknown tag is a typed [`CoreError::Format`], never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// One-hot quantile encoding (the paper's preprocessing).
    Quantile(QuantileEncoder),
    /// Cumulative (thermometer) quantile encoding.
    Thermometer(ThermometerEncoder),
    /// Zero-mean / unit-variance standardization.
    Standardize(Standardizer),
}

impl Stage {
    /// The stable persistence tag of this stage kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Stage::Quantile(_) => "quantile",
            Stage::Thermometer(_) => "thermometer",
            Stage::Standardize(_) => "standardize",
        }
    }

    fn as_transformer(&self) -> &dyn Transformer {
        match self {
            Stage::Quantile(t) => t,
            Stage::Thermometer(t) => t,
            Stage::Standardize(t) => t,
        }
    }
}

impl Transformer for Stage {
    fn fit(&mut self, x: &Matrix<f32>) -> CoreResult<()> {
        match self {
            Stage::Quantile(t) => t.fit(x),
            Stage::Thermometer(t) => t.fit(x),
            Stage::Standardize(t) => t.fit(x),
        }
    }

    fn transform(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        self.as_transformer().transform(x)
    }

    fn transform_into(&self, x: &Matrix<f32>, out: &mut Matrix<f32>) -> CoreResult<()> {
        self.as_transformer().transform_into(x, out)
    }

    fn input_width(&self) -> usize {
        self.as_transformer().input_width()
    }

    fn output_width(&self) -> usize {
        self.as_transformer().output_width()
    }
}

/// Validate that a stage chain's widths connect — each stage's output
/// width feeds the next stage's input width — and that the chain ends at
/// `n_inputs`. Shared by [`Pipeline::from_stages`] and the serializer.
pub(crate) fn validate_chain(stages: &[Stage], n_inputs: usize) -> CoreResult<()> {
    let mut width = stages.first().map_or(n_inputs, Transformer::input_width);
    for (i, stage) in stages.iter().enumerate() {
        if stage.input_width() != width {
            return Err(CoreError::DataMismatch(format!(
                "stage {i} ({}) expects {} columns but receives {width}",
                stage.kind(),
                stage.input_width()
            )));
        }
        width = stage.output_width();
    }
    if width != n_inputs {
        return Err(CoreError::DataMismatch(format!(
            "pipeline stages produce {width} columns but the network expects {n_inputs}"
        )));
    }
    Ok(())
}

/// A complete inference artifact: a chain of fitted transformer stages in
/// front of a trained network, so raw feature vectors go in and class
/// probabilities come out in one call.
///
/// Offline experiments encode the whole dataset once and train on the
/// binary code; a serving system cannot ask its clients to do that. The
/// pipeline closes the gap — it is the artifact `bcpnn-serve` publishes,
/// and it persists as a stage-tagged `v3` model directory
/// ([`Pipeline::save`] / [`Pipeline::load`]).
/// `Clone` copies the fitted stages and the full trainable network state,
/// so a clone learns independently of the original — the seam the
/// online-learning shadow trainer publishes through.
#[derive(Debug, Clone)]
pub struct Pipeline {
    stages: Vec<Stage>,
    network: Network,
    /// Optional post-hoc probability calibration, applied to every
    /// `predict_proba` row after the readout (see [`crate::calibration`]).
    calibration: Option<Calibration>,
}

impl Pipeline {
    /// Bundle a network with an optional fitted quantile encoder (the
    /// common chain). Fails if the encoder's output width does not match
    /// the network's input width.
    pub fn new(network: Network, encoder: Option<QuantileEncoder>) -> CoreResult<Self> {
        let stages = encoder.map(Stage::Quantile).into_iter().collect();
        Self::from_stages(stages, network)
    }

    /// Bundle a network with an arbitrary chain of fitted stages. Fails
    /// unless the stage widths chain: each stage's output width must equal
    /// the next stage's input width, and the final output width must equal
    /// the network's input width.
    pub fn from_stages(stages: Vec<Stage>, network: Network) -> CoreResult<Self> {
        validate_chain(&stages, network.hidden().params().n_inputs)?;
        Ok(Self {
            stages,
            network,
            calibration: None,
        })
    }

    /// Fit the canonical paper pipeline — quantile encoder + network — on a
    /// labeled dataset in one call, returning the fitted pipeline and the
    /// training [`FitReport`]. The builder's input width is set from the
    /// encoder automatically.
    ///
    /// This is the shared entry point the quickstart example and the
    /// serving demo train through; parameterize it differently via
    /// [`PipelineEstimator`].
    pub fn fit(
        data: &Dataset,
        n_bins: usize,
        builder: NetworkBuilder,
        training: TrainingParams,
    ) -> CoreResult<(Pipeline, FitReport)> {
        PipelineEstimator::new(n_bins, NetworkEstimator::new(builder, training))
            .fit_report(&data.features, &data.labels)
    }

    /// The transformer stages, in application order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The trained network behind the stages.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The fitted post-hoc calibration, if one is attached.
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_ref()
    }

    /// Attach (or with `None`, detach) a post-hoc calibration. The map is
    /// validated; an invalid temperature or non-monotone isotonic map is a
    /// typed error, never silently accepted.
    pub fn set_calibration(&mut self, calibration: Option<Calibration>) -> CoreResult<()> {
        if let Some(cal) = &calibration {
            cal.validate()?;
        }
        self.calibration = calibration;
        Ok(())
    }

    /// Fit a post-hoc calibration on a **held-out** split and attach it.
    /// Any previously attached calibration is discarded first, so the fit
    /// always sees the network's raw probabilities. Calibrating on the
    /// training split defeats the purpose — pass rows the network was not
    /// trained on.
    pub fn fit_calibration(
        &mut self,
        x: &Matrix<f32>,
        labels: &[usize],
        method: CalibrationMethod,
    ) -> CoreResult<()> {
        self.calibration = None;
        let proba = Predictor::predict_proba(self, x)?;
        let fitted = match method {
            CalibrationMethod::Temperature => Calibration::fit_temperature(&proba, labels)?,
            CalibrationMethod::Isotonic => Calibration::fit_isotonic(&proba, labels)?,
        };
        self.calibration = Some(fitted);
        Ok(())
    }

    /// The fitted quantile encoder, when the chain is the canonical
    /// single-encoder one (used by receptive-field introspection).
    pub fn encoder(&self) -> Option<&QuantileEncoder> {
        match self.stages.as_slice() {
            [Stage::Quantile(enc)] => Some(enc),
            _ => None,
        }
    }

    /// Width of the feature vectors callers must supply: the first stage's
    /// input width, or the network's input width for a stage-less pipeline.
    pub fn input_width(&self) -> usize {
        self.stages
            .first()
            .map_or(self.network.hidden().params().n_inputs, |s| s.input_width())
    }

    /// Run the stage chain (without the network) on a batch of rows.
    pub fn encode(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        let mut current = None;
        for stage in &self.stages {
            let out = stage.transform(current.as_ref().unwrap_or(x))?;
            current = Some(out);
        }
        Ok(current.unwrap_or_else(|| x.clone()))
    }

    /// Class probabilities written into `out`, drawing every intermediate
    /// (stage encodings, hidden activations) from `ws`: the zero-allocation
    /// spelling of [`Predictor::predict_proba`] the serving workers run.
    /// Bit-identical to the allocating path.
    pub fn predict_proba_into(
        &self,
        x: &Matrix<f32>,
        ws: &mut Workspace,
        out: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        if x.cols() != self.input_width() {
            return Err(CoreError::DataMismatch(format!(
                "pipeline expects {} columns, rows have {}",
                self.input_width(),
                x.cols()
            )));
        }
        // Stage-less pipelines feed the rows straight through — no copy on
        // the serving hot path.
        if self.stages.is_empty() {
            self.network.predict_proba_into(x, ws, out)?;
            if let Some(cal) = &self.calibration {
                cal.apply_rows(out);
            }
            return Ok(());
        }
        // Ping-pong the chain through the two workspace encode buffers:
        // stage 0 fills `src`, every later stage reads `src` and writes
        // `dst`, then the two swap — so the freshest encoding always ends
        // up in `src`, and the common single-stage chain touches only one
        // buffer.
        let mut src = std::mem::take(&mut ws.encode_a);
        let mut dst = std::mem::take(&mut ws.encode_b);
        let chained = (|| -> CoreResult<()> {
            self.stages[0].transform_into(x, &mut src)?;
            for stage in &self.stages[1..] {
                stage.transform_into(&src, &mut dst)?;
                std::mem::swap(&mut src, &mut dst);
            }
            Ok(())
        })();
        let result = chained.and_then(|()| self.network.predict_proba_into(&src, ws, out));
        ws.encode_a = src;
        ws.encode_b = dst;
        result?;
        if let Some(cal) = &self.calibration {
            cal.apply_rows(out);
        }
        Ok(())
    }

    /// Fold one labeled batch of *raw* feature rows into the trained
    /// network — [`Network::learn_batch`] behind the fitted stage chain.
    ///
    /// The stages themselves stay frozen (they were fitted offline and
    /// describe the input encoding, which must not drift under the served
    /// model); only the network's counters move. Rows are encoded through
    /// the same workspace ping-pong as [`Pipeline::predict_proba_into`],
    /// so a warmed-up online trainer allocates nothing per fold.
    pub fn learn_batch(
        &mut self,
        x: &Matrix<f32>,
        labels: &[usize],
        ws: &mut Workspace,
    ) -> CoreResult<()> {
        if x.cols() != self.input_width() {
            return Err(CoreError::DataMismatch(format!(
                "pipeline expects {} columns, learn rows have {}",
                self.input_width(),
                x.cols()
            )));
        }
        if self.stages.is_empty() {
            return self.network.learn_batch(x, labels, ws);
        }
        let mut src = std::mem::take(&mut ws.encode_a);
        let mut dst = std::mem::take(&mut ws.encode_b);
        let chained = (|| -> CoreResult<()> {
            self.stages[0].transform_into(x, &mut src)?;
            for stage in &self.stages[1..] {
                stage.transform_into(&src, &mut dst)?;
                std::mem::swap(&mut src, &mut dst);
            }
            Ok(())
        })();
        let result = chained.and_then(|()| self.network.learn_batch(&src, labels, ws));
        ws.encode_a = src;
        ws.encode_b = dst;
        result
    }

    /// Save the artifact as a stage-tagged (`v3`) model directory.
    pub fn save<P: AsRef<std::path::Path>>(&self, dir: P) -> CoreResult<()> {
        crate::serialize::save_pipeline(self, dir)
    }

    /// Load an artifact from a model directory (`v1`, `v2` or `v3`),
    /// instantiating the network on the given backend (backends are
    /// runtime configuration, not model state).
    pub fn load<P: AsRef<std::path::Path>>(
        dir: P,
        backend: bcpnn_backend::BackendKind,
    ) -> CoreResult<Self> {
        crate::serialize::load_pipeline(dir, backend)
    }
}

impl Predictor for Pipeline {
    /// One vectorized encode → hidden forward → readout pass — the call
    /// the serving micro-batcher amortizes request overhead into.
    /// Allocating convenience over [`Pipeline::predict_proba_into`], the
    /// one authoritative kernel sequence.
    fn predict_proba(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(0, 0);
        Pipeline::predict_proba_into(self, x, &mut ws, &mut out)?;
        Ok(out)
    }

    fn predict_proba_into(
        &self,
        x: &Matrix<f32>,
        ws: &mut Workspace,
        out: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        Pipeline::predict_proba_into(self, x, ws, out)
    }

    fn n_inputs(&self) -> usize {
        self.input_width()
    }

    fn n_classes(&self) -> usize {
        self.network.n_classes()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::network::ReadoutKind;
    use bcpnn_backend::BackendKind;
    use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};

    fn higgs(n: usize, seed: u64) -> Dataset {
        generate(&SyntheticHiggsConfig {
            n_samples: n,
            seed,
            ..Default::default()
        })
    }

    fn tiny_builder() -> NetworkBuilder {
        Network::builder()
            .hidden(2, 4, 0.3)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(1)
    }

    fn tiny_training() -> TrainingParams {
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 50,
            ..Default::default()
        }
    }

    pub(crate) fn tiny_pipeline(seed: u64) -> (Pipeline, Dataset) {
        let data = higgs(400, seed);
        let (pipeline, _) =
            Pipeline::fit(&data, 10, tiny_builder().seed(seed), tiny_training()).unwrap();
        (pipeline, data)
    }

    #[test]
    fn pipeline_fit_accepts_raw_features() {
        let (pipeline, data) = tiny_pipeline(1);
        assert_eq!(pipeline.input_width(), 28);
        assert_eq!(Predictor::n_inputs(&pipeline), 28);
        assert_eq!(Predictor::n_classes(&pipeline), 2);
        assert!(pipeline.encoder().is_some());
        let proba = pipeline.predict_proba(&data.features).unwrap();
        assert_eq!(proba.shape(), (data.n_samples(), 2));
        for r in 0..proba.rows() {
            let s: f32 = proba.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
        }
    }

    #[test]
    fn pipeline_matches_manual_encode_then_predict() {
        let (pipeline, data) = tiny_pipeline(2);
        let manual = pipeline
            .network()
            .predict_proba(&pipeline.encoder().unwrap().transform_rows(&data.features))
            .unwrap();
        let auto = pipeline.predict_proba(&data.features).unwrap();
        assert!(manual.max_abs_diff(&auto) < 1e-6);
        // Predictor::predict agrees with argmax of the probabilities.
        let preds = pipeline.predict(&data.features).unwrap();
        assert_eq!(preds, bcpnn_tensor::reduce::row_argmax(&auto));
    }

    #[test]
    fn stageless_pipeline_feeds_rows_straight_through() {
        let net = tiny_builder().input(20).build().unwrap();
        let pipeline = Pipeline::from_stages(Vec::new(), net).unwrap();
        assert_eq!(pipeline.input_width(), 20);
        assert!(pipeline.encoder().is_none());
        let x = Matrix::from_fn(5, 20, |r, c| f32::from((r + c) % 3 == 0));
        let via_pipeline = pipeline.predict_proba(&x).unwrap();
        let via_network = pipeline.network().predict_proba(&x).unwrap();
        assert_eq!(via_pipeline, via_network);
        // encode() on a stage-less pipeline is the identity.
        assert_eq!(pipeline.encode(&x).unwrap(), x);
    }

    #[test]
    fn wrong_width_is_a_typed_error() {
        let (pipeline, _) = tiny_pipeline(3);
        let bad = Matrix::zeros(2, 5);
        assert!(matches!(
            pipeline.predict_proba(&bad),
            Err(CoreError::DataMismatch(_))
        ));
    }

    #[test]
    fn mismatched_stage_chains_are_rejected_at_construction() {
        let (other, _) = tiny_pipeline(4);
        let narrow_net = Network::builder()
            .input(16)
            .hidden(2, 4, 0.5)
            .classes(2)
            .backend(BackendKind::Naive)
            .build()
            .unwrap();
        let enc = other.encoder().unwrap().clone();
        assert!(Pipeline::new(narrow_net, Some(enc)).is_err());
    }

    #[test]
    fn multi_stage_chain_standardize_then_quantile() {
        let data = higgs(300, 5);
        let standardizer = Standardizer::fit_matrix(&data.features);
        let z = standardizer.transform_rows(&data.features);
        let encoder = QuantileEncoder::fit_matrix(&z, 10);
        let encoded = encoder.transform_rows(&z);
        let estimator = NetworkEstimator::new(
            tiny_builder().input(encoder.encoded_width()),
            tiny_training(),
        );
        let network = estimator.fit(&encoded, &data.labels).unwrap();
        let pipeline = Pipeline::from_stages(
            vec![
                Stage::Standardize(standardizer),
                Stage::Quantile(encoder.clone()),
            ],
            network,
        )
        .unwrap();
        assert_eq!(pipeline.stages().len(), 2);
        assert_eq!(pipeline.input_width(), 28);
        assert!(pipeline.encoder().is_none(), "not the canonical chain");
        let via_pipeline = pipeline.predict_proba(&data.features).unwrap();
        let via_manual = pipeline.network().predict_proba(&encoded).unwrap();
        assert!(via_pipeline.max_abs_diff(&via_manual) < 1e-6);
        // An out-of-order chain fails construction: quantile output (280
        // binary columns) does not chain into a 28-wide standardizer.
        let (p2, _) = tiny_pipeline(6);
        let stages = vec![
            Stage::Quantile(encoder),
            Stage::Standardize(Standardizer::fit_matrix(&data.features)),
        ];
        assert!(matches!(
            Pipeline::from_stages(stages, /* any net */ p2.network),
            Err(CoreError::DataMismatch(_))
        ));
    }

    #[test]
    fn transformer_trait_fit_transform_roundtrip() {
        let data = higgs(200, 7);
        let mut enc = QuantileEncoder::fit_matrix(&data.features, 10);
        let fresh = higgs(150, 8);
        let refit = enc.fit_transform(&fresh.features).unwrap();
        assert_eq!(
            refit,
            QuantileEncoder::fit_matrix(&fresh.features, 10).transform_rows(&fresh.features)
        );
        assert_eq!(enc.input_width(), 28);
        assert_eq!(enc.output_width(), 280);
        // Schema mismatches are typed errors.
        assert!(Transformer::transform(&enc, &Matrix::zeros(2, 3)).is_err());
        let mut therm = ThermometerEncoder::fit_matrix(&data.features, 8);
        assert_eq!(therm.output_width(), 28 * 8);
        assert!(therm.fit(&Matrix::<f32>::zeros(0, 28)).is_err());
        let mut std = Standardizer::fit_matrix(&data.features);
        assert_eq!(std.input_width(), std.output_width());
        assert!(std.fit(&fresh.features).is_ok());
    }

    #[test]
    fn readout_heads_are_predictors_over_hidden_activations() {
        let (pipeline, data) = tiny_pipeline(9);
        let hidden = pipeline
            .network()
            .encode(&pipeline.encode(&data.features).unwrap())
            .unwrap();
        let bcpnn: &dyn Predictor = pipeline.network().bcpnn_readout().unwrap();
        let sgd: &dyn Predictor = pipeline.network().sgd_readout().unwrap();
        assert_eq!(bcpnn.n_inputs(), hidden.cols());
        assert_eq!(sgd.n_inputs(), hidden.cols());
        assert_eq!(bcpnn.n_classes(), 2);
        let pb = bcpnn.predict_proba(&hidden).unwrap();
        let ps = sgd.predict_proba(&hidden).unwrap();
        assert_eq!(pb.shape(), ps.shape());
        // The hybrid network predicts with the SGD head over these
        // activations.
        let net_proba = pipeline
            .network()
            .predict_proba(&pipeline.encode(&data.features).unwrap())
            .unwrap();
        assert!(net_proba.max_abs_diff(&ps) < 1e-6);
        // The default evaluate() provided by the trait works on heads too.
        let report = sgd.evaluate(&hidden, &data.labels).unwrap();
        assert!(report.accuracy >= 0.0 && report.accuracy <= 1.0);
        assert!(sgd.evaluate(&hidden, &[0]).is_err());
    }

    #[test]
    fn estimators_reject_invalid_configurations() {
        let data = higgs(100, 10);
        let bad_bins =
            PipelineEstimator::new(1, NetworkEstimator::new(tiny_builder(), tiny_training()));
        assert!(matches!(
            bad_bins.fit(&data.features, &data.labels),
            Err(CoreError::InvalidParams(_))
        ));
        let est =
            PipelineEstimator::new(10, NetworkEstimator::new(tiny_builder(), tiny_training()));
        assert!(est.fit(&Matrix::zeros(0, 28), &[]).is_err());
        // NetworkEstimator surfaces builder errors.
        let bad_net = NetworkEstimator::new(tiny_builder().classes(1), tiny_training());
        assert!(bad_net.fit(&data.features, &data.labels).is_err());
    }

    #[test]
    fn fit_report_exposes_training_stats() {
        let data = higgs(200, 11);
        let est =
            PipelineEstimator::new(10, NetworkEstimator::new(tiny_builder(), tiny_training()));
        let (pipeline, report) = est.fit_report(&data.features, &data.labels).unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert!(report.train_time_seconds() > 0.0);
        assert_eq!(Predictor::n_classes(&pipeline), 2);
    }

    #[test]
    fn pipeline_predict_proba_into_is_bit_identical_including_multi_stage() {
        let (pipeline, data) = tiny_pipeline(20);
        let mut ws = Workspace::new();
        let mut out = Matrix::filled(1, 1, f32::NAN);
        pipeline
            .predict_proba_into(&data.features, &mut ws, &mut out)
            .unwrap();
        assert_eq!(out, pipeline.predict_proba(&data.features).unwrap());
        let warmed = ws.allocated_elems();
        // A second call with the same shapes keeps the buffers stable.
        pipeline
            .predict_proba_into(&data.features, &mut ws, &mut out)
            .unwrap();
        assert_eq!(ws.allocated_elems(), warmed);

        // Multi-stage chain: standardize → quantile ping-pongs through both
        // encode buffers and still matches the allocating path exactly.
        let standardizer = Standardizer::fit_matrix(&data.features);
        let z = standardizer.transform_rows(&data.features);
        let encoder = QuantileEncoder::fit_matrix(&z, 10);
        let encoded = encoder.transform_rows(&z);
        let network = NetworkEstimator::new(
            tiny_builder().input(encoder.encoded_width()),
            tiny_training(),
        )
        .fit(&encoded, &data.labels)
        .unwrap();
        let chained = Pipeline::from_stages(
            vec![Stage::Standardize(standardizer), Stage::Quantile(encoder)],
            network,
        )
        .unwrap();
        chained
            .predict_proba_into(&data.features, &mut ws, &mut out)
            .unwrap();
        assert_eq!(out, chained.predict_proba(&data.features).unwrap());

        // Wrong widths stay typed errors and leave the workspace reusable.
        assert!(chained
            .predict_proba_into(&Matrix::zeros(2, 3), &mut ws, &mut out)
            .is_err());
        chained
            .predict_proba_into(&data.features, &mut ws, &mut out)
            .unwrap();
        assert_eq!(out, chained.predict_proba(&data.features).unwrap());
    }

    #[test]
    fn default_predict_proba_into_serves_foreign_predictors() {
        /// A foreign Predictor that only implements the allocating surface.
        struct Constant;
        impl Predictor for Constant {
            fn predict_proba(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
                Ok(Matrix::filled(x.rows(), 2, 0.5))
            }
            fn n_inputs(&self) -> usize {
                3
            }
            fn n_classes(&self) -> usize {
                2
            }
        }
        let boxed: Box<dyn Predictor + Send + Sync> = Box::new(Constant);
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(0, 0);
        boxed
            .predict_proba_into(&Matrix::zeros(4, 3), &mut ws, &mut out)
            .unwrap();
        assert_eq!(out, Matrix::filled(4, 2, 0.5));
    }

    #[test]
    fn transform_into_matches_transform_for_every_stage_kind() {
        let data = higgs(120, 21);
        let stages = vec![
            Stage::Quantile(QuantileEncoder::fit_matrix(&data.features, 8)),
            Stage::Thermometer(ThermometerEncoder::fit_matrix(&data.features, 8)),
            Stage::Standardize(Standardizer::fit_matrix(&data.features)),
        ];
        let mut out = Matrix::filled(2, 2, f32::NAN);
        for stage in &stages {
            stage.transform_into(&data.features, &mut out).unwrap();
            assert_eq!(out, stage.transform(&data.features).unwrap());
            // Schema mismatches are typed errors through _into too.
            assert!(stage
                .transform_into(&Matrix::zeros(2, 3), &mut out)
                .is_err());
        }
    }

    #[test]
    fn predictors_are_object_safe_and_shareable() {
        let (pipeline, data) = tiny_pipeline(12);
        let direct = pipeline.predict_proba(&data.features).unwrap();
        let boxed: Box<dyn Predictor + Send + Sync> = Box::new(pipeline);
        let via_box = boxed.predict_proba(&data.features).unwrap();
        assert!(direct.max_abs_diff(&via_box) < 1e-7);
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pipeline>();
        assert_send_sync::<Box<dyn Predictor + Send + Sync>>();
    }

    #[test]
    fn stage_kinds_are_stable() {
        let data = higgs(50, 13);
        assert_eq!(
            Stage::Quantile(QuantileEncoder::fit_matrix(&data.features, 4)).kind(),
            "quantile"
        );
        assert_eq!(
            Stage::Thermometer(ThermometerEncoder::fit_matrix(&data.features, 4)).kind(),
            "thermometer"
        );
        assert_eq!(
            Stage::Standardize(Standardizer::fit_matrix(&data.features)).kind(),
            "standardize"
        );
    }
}
