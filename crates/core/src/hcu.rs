//! The unsupervised hidden layer: a population of hypercolumn units (HCUs),
//! each holding `n_mcu` minicolumn units (MCUs) that compete through a
//! softmax over the HCU's receptive field.
//!
//! One MCU corresponds roughly to a neuron in a conventional network; one
//! HCU models one discrete latent variable (§II-C of the paper). The layer
//! learns with the local BCPNN rule only — no gradients flow into it.

use std::sync::Arc;

use bcpnn_backend::Backend;
use bcpnn_tensor::{Matrix, MatrixRng};

use crate::error::{CoreError, CoreResult};
use crate::mask::ReceptiveFieldMask;
use crate::params::HiddenLayerParams;
use crate::plasticity::{PlasticityConfig, PlasticityReport, StructuralPlasticity};
use crate::traces::ProbabilityTraces;
use crate::workspace::Workspace;

/// The HCU/MCU hidden layer.
///
/// `Clone` copies the full trainable state (traces, weights, mask,
/// plasticity bookkeeping, RNG position), so a clone trains independently
/// of — and, fed the same batches, bit-identically to — the original. The
/// online-learning shadow trainer is built on exactly this.
#[derive(Clone)]
pub struct HiddenLayer {
    params: HiddenLayerParams,
    backend: Arc<dyn Backend>,
    traces: ProbabilityTraces,
    mask: ReceptiveFieldMask,
    /// Unmasked log-odds weights recomputed from the traces (`N x U`).
    weights: Matrix<f32>,
    /// Weights with the receptive-field mask applied; used in the forward
    /// pass (`N x U`).
    masked_weights: Matrix<f32>,
    /// Per-unit bias `gain · ln(p_j)` (`U`).
    bias: Vec<f32>,
    plasticity: StructuralPlasticity,
    rng: MatrixRng,
}

impl std::fmt::Debug for HiddenLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HiddenLayer")
            .field("n_inputs", &self.params.n_inputs)
            .field("n_hcu", &self.params.n_hcu)
            .field("n_mcu", &self.params.n_mcu)
            .field("receptive_field", &self.params.receptive_field)
            .field("backend", &self.backend.name())
            .finish()
    }
}

impl HiddenLayer {
    /// Create a hidden layer with random receptive fields and uninformative
    /// traces.
    pub fn new(
        params: HiddenLayerParams,
        backend: Arc<dyn Backend>,
        seed: u64,
    ) -> CoreResult<Self> {
        params.validate().map_err(CoreError::InvalidParams)?;
        let mut rng = MatrixRng::seed_from(seed);
        let n_units = params.n_units();
        let mask = ReceptiveFieldMask::random(
            params.n_hcu,
            params.n_inputs,
            params.active_connections(),
            &mut rng,
        );
        // Prior input probability: with one-hot blocks of ~10 bins the
        // typical input density is ~0.1; a mild 0.1 prior works for all the
        // datasets used here and washes out after a few batches anyway.
        let mut traces = ProbabilityTraces::new(params.n_inputs, n_units, params.n_mcu, 0.1);
        // Symmetry breaking: perturb the joint traces multiplicatively
        // around independence. Weights are a pure function of the traces
        // (they are recomputed after every batch), so perturbing the weights
        // directly would be erased immediately; perturbing p_ij instead
        // gives every minicolumn a persistent random "preference direction"
        // (a random projection of the input) that decays with the trace
        // time constant. Early winners are therefore input-dependent, the
        // joint traces pick up genuine input/unit correlations, and the
        // minicolumns differentiate instead of collapsing onto one winner.
        for i in 0..traces.pij.rows() {
            let pi = traces.pi[i];
            for j in 0..traces.pij.cols() {
                let u: f32 = rng.uniform_scalar(-0.5, 0.5);
                let perturbed = traces.pij.get(i, j) * (1.0 + u);
                let ceiling = pi.min(traces.pj[j]);
                traces.pij.set(i, j, perturbed.clamp(params.eps, ceiling));
            }
        }
        let mut weights = Matrix::zeros(params.n_inputs, n_units);
        let mut bias = vec![0.0f32; n_units];
        traces.weights_and_bias(
            backend.as_ref(),
            params.eps,
            params.bias_gain,
            &mut weights,
            &mut bias,
        );
        let mut masked_weights = Matrix::zeros(params.n_inputs, n_units);
        backend.apply_mask(
            &weights,
            mask.as_matrix(),
            params.n_mcu,
            &mut masked_weights,
        );
        let plasticity = StructuralPlasticity::new(PlasticityConfig {
            max_swaps: params.plasticity_swaps,
            min_improvement: 1e-4,
        });
        Ok(Self {
            params,
            backend,
            traces,
            mask,
            weights,
            masked_weights,
            bias,
            plasticity,
            rng,
        })
    }

    /// Layer hyperparameters.
    pub fn params(&self) -> &HiddenLayerParams {
        &self.params
    }

    /// Total number of minicolumn units (`n_hcu · n_mcu`).
    pub fn n_units(&self) -> usize {
        self.params.n_units()
    }

    /// The backend executing the kernels.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// The receptive-field mask.
    pub fn mask(&self) -> &ReceptiveFieldMask {
        &self.mask
    }

    /// The probability traces (read-only).
    pub fn traces(&self) -> &ProbabilityTraces {
        &self.traces
    }

    /// The masked weight matrix the forward pass multiplies by
    /// (`n_inputs x n_units`, read-only). This is the exact tensor a
    /// quantizer must capture to reproduce this layer's predictions.
    pub fn masked_weights(&self) -> &Matrix<f32> {
        &self.masked_weights
    }

    /// The per-unit bias added in the forward pass (read-only).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// A copy of the current mask matrix (`n_hcu x n_inputs`), e.g. for the
    /// in-situ visualization of Fig. 2.
    pub fn receptive_field_snapshot(&self) -> Matrix<f32> {
        self.mask.as_matrix().clone()
    }

    fn check_input(&self, x: &Matrix<f32>) -> CoreResult<()> {
        if x.cols() != self.params.n_inputs {
            return Err(CoreError::DataMismatch(format!(
                "input has {} columns but the layer expects {}",
                x.cols(),
                self.params.n_inputs
            )));
        }
        Ok(())
    }

    /// Deterministic forward pass: masked support plus per-HCU softmax.
    /// Returns the `batch x n_units` activation matrix.
    ///
    /// Allocating convenience over [`HiddenLayer::forward_into`] — there is
    /// exactly one kernel-call sequence behind both spellings.
    pub fn forward(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(x, &mut out)?;
        Ok(out)
    }

    /// Deterministic forward pass into a caller-provided buffer: `out` is
    /// reset to `batch x n_units` and fully overwritten. Reusing `out`
    /// across batches keeps the inference hot path off the allocator.
    pub fn forward_into(&self, x: &Matrix<f32>, out: &mut Matrix<f32>) -> CoreResult<()> {
        self.check_input(x)?;
        out.reset(x.rows(), self.n_units());
        self.backend
            .linear_forward(x, &self.masked_weights, &self.bias, out);
        self.backend.grouped_softmax(out, self.params.n_mcu);
        Ok(())
    }

    /// Training forward pass: like [`HiddenLayer::forward_into`] but with
    /// Gaussian support noise for symmetry breaking between minicolumns.
    /// `noise` is scratch (resized and fully overwritten when support noise
    /// is enabled); the sample stream is identical to drawing a fresh noise
    /// matrix, so reuse does not change training trajectories.
    fn forward_noisy_into(
        &mut self,
        x: &Matrix<f32>,
        noise: &mut Matrix<f32>,
        out: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        self.check_input(x)?;
        out.reset(x.rows(), self.n_units());
        self.backend
            .linear_forward(x, &self.masked_weights, &self.bias, out);
        if self.params.support_noise > 0.0 {
            noise.resize(out.rows(), out.cols());
            self.rng
                .fill_normal(noise, 0.0, self.params.support_noise as f64);
            bcpnn_tensor::elementwise::add_assign(out, noise);
        }
        self.backend.grouped_softmax(out, self.params.n_mcu);
        Ok(())
    }

    /// Recompute weights and bias from the traces and re-apply the mask.
    pub fn refresh_weights(&mut self) {
        self.traces.weights_and_bias(
            self.backend.as_ref(),
            self.params.eps,
            self.params.bias_gain,
            &mut self.weights,
            &mut self.bias,
        );
        self.backend.apply_mask(
            &self.weights,
            self.mask.as_matrix(),
            self.params.n_mcu,
            &mut self.masked_weights,
        );
    }

    /// Train on one unlabeled batch: noisy forward pass, trace update, and
    /// weight refresh. Returns the batch activations (useful for chaining /
    /// diagnostics).
    ///
    /// Allocating convenience over [`HiddenLayer::train_batch_with`]; epoch
    /// loops should prefer the workspace variant so the allocator stays off
    /// the training hot path.
    pub fn train_batch(&mut self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        let mut act = Matrix::zeros(0, 0);
        let mut noise = Matrix::zeros(0, 0);
        self.train_batch_core(x, &mut noise, &mut act)?;
        Ok(act)
    }

    /// Train on one unlabeled batch using workspace scratch for the
    /// activations and the support noise — zero allocations once the
    /// workspace has seen the batch shape. Bit-identical to
    /// [`HiddenLayer::train_batch`].
    pub fn train_batch_with(&mut self, x: &Matrix<f32>, ws: &mut Workspace) -> CoreResult<()> {
        let mut act = std::mem::take(&mut ws.hidden);
        let mut noise = std::mem::take(&mut ws.noise);
        let result = self.train_batch_core(x, &mut noise, &mut act);
        ws.hidden = act;
        ws.noise = noise;
        result
    }

    /// The one authoritative unsupervised training step both spellings
    /// route through.
    fn train_batch_core(
        &mut self,
        x: &Matrix<f32>,
        noise: &mut Matrix<f32>,
        act: &mut Matrix<f32>,
    ) -> CoreResult<()> {
        self.forward_noisy_into(x, noise, act)?;
        self.traces
            .update(self.backend.as_ref(), x, act, self.params.trace_rate);
        self.refresh_weights();
        Ok(())
    }

    /// Run one structural-plasticity update (normally once per epoch):
    /// re-score every connection by mutual information and swap the worst
    /// active connections for the best silent ones, then re-apply the mask.
    pub fn structural_plasticity_step(&mut self) -> PlasticityReport {
        let report = self.plasticity.update_from_traces(
            self.backend.as_ref(),
            &self.traces,
            self.params.n_mcu,
            &mut self.mask,
        );
        // The mask changed; the masked weights must follow.
        self.backend.apply_mask(
            &self.weights,
            self.mask.as_matrix(),
            self.params.n_mcu,
            &mut self.masked_weights,
        );
        report
    }

    /// Replace the mask (used when loading a persisted model).
    pub(crate) fn restore_state(
        &mut self,
        mask: ReceptiveFieldMask,
        traces: ProbabilityTraces,
    ) -> CoreResult<()> {
        if mask.n_hcu() != self.params.n_hcu || mask.n_inputs() != self.params.n_inputs {
            return Err(CoreError::DataMismatch(
                "mask dimensions do not match the layer".into(),
            ));
        }
        if traces.n_inputs() != self.params.n_inputs || traces.n_units() != self.n_units() {
            return Err(CoreError::DataMismatch(
                "trace dimensions do not match the layer".into(),
            ));
        }
        self.mask = mask;
        self.traces = traces;
        self.refresh_weights();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcpnn_backend::BackendKind;

    fn small_params() -> HiddenLayerParams {
        HiddenLayerParams {
            n_inputs: 20,
            n_hcu: 2,
            n_mcu: 4,
            receptive_field: 0.5,
            trace_rate: 0.2,
            support_noise: 0.05,
            ..Default::default()
        }
    }

    fn layer(seed: u64) -> HiddenLayer {
        HiddenLayer::new(small_params(), BackendKind::Parallel.create(), seed).unwrap()
    }

    /// A toy binary dataset with two clusters: inputs 0..10 active for one
    /// cluster, inputs 10..20 for the other.
    fn toy_batch(rng: &mut MatrixRng, n: usize) -> Matrix<f32> {
        Matrix::from_fn(n, 20, |r, c| {
            let cluster = r % 2;
            let in_cluster = if cluster == 0 { c < 10 } else { c >= 10 };
            let p = if in_cluster { 0.6 } else { 0.05 };
            if rng.uniform_scalar::<f64>(0.0, 1.0) < p {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn construction_respects_params() {
        let l = layer(1);
        assert_eq!(l.n_units(), 8);
        assert_eq!(l.mask().n_hcu(), 2);
        assert_eq!(l.mask().active_per_hcu(), 10);
        assert_eq!(l.receptive_field_snapshot().shape(), (2, 20));
    }

    #[test]
    fn invalid_params_are_rejected() {
        let bad = HiddenLayerParams {
            receptive_field: 0.0,
            ..small_params()
        };
        assert!(HiddenLayer::new(bad, BackendKind::Naive.create(), 0).is_err());
    }

    #[test]
    fn forward_produces_per_hcu_distributions() {
        let l = layer(2);
        let mut rng = MatrixRng::seed_from(3);
        let x = toy_batch(&mut rng, 6);
        let act = l.forward(&x).unwrap();
        assert_eq!(act.shape(), (6, 8));
        for r in 0..6 {
            let row = act.row(r);
            for h in 0..2 {
                let s: f32 = row[h * 4..(h + 1) * 4].iter().sum();
                assert!((s - 1.0).abs() < 1e-4, "HCU {h} not normalised: {s}");
            }
        }
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let l = layer(4);
        let x = Matrix::zeros(3, 19);
        assert!(l.forward(&x).is_err());
    }

    #[test]
    fn training_keeps_traces_valid_and_weights_finite() {
        let mut l = layer(5);
        let mut rng = MatrixRng::seed_from(6);
        for _ in 0..30 {
            let x = toy_batch(&mut rng, 32);
            let act = l.train_batch(&x).unwrap();
            assert!(act.all_finite());
            assert!(l.traces().check_invariants(1e-4).is_ok());
        }
        assert!(l.weights.all_finite());
        assert!(l.masked_weights.all_finite());
        assert!(l.bias.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_differentiates_the_minicolumns() {
        let mut l = layer(7);
        let mut rng = MatrixRng::seed_from(8);
        for _ in 0..80 {
            let x = toy_batch(&mut rng, 32);
            l.train_batch(&x).unwrap();
        }
        // After training, the two cluster prototypes should activate
        // different minicolumns within the first HCU.
        let proto_a = Matrix::from_fn(1, 20, |_, c| if c < 10 { 1.0 } else { 0.0 });
        let proto_b = Matrix::from_fn(1, 20, |_, c| if c >= 10 { 1.0 } else { 0.0 });
        let act_a = l.forward(&proto_a).unwrap();
        let act_b = l.forward(&proto_b).unwrap();
        let win_a = bcpnn_tensor::vector::argmax(&act_a.row(0)[0..4]);
        let win_b = bcpnn_tensor::vector::argmax(&act_b.row(0)[0..4]);
        assert_ne!(
            win_a, win_b,
            "distinct input clusters should recruit distinct MCUs"
        );
    }

    #[test]
    fn structural_plasticity_preserves_budget_and_updates_masked_weights() {
        let mut l = layer(9);
        let mut rng = MatrixRng::seed_from(10);
        for _ in 0..10 {
            let x = toy_batch(&mut rng, 32);
            l.train_batch(&x).unwrap();
        }
        let before_active = l.mask().active_per_hcu();
        let _report = l.structural_plasticity_step();
        assert_eq!(l.mask().active_per_hcu(), before_active);
        // Masked weights must be consistent with the new mask: every silent
        // connection's weights must be zero.
        for h in 0..l.mask().n_hcu() {
            for i in l.mask().silent_indices(h) {
                for m in 0..l.params().n_mcu {
                    let j = h * l.params().n_mcu + m;
                    assert_eq!(l.masked_weights.get(i, j), 0.0);
                }
            }
        }
    }

    #[test]
    fn forward_into_reuses_a_stale_buffer_bit_exactly() {
        let l = layer(20);
        let mut rng = MatrixRng::seed_from(21);
        let mut out = Matrix::filled(3, 3, f32::NAN); // wrong shape, poisoned
        for n in [6usize, 2, 9] {
            let x = toy_batch(&mut rng, n);
            l.forward_into(&x, &mut out).unwrap();
            assert_eq!(out, l.forward(&x).unwrap(), "batch of {n}");
        }
    }

    #[test]
    fn train_batch_with_matches_the_allocating_twin() {
        let mut a = layer(22);
        let mut b = layer(22);
        let mut ws = Workspace::new();
        let mut rng1 = MatrixRng::seed_from(23);
        let mut rng2 = MatrixRng::seed_from(23);
        for _ in 0..10 {
            let xa = toy_batch(&mut rng1, 16);
            let xb = toy_batch(&mut rng2, 16);
            let act = a.train_batch(&xa).unwrap();
            b.train_batch_with(&xb, &mut ws).unwrap();
            assert_eq!(act, ws.hidden, "activations must be bit-identical");
        }
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias, b.bias);
        assert_eq!(a.traces(), b.traces());
    }

    #[test]
    fn same_seed_reproduces_the_same_layer() {
        let mut a = layer(11);
        let mut b = layer(11);
        let mut rng1 = MatrixRng::seed_from(12);
        let mut rng2 = MatrixRng::seed_from(12);
        for _ in 0..5 {
            let xa = toy_batch(&mut rng1, 16);
            let xb = toy_batch(&mut rng2, 16);
            a.train_batch(&xa).unwrap();
            b.train_batch(&xb).unwrap();
        }
        assert!(a.weights.max_abs_diff(&b.weights) < 1e-6);
        assert_eq!(a.mask(), b.mask());
    }
}
