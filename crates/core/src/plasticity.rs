//! Structural plasticity: learning *where to look*.
//!
//! Once per epoch (§III-B of the paper) every hypercolumn re-evaluates its
//! receptive field: active connections that carry little information about
//! the HCU's minicolumn variable are silenced, and silent connections that
//! would carry more information are activated. The information carried by a
//! connection is the mutual information between the binary input variable
//! and the HCU's categorical (minicolumn) variable, estimated directly from
//! the probability traces — silent connections keep updating their traces,
//! which is why the training cost is independent of the receptive-field
//! size (Fig. 4's flat timing curve).

use bcpnn_backend::Backend;
use bcpnn_tensor::Matrix;

use crate::mask::ReceptiveFieldMask;
use crate::traces::ProbabilityTraces;

/// Configuration of the structural-plasticity update.
#[derive(Debug, Clone, PartialEq)]
pub struct PlasticityConfig {
    /// Maximum number of (silence, activate) swaps per HCU per update.
    pub max_swaps: usize,
    /// A swap only happens when the candidate silent connection scores at
    /// least this much more information (in nats) than the active
    /// connection it replaces. Hysteresis against oscillation.
    pub min_improvement: f32,
}

impl Default for PlasticityConfig {
    fn default() -> Self {
        Self {
            max_swaps: 8,
            min_improvement: 1e-4,
        }
    }
}

/// Summary of one structural-plasticity update.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlasticityReport {
    /// Number of connection swaps performed per HCU.
    pub swaps_per_hcu: Vec<usize>,
    /// Mean information score of the active connections after the update,
    /// per HCU (diagnostic, rendered by the in-situ observer).
    pub mean_active_score: Vec<f32>,
}

impl PlasticityReport {
    /// Total number of swaps across all HCUs.
    pub fn total_swaps(&self) -> usize {
        self.swaps_per_hcu.iter().sum()
    }
}

/// The structural-plasticity operator.
#[derive(Debug, Clone, Default)]
pub struct StructuralPlasticity {
    config: PlasticityConfig,
}

impl StructuralPlasticity {
    /// Create the operator with the given configuration.
    pub fn new(config: PlasticityConfig) -> Self {
        Self { config }
    }

    /// Access the configuration.
    pub fn config(&self) -> &PlasticityConfig {
        &self.config
    }

    /// Compute the information score of every (HCU, input) pair from the
    /// traces. Returned matrix is `n_hcu x n_inputs`.
    pub fn scores(
        &self,
        backend: &dyn Backend,
        traces: &ProbabilityTraces,
        n_mcu: usize,
        n_hcu: usize,
    ) -> Matrix<f32> {
        let mut scores = Matrix::zeros(n_hcu, traces.n_inputs());
        backend.mutual_information(&traces.pi, &traces.pj, &traces.pij, n_mcu, &mut scores);
        scores
    }

    /// Apply one plasticity update: for every HCU, swap up to
    /// `max_swaps` of its lowest-scoring active connections for its
    /// highest-scoring silent connections (only when the improvement exceeds
    /// `min_improvement`). Returns a report of what changed.
    pub fn update(&self, mask: &mut ReceptiveFieldMask, scores: &Matrix<f32>) -> PlasticityReport {
        assert_eq!(
            (mask.n_hcu(), mask.n_inputs()),
            scores.shape(),
            "score matrix must be n_hcu x n_inputs"
        );
        let mut report = PlasticityReport::default();
        for h in 0..mask.n_hcu() {
            let score_row = scores.row(h);
            // Active connections sorted by ascending score (worst first).
            let mut active: Vec<usize> = mask.active_indices(h);
            active.sort_by(|&a, &b| {
                score_row[a]
                    .partial_cmp(&score_row[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Silent connections sorted by descending score (best first).
            let mut silent: Vec<usize> = mask.silent_indices(h);
            silent.sort_by(|&a, &b| {
                score_row[b]
                    .partial_cmp(&score_row[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut swaps = 0usize;
            for k in 0..self.config.max_swaps.min(active.len()).min(silent.len()) {
                let worst_active = active[k];
                let best_silent = silent[k];
                if score_row[best_silent] > score_row[worst_active] + self.config.min_improvement {
                    mask.swap(h, worst_active, best_silent);
                    swaps += 1;
                } else {
                    break;
                }
            }
            report.swaps_per_hcu.push(swaps);
            let act = mask.active_indices(h);
            let mean = if act.is_empty() {
                0.0
            } else {
                act.iter().map(|&i| score_row[i]).sum::<f32>() / act.len() as f32
            };
            report.mean_active_score.push(mean);
        }
        report
    }

    /// Convenience wrapper: compute scores from the traces and apply the
    /// update in one call.
    pub fn update_from_traces(
        &self,
        backend: &dyn Backend,
        traces: &ProbabilityTraces,
        n_mcu: usize,
        mask: &mut ReceptiveFieldMask,
    ) -> PlasticityReport {
        let scores = self.scores(backend, traces, n_mcu, mask.n_hcu());
        self.update(mask, &scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcpnn_tensor::MatrixRng;

    fn uniform_mask(n_hcu: usize, n_inputs: usize, active: usize, seed: u64) -> ReceptiveFieldMask {
        let mut rng = MatrixRng::seed_from(seed);
        ReceptiveFieldMask::random(n_hcu, n_inputs, active, &mut rng)
    }

    #[test]
    fn update_moves_towards_high_scoring_inputs() {
        // Scores: inputs 0..5 carry information, the rest none.
        let n_inputs = 20;
        let scores = Matrix::from_fn(1, n_inputs, |_, i| if i < 5 { 1.0 } else { 0.0 });
        let mut mask = uniform_mask(1, n_inputs, 5, 1);
        let plast = StructuralPlasticity::new(PlasticityConfig {
            max_swaps: 5,
            min_improvement: 1e-6,
        });
        // Run a few rounds; the mask must converge onto inputs 0..5.
        for _ in 0..5 {
            plast.update(&mut mask, &scores);
        }
        let active = mask.active_indices(0);
        assert_eq!(
            active,
            vec![0, 1, 2, 3, 4],
            "mask should cover the informative inputs"
        );
    }

    #[test]
    fn update_preserves_connection_budget() {
        let n_inputs = 50;
        let mut rng = MatrixRng::seed_from(2);
        let scores: Matrix<f32> = rng.uniform(3, n_inputs, 0.0, 1.0);
        let mut mask = uniform_mask(3, n_inputs, 15, 3);
        let plast = StructuralPlasticity::default();
        let report = plast.update(&mut mask, &scores);
        assert_eq!(report.swaps_per_hcu.len(), 3);
        for h in 0..3 {
            assert_eq!(mask.active_indices(h).len(), 15);
        }
    }

    #[test]
    fn no_swaps_when_already_optimal() {
        let n_inputs = 10;
        let scores = Matrix::from_fn(1, n_inputs, |_, i| if i < 3 { 1.0 } else { 0.0 });
        // Mask already sits on the three informative inputs.
        let mut m = Matrix::zeros(1, n_inputs);
        for i in 0..3 {
            m.set(0, i, 1.0);
        }
        let mut mask = ReceptiveFieldMask::from_matrix(m);
        let plast = StructuralPlasticity::default();
        let report = plast.update(&mut mask, &scores);
        assert_eq!(report.total_swaps(), 0);
        assert_eq!(mask.active_indices(0), vec![0, 1, 2]);
    }

    #[test]
    fn min_improvement_acts_as_hysteresis() {
        let n_inputs = 6;
        // Tiny score differences everywhere.
        let scores = Matrix::from_fn(1, n_inputs, |_, i| i as f32 * 1e-6);
        let mut mask = uniform_mask(1, n_inputs, 3, 4);
        let before = mask.clone();
        let plast = StructuralPlasticity::new(PlasticityConfig {
            max_swaps: 3,
            min_improvement: 0.1,
        });
        plast.update(&mut mask, &scores);
        assert_eq!(mask, before, "improvements below the threshold are ignored");
    }

    #[test]
    fn max_swaps_bounds_the_update() {
        let n_inputs = 40;
        // All active connections are worthless, all silent ones are great.
        let mut m = Matrix::zeros(1, n_inputs);
        for i in 0..10 {
            m.set(0, i, 1.0);
        }
        let mut mask = ReceptiveFieldMask::from_matrix(m);
        let scores = Matrix::from_fn(1, n_inputs, |_, i| if i < 10 { 0.0 } else { 1.0 });
        let plast = StructuralPlasticity::new(PlasticityConfig {
            max_swaps: 4,
            min_improvement: 1e-6,
        });
        let report = plast.update(&mut mask, &scores);
        assert_eq!(report.total_swaps(), 4);
        assert_eq!(mask.active_indices(0).len(), 10);
    }

    #[test]
    fn report_mean_scores_increase_after_update() {
        let n_inputs = 30;
        let scores = Matrix::from_fn(1, n_inputs, |_, i| i as f32 / n_inputs as f32);
        let mut mask = uniform_mask(1, n_inputs, 10, 5);
        let plast = StructuralPlasticity::new(PlasticityConfig {
            max_swaps: 10,
            min_improvement: 1e-9,
        });
        let before_mean: f32 = {
            let act = mask.active_indices(0);
            act.iter().map(|&i| scores.get(0, i)).sum::<f32>() / act.len() as f32
        };
        let report = plast.update(&mut mask, &scores);
        assert!(report.mean_active_score[0] >= before_mean);
    }

    #[test]
    fn scores_from_traces_use_the_backend() {
        let backend = bcpnn_backend::BackendKind::Naive.create();
        let traces = ProbabilityTraces::new(6, 4, 2, 0.3);
        let plast = StructuralPlasticity::default();
        let s = plast.scores(backend.as_ref(), &traces, 2, 2);
        assert_eq!(s.shape(), (2, 6));
        // Independent initial traces carry ~zero information.
        assert!(s.as_slice().iter().all(|v| v.abs() < 1e-3));
    }
}
