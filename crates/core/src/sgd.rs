//! SGD-trained softmax-regression head.
//!
//! The paper's best number (69.15 % accuracy, 76.4 % AUC) comes from mixing
//! unsupervised BCPNN features with a classification layer trained by
//! stochastic gradient descent ("BCPNN + SGD"). This module provides that
//! head: a linear softmax classifier with mini-batch SGD, momentum, L2
//! weight decay and exponential learning-rate decay. It also doubles as the
//! logistic-regression baseline when applied to raw encoded features.

use bcpnn_tensor::{gemm, gemm_tn, Matrix, MatrixRng};

use crate::error::{CoreError, CoreResult};
use crate::params::SgdParams;
use crate::workspace::Workspace;

/// Softmax-regression classifier trained by mini-batch SGD.
#[derive(Debug, Clone)]
pub struct SgdClassifier {
    n_inputs: usize,
    n_classes: usize,
    params: SgdParams,
    weights: Matrix<f32>,
    bias: Vec<f32>,
    w_velocity: Matrix<f32>,
    b_velocity: Vec<f32>,
    current_lr: f32,
}

impl SgdClassifier {
    /// Create an SGD classifier with small random initial weights.
    pub fn new(
        n_inputs: usize,
        n_classes: usize,
        params: SgdParams,
        seed: u64,
    ) -> CoreResult<Self> {
        if n_inputs == 0 || n_classes < 2 {
            return Err(CoreError::InvalidParams(
                "SGD classifier needs at least one input and two classes".into(),
            ));
        }
        params.validate().map_err(CoreError::InvalidParams)?;
        let mut rng = MatrixRng::seed_from(seed);
        let scale = (1.0 / n_inputs as f64).sqrt() * 0.1;
        let weights: Matrix<f32> = rng.normal(n_inputs, n_classes, 0.0, scale);
        Ok(Self {
            n_inputs,
            n_classes,
            current_lr: params.learning_rate,
            params,
            bias: vec![0.0; n_classes],
            w_velocity: Matrix::zeros(n_inputs, n_classes),
            b_velocity: vec![0.0; n_classes],
            weights,
        })
    }

    /// Number of input dimensions.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The current learning rate (decays over epochs).
    pub fn current_lr(&self) -> f32 {
        self.current_lr
    }

    /// The weight matrix (`n_inputs x n_classes`), e.g. for persistence.
    pub fn weights(&self) -> &Matrix<f32> {
        &self.weights
    }

    /// The bias vector (`n_classes`), e.g. for persistence.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Overwrite the parameters (used when loading a persisted model).
    ///
    /// # Errors
    /// Fails if the shapes do not match the classifier.
    pub fn set_parameters(&mut self, weights: Matrix<f32>, bias: Vec<f32>) -> CoreResult<()> {
        if weights.shape() != (self.n_inputs, self.n_classes) || bias.len() != self.n_classes {
            return Err(CoreError::DataMismatch(
                "persisted SGD parameters have the wrong shape".into(),
            ));
        }
        self.weights = weights;
        self.bias = bias;
        self.w_velocity = Matrix::zeros(self.n_inputs, self.n_classes);
        self.b_velocity = vec![0.0; self.n_classes];
        Ok(())
    }

    fn check_input(&self, x: &Matrix<f32>) -> CoreResult<()> {
        if x.cols() != self.n_inputs {
            return Err(CoreError::DataMismatch(format!(
                "input has {} columns, classifier expects {}",
                x.cols(),
                self.n_inputs
            )));
        }
        Ok(())
    }

    /// Class-probability predictions (`batch x n_classes`).
    ///
    /// Allocating convenience over [`SgdClassifier::predict_proba_into`].
    pub fn predict_proba(&self, x: &Matrix<f32>) -> CoreResult<Matrix<f32>> {
        let mut out = Matrix::zeros(0, 0);
        self.predict_proba_into(x, &mut out)?;
        Ok(out)
    }

    /// Class-probability predictions written into a caller-provided buffer
    /// (reset to `batch x n_classes` and fully overwritten).
    pub fn predict_proba_into(&self, x: &Matrix<f32>, out: &mut Matrix<f32>) -> CoreResult<()> {
        self.check_input(x)?;
        out.reset(x.rows(), self.n_classes);
        gemm(1.0, x, &self.weights, 0.0, out);
        for r in 0..out.rows() {
            for (v, &b) in out.row_mut(r).iter_mut().zip(self.bias.iter()) {
                *v += b;
            }
        }
        // Full-width groups = one softmax per row, through the SIMD dispatch
        // kernel (vectorized exp on the lane/avx2 tiers).
        bcpnn_tensor::simd::dispatch::softmax_row_groups_par(out, out.cols());
        Ok(())
    }

    /// Hard class predictions.
    pub fn predict(&self, x: &Matrix<f32>) -> CoreResult<Vec<usize>> {
        Ok(bcpnn_tensor::simd::dispatch::row_argmax(
            &self.predict_proba(x)?,
        ))
    }

    /// Run one SGD step on a mini-batch. Returns the batch's mean
    /// cross-entropy loss.
    ///
    /// Allocating convenience over [`SgdClassifier::train_batch_with`];
    /// epoch loops should prefer the workspace variant.
    pub fn train_batch(&mut self, x: &Matrix<f32>, labels: &[usize]) -> CoreResult<f32> {
        let mut proba = Matrix::zeros(0, 0);
        let mut grad_w = Matrix::zeros(0, 0);
        let mut grad_b = Vec::new();
        self.train_batch_core(x, labels, &mut proba, &mut grad_w, &mut grad_b)
    }

    /// Run one SGD step drawing the probability and gradient scratch from
    /// `ws` — zero allocations once the workspace has seen the batch shape.
    /// Bit-identical to [`SgdClassifier::train_batch`].
    pub fn train_batch_with(
        &mut self,
        x: &Matrix<f32>,
        labels: &[usize],
        ws: &mut Workspace,
    ) -> CoreResult<f32> {
        let mut proba = std::mem::take(&mut ws.proba);
        let mut grad_w = std::mem::take(&mut ws.grad_w);
        let mut grad_b = std::mem::take(&mut ws.grad_b);
        let result = self.train_batch_core(x, labels, &mut proba, &mut grad_w, &mut grad_b);
        ws.proba = proba;
        ws.grad_w = grad_w;
        ws.grad_b = grad_b;
        result
    }

    /// The one authoritative SGD step both spellings route through.
    fn train_batch_core(
        &mut self,
        x: &Matrix<f32>,
        labels: &[usize],
        proba: &mut Matrix<f32>,
        grad_w: &mut Matrix<f32>,
        grad_b: &mut Vec<f32>,
    ) -> CoreResult<f32> {
        self.check_input(x)?;
        if x.rows() != labels.len() {
            return Err(CoreError::DataMismatch(
                "batch size and label count differ".into(),
            ));
        }
        if x.rows() == 0 {
            return Ok(0.0);
        }
        for &l in labels {
            if l >= self.n_classes {
                return Err(CoreError::DataMismatch(format!(
                    "label {l} out of range for {} classes",
                    self.n_classes
                )));
            }
        }
        let batch = x.rows() as f32;
        self.predict_proba_into(x, proba)?;
        // Loss before turning proba into the gradient.
        let mut loss = 0.0f32;
        for (r, &l) in labels.iter().enumerate() {
            loss -= proba.get(r, l).max(1e-12).ln();
        }
        loss /= batch;
        // Gradient of cross-entropy wrt logits: (p - y) / B.
        for (r, &l) in labels.iter().enumerate() {
            proba.add_at(r, l, -1.0);
        }
        // grad_W = xᵀ · (p - y) / B  + weight_decay · W
        grad_w.reset(self.n_inputs, self.n_classes);
        gemm_tn(1.0 / batch, x, proba, 0.0, grad_w);
        if self.params.weight_decay > 0.0 {
            let wd = self.params.weight_decay;
            let w = self.weights.as_slice();
            for (g, &wv) in grad_w.as_mut_slice().iter_mut().zip(w.iter()) {
                *g += wd * wv;
            }
        }
        bcpnn_tensor::reduce::col_sums_into(proba, grad_b);
        for v in grad_b.iter_mut() {
            *v /= batch;
        }
        // Momentum update.
        let lr = self.current_lr;
        let mom = self.params.momentum;
        for ((v, g), w) in self
            .w_velocity
            .as_mut_slice()
            .iter_mut()
            .zip(grad_w.as_slice().iter())
            .zip(self.weights.as_mut_slice().iter_mut())
        {
            *v = mom * *v - lr * g;
            *w += *v;
        }
        for ((v, g), b) in self
            .b_velocity
            .iter_mut()
            .zip(grad_b.iter())
            .zip(self.bias.iter_mut())
        {
            *v = mom * *v - lr * g;
            *b += *v;
        }
        Ok(loss)
    }

    /// Signal the end of an epoch: decays the learning rate.
    pub fn end_epoch(&mut self) {
        self.current_lr *= self.params.lr_decay;
    }

    /// Train for `epochs` passes over `(x, labels)` with the given batch
    /// size, shuffling between epochs. Returns the mean loss of each epoch.
    pub fn fit(
        &mut self,
        x: &Matrix<f32>,
        labels: &[usize],
        epochs: usize,
        batch_size: usize,
        seed: u64,
    ) -> CoreResult<Vec<f32>> {
        self.check_input(x)?;
        if x.rows() != labels.len() {
            return Err(CoreError::DataMismatch(
                "dataset size and label count differ".into(),
            ));
        }
        let batch_size = batch_size.max(1);
        let mut rng = MatrixRng::seed_from(seed);
        let mut losses = Vec::with_capacity(epochs);
        // One workspace for the whole fit: batch assembly, probabilities
        // and gradients stop hitting the allocator after the first chunk.
        let mut ws = Workspace::new();
        for _ in 0..epochs {
            let order = rng.permutation(x.rows());
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                let mut xb = std::mem::take(&mut ws.batch);
                let mut yb = std::mem::take(&mut ws.labels);
                x.select_rows_into(chunk, &mut xb);
                yb.clear();
                yb.extend(chunk.iter().map(|&i| labels[i]));
                let step = self.train_batch_with(&xb, &yb, &mut ws);
                ws.batch = xb;
                ws.labels = yb;
                epoch_loss += step?;
                batches += 1;
            }
            self.end_epoch();
            losses.push(if batches > 0 {
                epoch_loss / batches as f32
            } else {
                0.0
            });
        }
        Ok(losses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Vec<usize>) {
        let mut rng = MatrixRng::seed_from(seed);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let x = Matrix::from_fn(n, d, |r, c| {
            let cls = labels[r];
            let hot = if cls == 0 { c < d / 2 } else { c >= d / 2 };
            let base: f64 = if hot { 1.0 } else { 0.0 };
            (base + rng.uniform_scalar::<f64>(-0.2, 0.2)) as f32
        });
        (x, labels)
    }

    #[test]
    fn constructor_validates() {
        assert!(SgdClassifier::new(0, 2, SgdParams::default(), 0).is_err());
        assert!(SgdClassifier::new(5, 1, SgdParams::default(), 0).is_err());
        let bad = SgdParams {
            learning_rate: -1.0,
            ..Default::default()
        };
        assert!(SgdClassifier::new(5, 2, bad, 0).is_err());
    }

    #[test]
    fn probabilities_are_normalised() {
        let c = SgdClassifier::new(6, 3, SgdParams::default(), 1).unwrap();
        let (x, _) = toy(10, 6, 2);
        let p = c.predict_proba(&x).unwrap();
        for r in 0..10 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn loss_decreases_during_training() {
        let mut c = SgdClassifier::new(8, 2, SgdParams::default(), 3).unwrap();
        let (x, y) = toy(256, 8, 4);
        let losses = c.fit(&x, &y, 15, 32, 5).unwrap();
        assert!(losses.first().unwrap() > losses.last().unwrap());
        assert!(*losses.last().unwrap() < 0.3, "final loss {losses:?}");
    }

    #[test]
    fn learns_a_separable_problem() {
        let mut c = SgdClassifier::new(10, 2, SgdParams::default(), 6).unwrap();
        let (x, y) = toy(512, 10, 7);
        c.fit(&x, &y, 20, 64, 8).unwrap();
        let (xt, yt) = toy(200, 10, 9);
        let preds = c.predict(&xt).unwrap();
        let acc = preds.iter().zip(yt.iter()).filter(|(a, b)| a == b).count() as f64 / 200.0;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn learning_rate_decays_per_epoch() {
        let mut c = SgdClassifier::new(4, 2, SgdParams::default(), 10).unwrap();
        let lr0 = c.current_lr();
        c.end_epoch();
        assert!(c.current_lr() < lr0);
    }

    #[test]
    fn rejects_bad_labels_and_shapes() {
        let mut c = SgdClassifier::new(4, 2, SgdParams::default(), 11).unwrap();
        let x = Matrix::zeros(2, 4);
        assert!(c.train_batch(&x, &[0, 5]).is_err());
        assert!(c.train_batch(&x, &[0]).is_err());
        assert!(c.predict(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn workspace_training_matches_the_allocating_twin_bit_exactly() {
        let mut a = SgdClassifier::new(8, 2, SgdParams::default(), 30).unwrap();
        let mut b = a.clone();
        let mut ws = Workspace::new();
        let (x, y) = toy(96, 8, 31);
        for chunk in (0..96).collect::<Vec<_>>().chunks(32) {
            let xb = x.select_rows(chunk);
            let yb: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
            let la = a.train_batch(&xb, &yb).unwrap();
            let lb = b.train_batch_with(&xb, &yb, &mut ws).unwrap();
            assert_eq!(la, lb);
        }
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
        // predict_proba_into on a stale buffer equals the allocating path.
        let direct = a.predict_proba(&x).unwrap();
        let mut reused = Matrix::filled(1, 5, f32::NAN);
        a.predict_proba_into(&x, &mut reused).unwrap();
        assert_eq!(direct, reused);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut c = SgdClassifier::new(4, 2, SgdParams::default(), 12).unwrap();
        let x = Matrix::zeros(0, 4);
        assert_eq!(c.train_batch(&x, &[]).unwrap(), 0.0);
    }
}
