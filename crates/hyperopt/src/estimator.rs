//! Scoring [`Estimator`] factories: the bridge between the search drivers
//! and the core model API.
//!
//! Both search drivers ([`RandomSearch`], [`EvolutionSearch`]) optimise an
//! opaque `ParamSet → f64` objective. This module supplies the canonical
//! objective for model selection: a *factory* maps each sampled parameter
//! set to an [`Estimator`] (any estimator — network-only, or a full
//! pipeline estimator whose encoder parameters are themselves searched),
//! the estimator is fitted on a training split, and the fitted
//! [`Predictor`] is scored by validation accuracy. Configurations that
//! fail to fit score `-∞` rather than aborting the search.
//!
//! ```
//! use bcpnn_backend::BackendKind;
//! use bcpnn_core::model::{NetworkEstimator, PipelineEstimator};
//! use bcpnn_core::{Network, TrainingParams};
//! use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
//! use bcpnn_hyperopt::{search_estimator, EvalSplit, ParamSpace, RandomSearch};
//!
//! let train = generate(&SyntheticHiggsConfig { n_samples: 300, ..Default::default() });
//! let valid = generate(&SyntheticHiggsConfig { n_samples: 150, seed: 9, ..Default::default() });
//! let split = EvalSplit {
//!     x_train: &train.features,
//!     y_train: &train.labels,
//!     x_valid: &valid.features,
//!     y_valid: &valid.labels,
//! };
//!
//! // Encoder parameters (n_bins) search right alongside network ones.
//! let space = ParamSpace::new()
//!     .integer("n_bins", 4, 12)
//!     .continuous("receptive_field", 0.1, 0.9);
//! let history = search_estimator(&RandomSearch::new(space, 1), 3, &split, |params| {
//!     Ok(PipelineEstimator::new(
//!         params["n_bins"].as_i64() as usize,
//!         NetworkEstimator::new(
//!             Network::builder()
//!                 .hidden(1, 4, params["receptive_field"].as_f64())
//!                 .classes(2)
//!                 .backend(BackendKind::Naive),
//!             TrainingParams {
//!                 unsupervised_epochs: 1,
//!                 supervised_epochs: 1,
//!                 batch_size: 50,
//!                 ..Default::default()
//!             },
//!         ),
//!     ))
//! });
//! assert_eq!(history.len(), 3);
//! ```

use bcpnn_core::model::{Estimator, Predictor};
use bcpnn_core::CoreResult;
use bcpnn_tensor::Matrix;

use crate::evolution::EvolutionSearch;
use crate::random_search::RandomSearch;
use crate::result::SearchHistory;
use crate::space::ParamSet;

/// A fixed train/validation split the search evaluates candidates on.
///
/// For pipeline estimators the matrices hold *raw* features (the encoder
/// is part of the candidate); for network estimators they hold whatever
/// representation the network consumes.
#[derive(Debug, Clone, Copy)]
pub struct EvalSplit<'a> {
    /// Training rows.
    pub x_train: &'a Matrix<f32>,
    /// Training labels.
    pub y_train: &'a [usize],
    /// Validation rows.
    pub x_valid: &'a Matrix<f32>,
    /// Validation labels.
    pub y_valid: &'a [usize],
}

/// Fit an estimator on the split's training half and score the fitted
/// predictor by validation accuracy. Failures (invalid configuration,
/// fitting error, evaluation error) score `-∞` so the search simply moves
/// past them.
pub fn fit_and_score<E: Estimator>(estimator: &E, split: &EvalSplit<'_>) -> f64 {
    match estimator.fit(split.x_train, split.y_train) {
        Ok(fitted) => fitted
            .evaluate(split.x_valid, split.y_valid)
            .map(|report| report.accuracy)
            .unwrap_or(f64::NEG_INFINITY),
        Err(_) => f64::NEG_INFINITY,
    }
}

/// A search driver that can optimise an arbitrary objective — the common
/// face of [`RandomSearch`] and [`EvolutionSearch`], so estimator-factory
/// scoring is written once for both.
pub trait SearchStrategy {
    /// Evaluate up to `budget` candidates with `objective` (higher is
    /// better) and return the trial history.
    fn search(&self, budget: usize, objective: &mut dyn FnMut(&ParamSet) -> f64) -> SearchHistory;
}

impl SearchStrategy for RandomSearch {
    fn search(&self, budget: usize, objective: &mut dyn FnMut(&ParamSet) -> f64) -> SearchHistory {
        self.run(budget, objective)
    }
}

impl SearchStrategy for EvolutionSearch {
    fn search(&self, budget: usize, objective: &mut dyn FnMut(&ParamSet) -> f64) -> SearchHistory {
        self.run(budget, objective)
    }
}

/// Drive a search over an [`Estimator`] factory: each candidate parameter
/// set is turned into an estimator, fitted on `split.x_train`, and scored
/// by validation accuracy. Factories may reject a parameter set by
/// returning `Err`; it scores `-∞`.
pub fn search_estimator<S, E, F>(
    strategy: &S,
    budget: usize,
    split: &EvalSplit<'_>,
    factory: F,
) -> SearchHistory
where
    S: SearchStrategy + ?Sized,
    E: Estimator,
    F: Fn(&ParamSet) -> CoreResult<E>,
{
    let mut objective = |params: &ParamSet| match factory(params) {
        Ok(estimator) => fit_and_score(&estimator, split),
        Err(_) => f64::NEG_INFINITY,
    };
    strategy.search(budget, &mut objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolution::EvolutionConfig;
    use crate::space::ParamSpace;
    use bcpnn_backend::BackendKind;
    use bcpnn_core::model::{NetworkEstimator, PipelineEstimator};
    use bcpnn_core::{CoreError, Network, TrainingParams};
    use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
    use bcpnn_data::Dataset;

    fn higgs(n: usize, seed: u64) -> Dataset {
        generate(&SyntheticHiggsConfig {
            n_samples: n,
            seed,
            ..Default::default()
        })
    }

    fn tiny_training() -> TrainingParams {
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 64,
            ..Default::default()
        }
    }

    #[test]
    fn fit_and_score_returns_accuracy_in_unit_range() {
        let train = higgs(300, 1);
        let valid = higgs(150, 2);
        let split = EvalSplit {
            x_train: &train.features,
            y_train: &train.labels,
            x_valid: &valid.features,
            y_valid: &valid.labels,
        };
        let estimator = PipelineEstimator::new(
            8,
            NetworkEstimator::new(
                Network::builder()
                    .hidden(1, 4, 0.4)
                    .classes(2)
                    .backend(BackendKind::Naive)
                    .seed(3),
                tiny_training(),
            ),
        );
        let score = fit_and_score(&estimator, &split);
        assert!((0.0..=1.0).contains(&score), "score {score}");
    }

    #[test]
    fn failing_configurations_score_negative_infinity() {
        let train = higgs(100, 4);
        let split = EvalSplit {
            x_train: &train.features,
            y_train: &train.labels,
            x_valid: &train.features,
            y_valid: &train.labels,
        };
        // n_bins = 1 is an invalid encoder configuration.
        let bad = PipelineEstimator::new(
            1,
            NetworkEstimator::new(
                Network::builder().classes(2).backend(BackendKind::Naive),
                tiny_training(),
            ),
        );
        assert_eq!(fit_and_score(&bad, &split), f64::NEG_INFINITY);
    }

    #[test]
    fn both_strategies_search_an_estimator_factory() {
        let train = higgs(250, 5);
        let valid = higgs(120, 6);
        let split = EvalSplit {
            x_train: &train.features,
            y_train: &train.labels,
            x_valid: &valid.features,
            y_valid: &valid.labels,
        };
        let space =
            ParamSpace::new()
                .integer("n_bins", 4, 10)
                .continuous("receptive_field", 0.1, 0.9);
        let factory = |params: &ParamSet| -> CoreResult<PipelineEstimator> {
            let n_bins = params["n_bins"].as_i64();
            if n_bins < 2 {
                return Err(CoreError::InvalidParams("n_bins too small".into()));
            }
            Ok(PipelineEstimator::new(
                n_bins as usize,
                NetworkEstimator::new(
                    Network::builder()
                        .hidden(1, 3, params["receptive_field"].as_f64())
                        .classes(2)
                        .backend(BackendKind::Naive)
                        .seed(7),
                    tiny_training(),
                ),
            ))
        };
        let random = RandomSearch::new(space.clone(), 8);
        let history = search_estimator(&random, 3, &split, factory);
        assert_eq!(history.len(), 3);
        assert!(history.best().unwrap().score > 0.4);
        let evolution = EvolutionSearch::new(
            space,
            EvolutionConfig {
                offspring: 2,
                mutation_rate: 0.5,
                seed: 9,
            },
        );
        let history = search_estimator(&evolution, 3, &split, factory);
        assert_eq!(history.len(), 3);
        // The searched encoder parameter stays inside its bounds.
        for trial in history.trials() {
            let bins = trial.params["n_bins"].as_i64();
            assert!((4..=10).contains(&bins));
        }
    }

    #[test]
    fn strategies_are_object_safe() {
        let space = ParamSpace::new().continuous("x", 0.0, 1.0);
        let strategies: Vec<Box<dyn SearchStrategy>> = vec![
            Box::new(RandomSearch::new(space.clone(), 1)),
            Box::new(EvolutionSearch::new(space, EvolutionConfig::default())),
        ];
        for strategy in &strategies {
            let history = strategy.search(4, &mut |p: &ParamSet| -p["x"].as_f64());
            assert_eq!(history.len(), 4);
        }
    }
}
