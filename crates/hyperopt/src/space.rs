//! Typed hyperparameter search spaces.
//!
//! BCPNN exposes many use-case-dependent hyperparameters (§IV of the paper),
//! which StreamBrain searches with Ax + Nevergrad. This module provides the
//! equivalent building block: a named collection of parameter dimensions
//! (continuous on a linear or log scale, integer, categorical) that can be
//! sampled, mutated and clamped.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;

/// One parameter dimension.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamSpec {
    /// A real parameter sampled uniformly in `[low, high]`.
    Continuous {
        /// Lower bound (inclusive).
        low: f64,
        /// Upper bound (inclusive).
        high: f64,
    },
    /// A real parameter sampled log-uniformly in `[low, high]` (both > 0);
    /// appropriate for learning rates and trace time constants.
    LogContinuous {
        /// Lower bound (inclusive, > 0).
        low: f64,
        /// Upper bound (inclusive, > 0).
        high: f64,
    },
    /// An integer parameter sampled uniformly in `[low, high]`.
    Integer {
        /// Lower bound (inclusive).
        low: i64,
        /// Upper bound (inclusive).
        high: i64,
    },
    /// A categorical parameter: one of a fixed set of named choices.
    Categorical {
        /// The available choices.
        choices: Vec<String>,
    },
}

impl ParamSpec {
    fn validate(&self, name: &str) -> Result<(), String> {
        match self {
            ParamSpec::Continuous { low, high } => {
                // `is_finite` also rejects NaN bounds, which a plain
                // ordering comparison would silently accept.
                if !low.is_finite() || !high.is_finite() || low >= high {
                    return Err(format!("{name}: low must be < high"));
                }
            }
            ParamSpec::LogContinuous { low, high } => {
                if !(high.is_finite() && *low > 0.0 && low < high) {
                    return Err(format!("{name}: need 0 < low < high for a log scale"));
                }
            }
            ParamSpec::Integer { low, high } => {
                if low > high {
                    return Err(format!("{name}: low must be <= high"));
                }
            }
            ParamSpec::Categorical { choices } => {
                if choices.is_empty() {
                    return Err(format!("{name}: categorical needs at least one choice"));
                }
            }
        }
        Ok(())
    }
}

/// A concrete parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Real value.
    Float(f64),
    /// Integer value.
    Int(i64),
    /// Categorical choice.
    Choice(String),
}

impl ParamValue {
    /// The value as `f64` (integers are converted; panics for categoricals).
    pub fn as_f64(&self) -> f64 {
        match self {
            ParamValue::Float(v) => *v,
            ParamValue::Int(v) => *v as f64,
            ParamValue::Choice(c) => panic!("categorical value {c:?} has no numeric form"),
        }
    }

    /// The value as `i64` (floats are rounded; panics for categoricals).
    pub fn as_i64(&self) -> i64 {
        match self {
            ParamValue::Float(v) => v.round() as i64,
            ParamValue::Int(v) => *v,
            ParamValue::Choice(c) => panic!("categorical value {c:?} has no numeric form"),
        }
    }

    /// The value as a string slice (categoricals only).
    pub fn as_str(&self) -> &str {
        match self {
            ParamValue::Choice(c) => c,
            _ => panic!("numeric value has no categorical form"),
        }
    }
}

/// A full assignment of values to every parameter of a space.
pub type ParamSet = BTreeMap<String, ParamValue>;

/// A named collection of parameter dimensions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamSpace {
    dims: BTreeMap<String, ParamSpec>,
}

impl ParamSpace {
    /// Create an empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a uniformly sampled real parameter.
    #[must_use]
    pub fn continuous(mut self, name: &str, low: f64, high: f64) -> Self {
        self.dims
            .insert(name.to_string(), ParamSpec::Continuous { low, high });
        self
    }

    /// Add a log-uniformly sampled real parameter.
    #[must_use]
    pub fn log_continuous(mut self, name: &str, low: f64, high: f64) -> Self {
        self.dims
            .insert(name.to_string(), ParamSpec::LogContinuous { low, high });
        self
    }

    /// Add an integer parameter.
    #[must_use]
    pub fn integer(mut self, name: &str, low: i64, high: i64) -> Self {
        self.dims
            .insert(name.to_string(), ParamSpec::Integer { low, high });
        self
    }

    /// Add a categorical parameter.
    #[must_use]
    pub fn categorical(mut self, name: &str, choices: &[&str]) -> Self {
        self.dims.insert(
            name.to_string(),
            ParamSpec::Categorical {
                choices: choices.iter().map(|s| s.to_string()).collect(),
            },
        );
        self
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the space has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The parameter names, in deterministic (sorted) order.
    pub fn names(&self) -> Vec<&str> {
        self.dims.keys().map(|s| s.as_str()).collect()
    }

    /// Validate every dimension.
    pub fn validate(&self) -> Result<(), String> {
        if self.dims.is_empty() {
            return Err("search space has no parameters".into());
        }
        for (name, spec) in &self.dims {
            spec.validate(name)?;
        }
        Ok(())
    }

    /// Sample a uniformly random assignment.
    pub fn sample(&self, rng: &mut StdRng) -> ParamSet {
        self.dims
            .iter()
            .map(|(name, spec)| {
                let value = match spec {
                    ParamSpec::Continuous { low, high } => {
                        ParamValue::Float(rng.gen_range(*low..=*high))
                    }
                    ParamSpec::LogContinuous { low, high } => {
                        let v = rng.gen_range(low.ln()..=high.ln()).exp();
                        ParamValue::Float(v)
                    }
                    ParamSpec::Integer { low, high } => {
                        ParamValue::Int(rng.gen_range(*low..=*high))
                    }
                    ParamSpec::Categorical { choices } => {
                        ParamValue::Choice(choices[rng.gen_range(0..choices.len())].clone())
                    }
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Mutate one assignment: every dimension is re-drawn near its current
    /// value with probability `mutation_rate` (categoricals are re-sampled
    /// uniformly). Values stay inside their bounds.
    pub fn mutate(&self, base: &ParamSet, mutation_rate: f64, rng: &mut StdRng) -> ParamSet {
        self.dims
            .iter()
            .map(|(name, spec)| {
                let current = base.get(name).cloned().unwrap_or_else(|| match spec {
                    ParamSpec::Categorical { choices } => ParamValue::Choice(choices[0].clone()),
                    ParamSpec::Integer { low, .. } => ParamValue::Int(*low),
                    ParamSpec::Continuous { low, .. } | ParamSpec::LogContinuous { low, .. } => {
                        ParamValue::Float(*low)
                    }
                });
                if rng.gen::<f64>() >= mutation_rate {
                    return (name.clone(), current);
                }
                let value = match spec {
                    ParamSpec::Continuous { low, high } => {
                        let span = high - low;
                        let v =
                            (current.as_f64() + rng.gen_range(-0.2..0.2) * span).clamp(*low, *high);
                        ParamValue::Float(v)
                    }
                    ParamSpec::LogContinuous { low, high } => {
                        let v = (current.as_f64().ln() + rng.gen_range(-0.5..0.5))
                            .exp()
                            .clamp(*low, *high);
                        ParamValue::Float(v)
                    }
                    ParamSpec::Integer { low, high } => {
                        let span = ((high - low) / 5).max(1);
                        let v = (current.as_i64() + rng.gen_range(-span..=span)).clamp(*low, *high);
                        ParamValue::Int(v)
                    }
                    ParamSpec::Categorical { choices } => {
                        ParamValue::Choice(choices[rng.gen_range(0..choices.len())].clone())
                    }
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Check that an assignment lies inside the space.
    pub fn contains(&self, set: &ParamSet) -> bool {
        if set.len() != self.dims.len() {
            return false;
        }
        self.dims
            .iter()
            .all(|(name, spec)| match (spec, set.get(name)) {
                (ParamSpec::Continuous { low, high }, Some(ParamValue::Float(v)))
                | (ParamSpec::LogContinuous { low, high }, Some(ParamValue::Float(v))) => {
                    v >= low && v <= high
                }
                (ParamSpec::Integer { low, high }, Some(ParamValue::Int(v))) => {
                    v >= low && v <= high
                }
                (ParamSpec::Categorical { choices }, Some(ParamValue::Choice(c))) => {
                    choices.contains(c)
                }
                _ => false,
            })
    }
}

/// The search space the Higgs experiments use (mirrors the hyperparameters
/// §IV says were tuned with Ax/Nevergrad).
pub fn bcpnn_higgs_space() -> ParamSpace {
    ParamSpace::new()
        .integer("n_hcu", 1, 8)
        .categorical("n_mcu", &["30", "300", "3000"])
        .continuous("receptive_field", 0.05, 0.95)
        .log_continuous("trace_rate", 1e-3, 0.5)
        .continuous("support_noise", 0.0, 0.5)
        .integer("plasticity_swaps", 1, 32)
        .log_continuous("sgd_learning_rate", 1e-3, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn builder_and_validation() {
        let space = bcpnn_higgs_space();
        assert_eq!(space.len(), 7);
        assert!(space.validate().is_ok());
        assert!(ParamSpace::new().validate().is_err());
        let bad = ParamSpace::new().continuous("x", 1.0, 0.0);
        assert!(bad.validate().is_err());
        let bad_log = ParamSpace::new().log_continuous("lr", 0.0, 1.0);
        assert!(bad_log.validate().is_err());
        let bad_cat = ParamSpace::new().categorical("c", &[]);
        assert!(bad_cat.validate().is_err());
    }

    #[test]
    fn samples_are_inside_the_space() {
        let space = bcpnn_higgs_space();
        let mut r = rng(1);
        for _ in 0..200 {
            let s = space.sample(&mut r);
            assert!(space.contains(&s), "sample {s:?} escaped the space");
        }
    }

    #[test]
    fn log_sampling_covers_orders_of_magnitude() {
        let space = ParamSpace::new().log_continuous("lr", 1e-4, 1.0);
        let mut r = rng(2);
        let mut small = 0;
        let mut large = 0;
        for _ in 0..500 {
            let v = space.sample(&mut r)["lr"].as_f64();
            if v < 1e-2 {
                small += 1;
            }
            if v > 1e-1 {
                large += 1;
            }
        }
        // Log-uniform: both decades are well represented.
        assert!(small > 100, "small {small}");
        assert!(large > 50, "large {large}");
    }

    #[test]
    fn mutation_stays_inside_and_changes_something() {
        let space = bcpnn_higgs_space();
        let mut r = rng(3);
        let base = space.sample(&mut r);
        let mut changed = 0;
        for _ in 0..50 {
            let m = space.mutate(&base, 1.0, &mut r);
            assert!(space.contains(&m));
            if m != base {
                changed += 1;
            }
        }
        assert!(
            changed > 40,
            "full-rate mutation should almost always change the set"
        );
        // Zero mutation rate is the identity.
        assert_eq!(space.mutate(&base, 0.0, &mut r), base);
    }

    #[test]
    fn contains_rejects_foreign_or_out_of_range_sets() {
        let space = ParamSpace::new()
            .integer("n", 1, 5)
            .continuous("x", 0.0, 1.0);
        let mut bad: ParamSet = BTreeMap::new();
        bad.insert("n".into(), ParamValue::Int(9));
        bad.insert("x".into(), ParamValue::Float(0.5));
        assert!(!space.contains(&bad));
        let mut wrong_type: ParamSet = BTreeMap::new();
        wrong_type.insert("n".into(), ParamValue::Float(2.0));
        wrong_type.insert("x".into(), ParamValue::Float(0.5));
        assert!(!space.contains(&wrong_type));
        let empty: ParamSet = BTreeMap::new();
        assert!(!space.contains(&empty));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(ParamValue::Float(2.6).as_i64(), 3);
        assert_eq!(ParamValue::Int(4).as_f64(), 4.0);
        assert_eq!(ParamValue::Choice("a".into()).as_str(), "a");
    }

    #[test]
    #[should_panic(expected = "no numeric form")]
    fn categorical_as_f64_panics() {
        let _ = ParamValue::Choice("x".into()).as_f64();
    }
}
