//! # bcpnn-hyperopt
//!
//! Derivative-free hyperparameter search, standing in for the Ax + Nevergrad
//! tooling the paper uses (§IV) to tune BCPNN's many use-case-dependent
//! hyperparameters.
//!
//! * [`ParamSpace`] — typed search spaces (continuous, log-continuous,
//!   integer, categorical), including the canonical
//!   [`space::bcpnn_higgs_space`] used by the Higgs experiments.
//! * [`RandomSearch`] — uniform random search.
//! * [`EvolutionSearch`] — a (1 + λ) evolution strategy.
//! * [`search_estimator`] / [`fit_and_score`] — score any
//!   [`bcpnn_core::model::Estimator`] factory on a train/validation
//!   [`EvalSplit`], so encoder parameters search right alongside network
//!   hyperparameters through one surface.
//! * [`SearchHistory`] — trial bookkeeping, best-so-far curves, CSV export.
//!
//! ```
//! use bcpnn_hyperopt::{ParamSpace, RandomSearch};
//!
//! let space = ParamSpace::new()
//!     .continuous("receptive_field", 0.05, 0.95)
//!     .log_continuous("trace_rate", 1e-3, 0.5);
//! let search = RandomSearch::new(space, 7);
//! // A toy objective: prefer 40% receptive fields (like Fig. 4's optimum).
//! let history = search.run(50, |p| {
//!     -(p["receptive_field"].as_f64() - 0.4).abs()
//! });
//! assert_eq!(history.len(), 50);
//! assert!((history.best().unwrap().params["receptive_field"].as_f64() - 0.4).abs() < 0.3);
//! ```

#![warn(missing_docs)]

pub mod estimator;
pub mod evolution;
pub mod random_search;
pub mod result;
pub mod space;

pub use estimator::{fit_and_score, search_estimator, EvalSplit, SearchStrategy};
pub use evolution::{EvolutionConfig, EvolutionSearch};
pub use random_search::RandomSearch;
pub use result::{SearchHistory, Trial};
pub use space::{ParamSet, ParamSpace, ParamSpec, ParamValue};
