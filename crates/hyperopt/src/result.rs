//! Trial bookkeeping shared by the search strategies.

use crate::space::ParamSet;

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Index of the trial in evaluation order.
    pub index: usize,
    /// The evaluated parameter assignment.
    pub params: ParamSet,
    /// The objective value (higher is better, e.g. validation accuracy).
    pub score: f64,
}

/// History of a hyperparameter search.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchHistory {
    trials: Vec<Trial>,
}

impl SearchHistory {
    /// Create an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one evaluated trial.
    pub fn record(&mut self, params: ParamSet, score: f64) {
        let index = self.trials.len();
        self.trials.push(Trial {
            index,
            params,
            score,
        });
    }

    /// All trials in evaluation order.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Number of evaluated trials.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// Whether no trial has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// The best trial so far (highest score; ties go to the earliest trial).
    pub fn best(&self) -> Option<&Trial> {
        self.trials.iter().max_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                // max_by returns the last maximum; prefer the earliest.
                .then(b.index.cmp(&a.index))
        })
    }

    /// Best score after each trial (the "best so far" convergence curve).
    pub fn best_so_far(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.trials
            .iter()
            .map(|t| {
                best = best.max(t.score);
                best
            })
            .collect()
    }

    /// Render the history as CSV (`trial,score,best_so_far,params...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("trial,score,best_so_far,params\n");
        for (t, best) in self.trials.iter().zip(self.best_so_far()) {
            let params: Vec<String> = t
                .params
                .iter()
                .map(|(k, v)| match v {
                    crate::space::ParamValue::Float(x) => format!("{k}={x:.6}"),
                    crate::space::ParamValue::Int(x) => format!("{k}={x}"),
                    crate::space::ParamValue::Choice(c) => format!("{k}={c}"),
                })
                .collect();
            out.push_str(&format!(
                "{},{:.6},{:.6},{}\n",
                t.index,
                t.score,
                best,
                params.join(";")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamSet, ParamValue};

    fn set(v: f64) -> ParamSet {
        let mut s = ParamSet::new();
        s.insert("x".into(), ParamValue::Float(v));
        s
    }

    #[test]
    fn records_and_finds_the_best() {
        let mut h = SearchHistory::new();
        assert!(h.is_empty());
        assert!(h.best().is_none());
        h.record(set(0.1), 0.6);
        h.record(set(0.2), 0.8);
        h.record(set(0.3), 0.7);
        assert_eq!(h.len(), 3);
        let best = h.best().unwrap();
        assert_eq!(best.index, 1);
        assert_eq!(best.score, 0.8);
    }

    #[test]
    fn ties_go_to_the_earliest_trial() {
        let mut h = SearchHistory::new();
        h.record(set(0.1), 0.9);
        h.record(set(0.2), 0.9);
        assert_eq!(h.best().unwrap().index, 0);
    }

    #[test]
    fn best_so_far_is_monotone() {
        let mut h = SearchHistory::new();
        for (i, s) in [0.5, 0.4, 0.7, 0.2, 0.9].iter().enumerate() {
            h.record(set(i as f64), *s);
        }
        let curve = h.best_so_far();
        assert_eq!(curve, vec![0.5, 0.5, 0.7, 0.7, 0.9]);
        assert!(curve.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn csv_has_one_line_per_trial_plus_header() {
        let mut h = SearchHistory::new();
        h.record(set(0.1), 0.6);
        h.record(set(0.2), 0.7);
        let csv = h.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().contains("x=0.1"));
    }
}
