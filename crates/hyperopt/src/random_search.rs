//! Uniform random search over a [`ParamSpace`].

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::result::SearchHistory;
use crate::space::{ParamSet, ParamSpace};

/// Random-search driver.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    space: ParamSpace,
    seed: u64,
}

impl RandomSearch {
    /// Create a random search over the given space.
    ///
    /// # Panics
    /// Panics if the space is invalid.
    pub fn new(space: ParamSpace, seed: u64) -> Self {
        space.validate().expect("invalid search space");
        Self { space, seed }
    }

    /// The search space.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Evaluate `budget` uniformly random configurations with `objective`
    /// (higher is better) and return the history.
    pub fn run<F>(&self, budget: usize, mut objective: F) -> SearchHistory
    where
        F: FnMut(&ParamSet) -> f64,
    {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut history = SearchHistory::new();
        for _ in 0..budget {
            let candidate = self.space.sample(&mut rng);
            let score = objective(&candidate);
            history.record(candidate, score);
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_space() -> ParamSpace {
        ParamSpace::new()
            .continuous("x", -2.0, 2.0)
            .continuous("y", -2.0, 2.0)
    }

    /// Objective with a unique optimum at (1, -0.5).
    fn objective(p: &ParamSet) -> f64 {
        let x = p["x"].as_f64();
        let y = p["y"].as_f64();
        -((x - 1.0).powi(2) + (y + 0.5).powi(2))
    }

    #[test]
    fn runs_exactly_the_budget() {
        let search = RandomSearch::new(quadratic_space(), 1);
        let history = search.run(25, objective);
        assert_eq!(history.len(), 25);
    }

    #[test]
    fn finds_a_reasonable_optimum_with_enough_budget() {
        let search = RandomSearch::new(quadratic_space(), 2);
        let history = search.run(400, objective);
        let best = history.best().unwrap();
        assert!(best.score > -0.2, "best score {}", best.score);
        assert!((best.params["x"].as_f64() - 1.0).abs() < 0.5);
        assert!((best.params["y"].as_f64() + 0.5).abs() < 0.5);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = RandomSearch::new(quadratic_space(), 3).run(20, objective);
        let b = RandomSearch::new(quadratic_space(), 3).run(20, objective);
        assert_eq!(a, b);
        let c = RandomSearch::new(quadratic_space(), 4).run(20, objective);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "invalid search space")]
    fn rejects_invalid_spaces() {
        let _ = RandomSearch::new(ParamSpace::new(), 0);
    }
}
