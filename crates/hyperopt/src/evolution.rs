//! (1 + λ) evolution strategy, the derivative-free optimiser playing the
//! role of Nevergrad in the paper's hyperparameter search.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::result::SearchHistory;
use crate::space::{ParamSet, ParamSpace};

/// Configuration of the evolution strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolutionConfig {
    /// Number of offspring per generation (λ).
    pub offspring: usize,
    /// Per-dimension mutation probability.
    pub mutation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        Self {
            offspring: 6,
            mutation_rate: 0.4,
            seed: 0,
        }
    }
}

/// (1 + λ) evolution-strategy driver: each generation mutates the incumbent
/// into λ offspring, evaluates them, and keeps the best of parent +
/// offspring.
#[derive(Debug, Clone)]
pub struct EvolutionSearch {
    space: ParamSpace,
    config: EvolutionConfig,
}

impl EvolutionSearch {
    /// Create an evolution search over the given space.
    ///
    /// # Panics
    /// Panics if the space is invalid or the configuration degenerate.
    pub fn new(space: ParamSpace, config: EvolutionConfig) -> Self {
        space.validate().expect("invalid search space");
        assert!(config.offspring > 0, "offspring must be positive");
        assert!(
            (0.0..=1.0).contains(&config.mutation_rate) && config.mutation_rate > 0.0,
            "mutation_rate must be in (0, 1]"
        );
        Self { space, config }
    }

    /// Run the search with a total evaluation budget of `budget` objective
    /// calls (higher objective is better). Returns the history (which
    /// includes the initial random parent as trial 0).
    pub fn run<F>(&self, budget: usize, mut objective: F) -> SearchHistory
    where
        F: FnMut(&ParamSet) -> f64,
    {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut history = SearchHistory::new();
        if budget == 0 {
            return history;
        }
        let mut parent = self.space.sample(&mut rng);
        let mut parent_score = objective(&parent);
        history.record(parent.clone(), parent_score);
        let mut evaluations = 1usize;
        while evaluations < budget {
            let mut best_child: Option<(ParamSet, f64)> = None;
            for _ in 0..self.config.offspring {
                if evaluations >= budget {
                    break;
                }
                let child = self
                    .space
                    .mutate(&parent, self.config.mutation_rate, &mut rng);
                let score = objective(&child);
                history.record(child.clone(), score);
                evaluations += 1;
                if best_child.as_ref().is_none_or(|(_, s)| score > *s) {
                    best_child = Some((child, score));
                }
            }
            if let Some((child, score)) = best_child {
                if score > parent_score {
                    parent = child;
                    parent_score = score;
                }
            }
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_search::RandomSearch;

    fn space() -> ParamSpace {
        ParamSpace::new()
            .continuous("x", -4.0, 4.0)
            .continuous("y", -4.0, 4.0)
            .integer("k", 1, 10)
    }

    /// Smooth objective with its optimum at (1.5, -2, k=7).
    fn objective(p: &ParamSet) -> f64 {
        let x = p["x"].as_f64();
        let y = p["y"].as_f64();
        let k = p["k"].as_i64() as f64;
        -((x - 1.5).powi(2) + (y + 2.0).powi(2) + 0.05 * (k - 7.0).powi(2))
    }

    #[test]
    fn respects_the_evaluation_budget() {
        let es = EvolutionSearch::new(space(), EvolutionConfig::default());
        let history = es.run(37, objective);
        assert_eq!(history.len(), 37);
        assert_eq!(es.run(0, objective).len(), 0);
    }

    #[test]
    fn improves_over_its_own_first_guess() {
        let es = EvolutionSearch::new(
            space(),
            EvolutionConfig {
                seed: 5,
                ..Default::default()
            },
        );
        let history = es.run(120, objective);
        let first = history.trials()[0].score;
        let best = history.best().unwrap().score;
        assert!(best > first, "ES must improve: first {first}, best {best}");
        assert!(best > -0.5, "best {best}");
    }

    #[test]
    fn beats_random_search_on_a_smooth_objective() {
        // Average over a few seeds to keep the comparison robust.
        let budget = 80;
        let mut es_total = 0.0;
        let mut rs_total = 0.0;
        for seed in 0..5 {
            let es = EvolutionSearch::new(
                space(),
                EvolutionConfig {
                    seed,
                    ..Default::default()
                },
            );
            es_total += es.run(budget, objective).best().unwrap().score;
            rs_total += RandomSearch::new(space(), seed)
                .run(budget, objective)
                .best()
                .unwrap()
                .score;
        }
        assert!(
            es_total >= rs_total,
            "ES ({es_total:.3}) should do at least as well as random ({rs_total:.3})"
        );
    }

    #[test]
    fn all_trials_stay_inside_the_space() {
        let s = space();
        let es = EvolutionSearch::new(s.clone(), EvolutionConfig::default());
        let history = es.run(60, objective);
        for t in history.trials() {
            assert!(s.contains(&t.params));
        }
    }

    #[test]
    #[should_panic(expected = "offspring must be positive")]
    fn rejects_zero_offspring() {
        let _ = EvolutionSearch::new(
            space(),
            EvolutionConfig {
                offspring: 0,
                ..Default::default()
            },
        );
    }
}
