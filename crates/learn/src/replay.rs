//! Append-only replay log: the durability layer of the learn service.
//!
//! Every batch of labeled rows the shadow trainer folds is first appended
//! here, so a hard-killed learner rebuilds its exact shadow state on
//! restart by replaying the log over the last checkpoint (folds are
//! deterministic — see [`bcpnn_core::Network::learn_batch`]).
//!
//! The format follows the same defensive framing discipline as
//! `bcpnn_cluster::wire`: a fixed file header, then length-prefixed
//! frames, each protected by a CRC-32 so torn writes and bit rot are
//! detected rather than trained on.
//!
//! ```text
//! file   := magic "bLRN" | version u8 | frame*
//! frame  := payload_len u32 LE | crc32(payload) u32 LE | payload
//! payload:= n_rows u32 | n_cols u32 | n_rows*n_cols f32 LE | n_rows labels u32 LE
//! ```
//!
//! Recovery policy: [`ReplayLog::open`] scans the file front to back and
//! keeps the longest valid prefix. The first truncated, oversized,
//! CRC-mismatching, or structurally malformed frame ends the scan; the
//! corrupt tail is *dropped* (the file is truncated back to the last good
//! frame) and appending resumes from there. Corruption is never a panic
//! and never an error on this path — a learner that crashed mid-append
//! must come back up.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bcpnn_tensor::Matrix;

/// File magic: "bcpnn LeaRN log".
pub const MAGIC: [u8; 4] = *b"bLRN";
/// Format version written by this build.
pub const VERSION: u8 = 1;
/// Bytes before the first frame (magic + version).
pub const HEADER_LEN: u64 = 5;
/// Ceiling on a single frame's payload; anything larger is treated as a
/// corrupt length prefix, not an allocation request.
pub const MAX_FRAME_PAYLOAD: u32 = 64 * 1024 * 1024;

/// One replayable unit: the labeled rows of exactly one shadow-trainer
/// fold, in fold order.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnFrame {
    /// The feature rows that were folded (batch x features).
    pub rows: Matrix<f32>,
    /// One class label per row.
    pub labels: Vec<usize>,
}

/// CRC-32 (IEEE 802.3, reflected), table-driven; the table is computed at
/// compile time so the crate stays dependency-free.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE polynomial, the one `cksum`/zlib use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Serialize one fold's rows + labels as a frame payload (no length/CRC
/// envelope — [`ReplayLog::append`] adds that). Public for the proptests.
pub fn encode_payload(rows: &Matrix<f32>, labels: &[usize], out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&(rows.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(rows.cols() as u32).to_le_bytes());
    for &v in rows.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &label in labels {
        out.extend_from_slice(&(label as u32).to_le_bytes());
    }
}

/// Parse one frame payload back into rows + labels. `None` means the
/// payload is structurally malformed (bad counts, trailing bytes, size
/// overflow) — the caller treats that exactly like a CRC mismatch.
pub fn decode_payload(payload: &[u8]) -> Option<LearnFrame> {
    if payload.len() < 8 {
        return None;
    }
    let n_rows = u32::from_le_bytes(payload[0..4].try_into().ok()?) as u64;
    let n_cols = u32::from_le_bytes(payload[4..8].try_into().ok()?) as u64;
    if n_rows == 0 || n_cols == 0 {
        return None;
    }
    let data_bytes = n_rows.checked_mul(n_cols)?.checked_mul(4)?;
    let expected = 8u64.checked_add(data_bytes)?.checked_add(n_rows * 4)?;
    if payload.len() as u64 != expected {
        return None;
    }
    let n_rows = n_rows as usize;
    let n_cols = n_cols as usize;
    let mut data = Vec::with_capacity(n_rows * n_cols);
    let mut at = 8;
    for _ in 0..n_rows * n_cols {
        data.push(f32::from_le_bytes(payload[at..at + 4].try_into().ok()?));
        at += 4;
    }
    let mut labels = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        labels.push(u32::from_le_bytes(payload[at..at + 4].try_into().ok()?) as usize);
        at += 4;
    }
    Some(LearnFrame {
        rows: Matrix::from_vec(n_rows, n_cols, data),
        labels,
    })
}

/// What [`ReplayLog::open`] found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// Every intact frame, in append order — replay these over the last
    /// checkpoint to rebuild the shadow.
    pub frames: Vec<LearnFrame>,
    /// Bytes discarded from a corrupt/torn tail (0 on a clean log).
    pub dropped_bytes: u64,
}

/// The append-only log itself. One instance owns the file; appends go
/// straight to the OS (no userspace buffering) so a killed *process*
/// never loses an acknowledged frame.
#[derive(Debug)]
pub struct ReplayLog {
    file: File,
    path: PathBuf,
    bytes: u64,
    scratch: Vec<u8>,
}

impl ReplayLog {
    /// Open (or create) the log at `path`, recover the valid frame
    /// prefix, truncate any corrupt tail, and position for appending.
    pub fn open(path: &Path) -> std::io::Result<(ReplayLog, Recovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let total = file.metadata()?.len();

        // Header: absent/truncated on a fresh file -> write one. A wrong
        // magic/version is a different file entirely, not a torn tail —
        // refuse rather than silently wipe it.
        let mut header = [0u8; HEADER_LEN as usize];
        if total < HEADER_LEN {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            header[..4].copy_from_slice(&MAGIC);
            header[4] = VERSION;
            file.write_all(&header)?;
            file.sync_data()?;
            return Ok((
                ReplayLog {
                    file,
                    path: path.to_path_buf(),
                    bytes: HEADER_LEN,
                    scratch: Vec::new(),
                },
                Recovery {
                    frames: Vec::new(),
                    dropped_bytes: 0,
                },
            ));
        }
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if header[..4] != MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{} is not a replay log (bad magic)", path.display()),
            ));
        }
        if header[4] != VERSION {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "replay log {} has unsupported version {}",
                    path.display(),
                    header[4]
                ),
            ));
        }

        // Scan frames; keep the longest valid prefix.
        let mut frames = Vec::new();
        let mut good_end = HEADER_LEN;
        let mut at = HEADER_LEN;
        let mut envelope = [0u8; 8];
        let mut payload = Vec::new();
        loop {
            if at + 8 > total {
                break; // clean EOF or torn envelope
            }
            file.seek(SeekFrom::Start(at))?;
            file.read_exact(&mut envelope)?;
            let len = u32::from_le_bytes(envelope[0..4].try_into().unwrap());
            let crc = u32::from_le_bytes(envelope[4..8].try_into().unwrap());
            if len > MAX_FRAME_PAYLOAD || at + 8 + u64::from(len) > total {
                break; // corrupt length or torn payload
            }
            payload.resize(len as usize, 0);
            file.read_exact(&mut payload)?;
            if crc32(&payload) != crc {
                break; // bit rot / torn write inside the payload
            }
            let Some(frame) = decode_payload(&payload) else {
                break; // structurally malformed
            };
            frames.push(frame);
            at += 8 + u64::from(len);
            good_end = at;
        }
        let dropped = total - good_end;
        if dropped > 0 {
            file.set_len(good_end)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good_end))?;
        Ok((
            ReplayLog {
                file,
                path: path.to_path_buf(),
                bytes: good_end,
                scratch: Vec::new(),
            },
            Recovery {
                frames,
                dropped_bytes: dropped,
            },
        ))
    }

    /// Append one fold's rows + labels. The frame is fully in the OS page
    /// cache when this returns (kill-safe); call [`ReplayLog::sync`] for
    /// power-loss durability.
    pub fn append(&mut self, rows: &Matrix<f32>, labels: &[usize]) -> std::io::Result<()> {
        let mut payload = std::mem::take(&mut self.scratch);
        encode_payload(rows, labels, &mut payload);
        debug_assert!(payload.len() as u64 <= u64::from(MAX_FRAME_PAYLOAD));
        let mut envelope = [0u8; 8];
        envelope[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        envelope[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
        let result = self
            .file
            .write_all(&envelope)
            .and_then(|()| self.file.write_all(&payload));
        if result.is_ok() {
            self.bytes += 8 + payload.len() as u64;
        }
        self.scratch = payload;
        result
    }

    /// Flush appended frames to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    /// Drop every frame (called right after a checkpoint made them
    /// redundant): truncate back to the header and sync.
    pub fn rotate(&mut self) -> std::io::Result<()> {
        self.file.set_len(HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        self.file.sync_data()?;
        self.bytes = HEADER_LEN;
        Ok(())
    }

    /// Current size of the log in bytes (header included) — exported as
    /// the `bcpnn_learn_replay_log_bytes` gauge.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bcpnn-replay-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("replay.log")
    }

    fn frame(seed: u32, rows: usize, cols: usize) -> (Matrix<f32>, Vec<usize>) {
        let x = Matrix::from_fn(rows, cols, |r, c| {
            (seed as f32) + (r * cols + c) as f32 * 0.25
        });
        let labels = (0..rows).map(|r| (r + seed as usize) % 3).collect();
        (x, labels)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_reopen_replays_every_frame() {
        let path = tmp("roundtrip");
        let (mut log, rec) = ReplayLog::open(&path).unwrap();
        assert!(rec.frames.is_empty());
        let mut expect = Vec::new();
        for i in 0..5u32 {
            let (x, labels) = frame(i, 3 + i as usize, 4);
            log.append(&x, &labels).unwrap();
            expect.push(LearnFrame { rows: x, labels });
        }
        drop(log);
        let (log, rec) = ReplayLog::open(&path).unwrap();
        assert_eq!(rec.dropped_bytes, 0);
        assert_eq!(rec.frames, expect);
        assert_eq!(log.bytes(), std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let path = tmp("torn");
        let (mut log, _) = ReplayLog::open(&path).unwrap();
        let (x, labels) = frame(1, 4, 3);
        log.append(&x, &labels).unwrap();
        let (y, ylabels) = frame(2, 2, 3);
        log.append(&y, &ylabels).unwrap();
        drop(log);
        // Tear the last frame: chop 5 bytes off the file.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let (mut log, rec) = ReplayLog::open(&path).unwrap();
        assert_eq!(rec.frames.len(), 1, "only the intact frame survives");
        assert_eq!(rec.frames[0].rows, x);
        assert!(rec.dropped_bytes > 0);
        // The log is immediately usable again.
        log.append(&y, &ylabels).unwrap();
        drop(log);
        let (_, rec) = ReplayLog::open(&path).unwrap();
        assert_eq!(rec.frames.len(), 2);
        assert_eq!(rec.frames[1].rows, y);
    }

    #[test]
    fn bit_flip_drops_the_corrupt_frame_and_everything_after() {
        let path = tmp("bitflip");
        let (mut log, _) = ReplayLog::open(&path).unwrap();
        for i in 0..3u32 {
            let (x, labels) = frame(i, 3, 2);
            log.append(&x, &labels).unwrap();
        }
        let first_end = {
            let mut buf = Vec::new();
            encode_payload(&frame(0, 3, 2).0, &frame(0, 3, 2).1, &mut buf);
            HEADER_LEN + 8 + buf.len() as u64
        };
        drop(log);
        // Flip one payload bit inside the *second* frame.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = (first_end + 12) as usize;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = ReplayLog::open(&path).unwrap();
        assert_eq!(rec.frames.len(), 1, "prefix before the flip survives");
        assert!(rec.dropped_bytes > 0);
    }

    #[test]
    fn rotate_empties_the_log() {
        let path = tmp("rotate");
        let (mut log, _) = ReplayLog::open(&path).unwrap();
        let (x, labels) = frame(7, 6, 2);
        log.append(&x, &labels).unwrap();
        log.rotate().unwrap();
        assert_eq!(log.bytes(), HEADER_LEN);
        let (y, ylabels) = frame(8, 2, 2);
        log.append(&y, &ylabels).unwrap();
        drop(log);
        let (_, rec) = ReplayLog::open(&path).unwrap();
        assert_eq!(rec.frames.len(), 1);
        assert_eq!(rec.frames[0].rows, y);
    }

    #[test]
    fn foreign_file_is_refused_not_wiped() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a replay log").unwrap();
        let err = ReplayLog::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Untouched.
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"definitely not a replay log"
        );
    }
}
