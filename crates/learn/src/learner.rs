//! The online learner: shadow trainer, held-out reservoir, gated
//! hot-swap publishing, and crash recovery.
//!
//! One [`OnlineLearner`] continuously improves one registry model. Labeled
//! rows arrive through a bounded queue ([`OnlineLearner::submit`], fed by
//! the gateway's learn endpoint); a background trainer thread drains them,
//! diverts every k-th row into a held-out evaluation reservoir, appends the
//! rest to the replay log, and folds them into a *shadow* copy of the model
//! ([`Pipeline::learn_batch`]). Every N trained rows — or T seconds with
//! rows pending — the shadow is evaluated against the reservoir and, if it
//! has not regressed past the configured delta, published through the
//! registry's atomic hot-swap. Serving never blocks on any of this: readers
//! keep resolving the registry exactly as before, and in-flight batches
//! finish on the version they started on.
//!
//! # Durability
//!
//! The learner's state directory pairs a checkpoint with its replay log:
//!
//! ```text
//! state_dir/
//!   current            <- the active generation number (atomic rename)
//!   checkpoint-{n}/    <- pipeline artifact the shadow was last saved as
//!   replay-{n}.log     <- labeled rows folded since that checkpoint
//! ```
//!
//! A publish creates generation `n+1` (fresh checkpoint + empty log) and
//! then swaps `current` with one atomic rename, so a crash at any point
//! leaves a consistent pair: either the old checkpoint with its full log,
//! or the new checkpoint with an empty one. Restart loads the checkpoint
//! and replays the log; because folds are deterministic and the shadow is
//! re-normalized to the checkpoint state after every save, the rebuilt
//! shadow is bit-identical to the one that was killed.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bcpnn_backend::BackendKind;
use bcpnn_core::model::Predictor;
use bcpnn_core::{CoreError, Pipeline, Workspace};
use bcpnn_serve::{ModelRegistry, ServedModel};
use bcpnn_tensor::Matrix;

use crate::metrics::{prometheus_exposition, LearnMetrics, LearnSnapshot};
use crate::replay::ReplayLog;

/// Why a [`OnlineLearner::submit`] call was refused. Submissions are
/// all-or-nothing: a refused batch leaves no partial rows behind.
#[derive(Debug)]
pub enum LearnError {
    /// The bounded ingest queue cannot take the whole batch right now —
    /// backpressure; retry later.
    QueueFull {
        /// Total queue capacity in rows.
        capacity: usize,
    },
    /// A row's width does not match the model's input width.
    ShapeMismatch {
        /// Feature width the model expects.
        expected: usize,
        /// Width of the offending row.
        got: usize,
    },
    /// A label is outside the model's class range.
    BadLabel {
        /// The offending label.
        label: usize,
        /// Number of classes the model has.
        n_classes: usize,
    },
    /// Rows and labels differ in length, or the batch is empty.
    BadBatch(String),
    /// The learner is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for LearnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull { capacity } => {
                write!(f, "learn queue is full ({capacity} rows); retry later")
            }
            Self::ShapeMismatch { expected, got } => {
                write!(f, "learn rows must have {expected} features, got {got}")
            }
            Self::BadLabel { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
            Self::BadBatch(what) => write!(f, "{what}"),
            Self::ShuttingDown => write!(f, "learner is shutting down"),
        }
    }
}

impl std::error::Error for LearnError {}

/// Tuning knobs of one [`OnlineLearner`].
#[derive(Debug, Clone)]
pub struct LearnerConfig {
    /// Directory for checkpoints and the replay log. Created if absent; if
    /// it holds a previous learner's state, that state is recovered and
    /// the `base` pipeline passed to [`OnlineLearner::start`] is ignored.
    pub state_dir: PathBuf,
    /// Backend checkpoints are loaded onto (backends are runtime
    /// configuration, not model state).
    pub backend: BackendKind,
    /// Ingest queue capacity in rows; submissions beyond it are refused
    /// with [`LearnError::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum rows per fold batch (one replay-log frame, one
    /// `learn_batch` call).
    pub fold_rows: usize,
    /// Publish the shadow after this many trained rows...
    pub publish_rows: u64,
    /// ...or after this long, if any rows were trained since the last
    /// publish attempt.
    pub publish_interval: Duration,
    /// Accuracy-gate tolerance: publish only while
    /// `shadow_accuracy + accuracy_delta >= live_accuracy` on the
    /// reservoir. `0.0` demands the shadow never regress at all.
    pub accuracy_delta: f64,
    /// Held-out reservoir capacity in rows (a ring — newest rows displace
    /// the oldest, so the gate tracks the current distribution).
    pub reservoir_capacity: usize,
    /// Every `reservoir_stride`-th ingested row is held out for evaluation
    /// instead of trained. `0` disables the reservoir (publishes are then
    /// ungated).
    pub reservoir_stride: u64,
    /// Gate publishes only once the reservoir holds at least this many
    /// rows; below it (cold start) publishes pass ungated.
    pub min_eval_rows: usize,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        Self {
            state_dir: PathBuf::from("learn-state"),
            backend: BackendKind::Parallel,
            queue_capacity: 8192,
            fold_rows: 256,
            publish_rows: 1024,
            publish_interval: Duration::from_secs(30),
            accuracy_delta: 0.01,
            reservoir_capacity: 512,
            reservoir_stride: 10,
            min_eval_rows: 32,
        }
    }
}

struct QueueState {
    rows: VecDeque<(Vec<f32>, usize)>,
    ingested: u64,
    applied: u64,
    shutdown: bool,
}

struct Inner {
    model: String,
    config: LearnerConfig,
    registry: Arc<ModelRegistry>,
    metrics: LearnMetrics,
    input_width: usize,
    n_classes: usize,
    queue: Mutex<QueueState>,
    /// Wakes the trainer thread (new rows / shutdown).
    work: Condvar,
    /// Wakes `drain()` callers (rows applied).
    progress: Condvar,
    shadow: Mutex<Pipeline>,
}

/// A continuously-learning deployment of one model. See the
/// [crate docs](crate) for the life cycle; dropping the learner stops the
/// trainer thread (pending queued rows are discarded — acknowledged rows
/// that already reached the replay log are not).
pub struct OnlineLearner {
    inner: Arc<Inner>,
    trainer: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for OnlineLearner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineLearner")
            .field("model", &self.inner.model)
            .field("state_dir", &self.inner.config.state_dir)
            .finish()
    }
}

impl OnlineLearner {
    /// Start a learner for `model`, recovering from `config.state_dir` if
    /// it holds previous state and seeding it from `base` otherwise.
    ///
    /// In both cases the in-memory shadow is established by *loading* the
    /// checkpoint artifact (never by adopting `base` directly), so the
    /// shadow's state is always exactly what a restart would reconstruct.
    /// Replay-log frames found on disk are folded back in before the
    /// trainer thread starts.
    pub fn start(
        registry: Arc<ModelRegistry>,
        model: &str,
        base: &Pipeline,
        config: LearnerConfig,
    ) -> Result<OnlineLearner, CoreError> {
        std::fs::create_dir_all(&config.state_dir).map_err(CoreError::Io)?;
        let metrics = LearnMetrics::new();

        // Resolve the active generation: recover it, or mint generation 0
        // from `base`.
        let generation = match read_current(&config.state_dir).map_err(CoreError::Io)? {
            Some(generation) => generation,
            None => {
                base.save(checkpoint_dir(&config.state_dir, 0))?;
                write_current(&config.state_dir, 0).map_err(CoreError::Io)?;
                0
            }
        };
        let mut shadow = Pipeline::load(
            checkpoint_dir(&config.state_dir, generation),
            config.backend,
        )?;
        let (log, recovery) =
            ReplayLog::open(&log_path(&config.state_dir, generation)).map_err(CoreError::Io)?;

        // Replay: fold the logged rows back in, frame by frame, exactly as
        // the trainer originally did.
        let mut ws = Workspace::new();
        for frame in &recovery.frames {
            shadow.learn_batch(&frame.rows, &frame.labels, &mut ws)?;
        }
        metrics.replayed_frames.store(
            recovery.frames.len() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        metrics
            .replay_log_bytes
            .store(log.bytes(), std::sync::atomic::Ordering::Relaxed);

        let input_width = shadow.input_width();
        let n_classes = shadow.n_classes();
        let inner = Arc::new(Inner {
            model: model.to_string(),
            config,
            registry,
            metrics,
            input_width,
            n_classes,
            queue: Mutex::new(QueueState {
                rows: VecDeque::new(),
                ingested: 0,
                applied: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            progress: Condvar::new(),
            shadow: Mutex::new(shadow),
        });
        let trainer = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("bcpnn-learn-{model}"))
                .spawn(move || trainer_loop(&inner, generation, log, ws))
                .expect("failed to spawn learner trainer thread")
        };
        Ok(OnlineLearner {
            inner,
            trainer: Some(trainer),
        })
    }

    /// The registry model this learner feeds.
    pub fn model(&self) -> &str {
        &self.inner.model
    }

    /// Offer a batch of labeled rows. All-or-nothing: either every row is
    /// queued (and will be durably logged before it is trained) or none
    /// is. Returns the number of rows accepted.
    pub fn submit(&self, rows: &[Vec<f32>], labels: &[usize]) -> Result<usize, LearnError> {
        if rows.is_empty() {
            return Err(LearnError::BadBatch("learn batch is empty".into()));
        }
        if rows.len() != labels.len() {
            return Err(LearnError::BadBatch(format!(
                "{} rows but {} labels",
                rows.len(),
                labels.len()
            )));
        }
        for row in rows {
            if row.len() != self.inner.input_width {
                return Err(LearnError::ShapeMismatch {
                    expected: self.inner.input_width,
                    got: row.len(),
                });
            }
        }
        for &label in labels {
            if label >= self.inner.n_classes {
                return Err(LearnError::BadLabel {
                    label,
                    n_classes: self.inner.n_classes,
                });
            }
        }
        let mut state = self.inner.queue.lock().unwrap();
        if state.shutdown {
            return Err(LearnError::ShuttingDown);
        }
        if state.rows.len() + rows.len() > self.inner.config.queue_capacity {
            self.inner
                .metrics
                .rows_rejected
                .fetch_add(rows.len() as u64, std::sync::atomic::Ordering::Relaxed);
            return Err(LearnError::QueueFull {
                capacity: self.inner.config.queue_capacity,
            });
        }
        for (row, &label) in rows.iter().zip(labels) {
            state.rows.push_back((row.clone(), label));
        }
        state.ingested += rows.len() as u64;
        self.inner
            .metrics
            .rows_ingested
            .fetch_add(rows.len() as u64, std::sync::atomic::Ordering::Relaxed);
        self.inner.metrics.queue_depth.store(
            state.rows.len() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        drop(state);
        self.inner.work.notify_one();
        Ok(rows.len())
    }

    /// Block until every row accepted so far has been folded (and any
    /// publish it triggered has completed). A test/ops barrier, not a
    /// serving-path call.
    pub fn drain(&self) {
        let mut state = self.inner.queue.lock().unwrap();
        while state.applied < state.ingested && !state.shutdown {
            state = self.inner.progress.wait(state).unwrap();
        }
    }

    /// Point-in-time copy of the learner's counters.
    #[must_use]
    pub fn metrics(&self) -> LearnSnapshot {
        self.inner.metrics.snapshot()
    }

    /// This learner's `bcpnn_learn_*` exposition. When a process runs
    /// several learners, render them together with
    /// [`crate::prometheus_exposition`] instead so each family appears
    /// once.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        prometheus_exposition(&[(self.inner.model.as_str(), self.metrics())])
    }

    /// A clone of the current shadow pipeline (what the next publish would
    /// ship). Locks the trainer out briefly; intended for tests and
    /// introspection.
    #[must_use]
    pub fn shadow_pipeline(&self) -> Pipeline {
        self.inner.shadow.lock().unwrap().clone()
    }
}

impl Drop for OnlineLearner {
    fn drop(&mut self) {
        {
            let mut state = self.inner.queue.lock().unwrap();
            state.shutdown = true;
        }
        self.inner.work.notify_all();
        self.inner.progress.notify_all();
        if let Some(trainer) = self.trainer.take() {
            let _ = trainer.join();
        }
    }
}

fn checkpoint_dir(state_dir: &Path, generation: u64) -> PathBuf {
    state_dir.join(format!("checkpoint-{generation}"))
}

fn log_path(state_dir: &Path, generation: u64) -> PathBuf {
    state_dir.join(format!("replay-{generation}.log"))
}

/// Read the active generation number, `None` on a fresh state dir.
fn read_current(state_dir: &Path) -> std::io::Result<Option<u64>> {
    match std::fs::read_to_string(state_dir.join("current")) {
        Ok(text) => text.trim().parse::<u64>().map(Some).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("corrupt generation marker in {}", state_dir.display()),
            )
        }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Atomically point `current` at `generation` (write-then-rename).
fn write_current(state_dir: &Path, generation: u64) -> std::io::Result<()> {
    let tmp = state_dir.join("current.tmp");
    std::fs::write(&tmp, format!("{generation}\n"))?;
    std::fs::rename(&tmp, state_dir.join("current"))
}

/// Everything the trainer thread owns outright (no locks needed).
struct TrainerState {
    generation: u64,
    log: ReplayLog,
    ws: Workspace,
    reservoir: VecDeque<(Vec<f32>, usize)>,
    split_counter: u64,
    rows_since_publish: u64,
    last_publish: Instant,
}

fn trainer_loop(inner: &Arc<Inner>, generation: u64, log: ReplayLog, ws: Workspace) {
    let mut state = TrainerState {
        generation,
        log,
        ws,
        reservoir: VecDeque::new(),
        split_counter: 0,
        rows_since_publish: 0,
        last_publish: Instant::now(),
    };
    let mut batch = Vec::new();
    loop {
        // Wait for rows, shutdown, or the publish timer (which only
        // matters while trained rows are waiting to be shipped).
        let drained = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if queue.shutdown {
                    return;
                }
                if !queue.rows.is_empty() {
                    break;
                }
                if state.rows_since_publish > 0
                    && state.last_publish.elapsed() >= inner.config.publish_interval
                {
                    break;
                }
                let (next, _) = inner
                    .work
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap();
                queue = next;
            }
            batch.clear();
            while batch.len() < inner.config.fold_rows {
                match queue.rows.pop_front() {
                    Some(row) => batch.push(row),
                    None => break,
                }
            }
            inner.metrics.queue_depth.store(
                queue.rows.len() as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
            batch.len() as u64
        };

        if drained > 0 {
            fold_batch(inner, &mut state, &batch);
        }

        // Publish policy: every N trained rows, or T seconds with rows
        // pending. Both counters reset on every attempt, accepted or not,
        // so a rejected shadow re-qualifies only after fresh evidence.
        if state.rows_since_publish >= inner.config.publish_rows
            || (state.rows_since_publish > 0
                && state.last_publish.elapsed() >= inner.config.publish_interval)
        {
            try_publish(inner, &mut state);
            state.rows_since_publish = 0;
            state.last_publish = Instant::now();
        }

        if drained > 0 {
            let mut queue = inner.queue.lock().unwrap();
            queue.applied += drained;
            drop(queue);
            inner.progress.notify_all();
        }
    }
}

/// Split one drained batch into reservoir and training rows, log the
/// training rows, and fold them into the shadow.
fn fold_batch(inner: &Arc<Inner>, state: &mut TrainerState, batch: &[(Vec<f32>, usize)]) {
    let mut train_data = Vec::new();
    let mut train_labels = Vec::new();
    let mut n_train = 0usize;
    let mut n_heldout = 0u64;
    for (row, label) in batch {
        state.split_counter += 1;
        let hold_out = inner.config.reservoir_stride > 0
            && state
                .split_counter
                .is_multiple_of(inner.config.reservoir_stride);
        if hold_out {
            if state.reservoir.len() >= inner.config.reservoir_capacity {
                state.reservoir.pop_front();
            }
            state.reservoir.push_back((row.clone(), *label));
            n_heldout += 1;
        } else {
            train_data.extend_from_slice(row);
            train_labels.push(*label);
            n_train += 1;
        }
    }
    inner
        .metrics
        .rows_heldout
        .fetch_add(n_heldout, std::sync::atomic::Ordering::Relaxed);
    if n_train == 0 {
        return;
    }
    let rows = Matrix::from_vec(n_train, inner.input_width, train_data);

    // Durability before learning: a row is folded only once it is on disk,
    // so an acknowledged-and-trained row always survives a restart.
    if state.log.append(&rows, &train_labels).is_err() {
        // An unloggable fold must not be trained either (replay would
        // silently diverge). Drop the batch; the rejection counter is the
        // operator's signal.
        inner
            .metrics
            .rows_rejected
            .fetch_add(n_train as u64, std::sync::atomic::Ordering::Relaxed);
        return;
    }
    let _ = state.log.sync();
    inner
        .metrics
        .replay_log_bytes
        .store(state.log.bytes(), std::sync::atomic::Ordering::Relaxed);

    let fold = {
        let mut shadow = inner.shadow.lock().unwrap();
        shadow.learn_batch(&rows, &train_labels, &mut state.ws)
    };
    if fold.is_ok() {
        state.rows_since_publish += n_train as u64;
        inner
            .metrics
            .rows_trained
            .fetch_add(n_train as u64, std::sync::atomic::Ordering::Relaxed);
        inner
            .metrics
            .folds
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Accuracy of `predictor` on the reservoir rows.
fn reservoir_accuracy(
    predictor: &dyn Predictor,
    rows: &Matrix<f32>,
    labels: &[usize],
) -> Option<f64> {
    let proba = predictor.predict_proba(rows).ok()?;
    let predicted = bcpnn_tensor::reduce::row_argmax(&proba);
    let hits = predicted.iter().zip(labels).filter(|(p, l)| p == l).count();
    Some(hits as f64 / labels.len() as f64)
}

/// Evaluate the shadow against the live model on the reservoir and, if the
/// gate passes, checkpoint + rotate + hot-swap.
fn try_publish(inner: &Arc<Inner>, state: &mut TrainerState) {
    // The gate, when there is enough held-out evidence to run it.
    if state.reservoir.len() >= inner.config.min_eval_rows.max(1) {
        let n = state.reservoir.len();
        let mut data = Vec::with_capacity(n * inner.input_width);
        let mut labels = Vec::with_capacity(n);
        for (row, label) in &state.reservoir {
            data.extend_from_slice(row);
            labels.push(*label);
        }
        let rows = Matrix::from_vec(n, inner.input_width, data);
        let shadow_acc = {
            let shadow = inner.shadow.lock().unwrap();
            reservoir_accuracy(&*shadow, &rows, &labels)
        };
        let live_acc = inner
            .registry
            .lookup(&inner.model)
            .and_then(|model| reservoir_accuracy(model.predictor(), &rows, &labels));
        if let (Some(shadow_acc), Some(live_acc)) = (shadow_acc, live_acc) {
            inner
                .metrics
                .set_accuracy(shadow_acc as f32, live_acc as f32);
            if shadow_acc + inner.config.accuracy_delta < live_acc {
                inner
                    .metrics
                    .publishes_rejected
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return;
            }
        }
    }

    // Next generation: checkpoint the shadow, give it a fresh empty log,
    // and swap `current` atomically — see the module docs for why this
    // ordering is crash-consistent.
    let next = state.generation + 1;
    let dir = checkpoint_dir(&inner.config.state_dir, next);
    let publish = (|| -> Result<(), CoreError> {
        {
            let mut shadow = inner.shadow.lock().unwrap();
            shadow.save(&dir)?;
            // Re-normalize the shadow to exactly the state a restart would
            // load (save does not persist transient RNG position), so
            // checkpoint + empty log keeps describing the shadow exactly.
            *shadow = Pipeline::load(&dir, inner.config.backend)?;
        }
        let (new_log, _) =
            ReplayLog::open(&log_path(&inner.config.state_dir, next)).map_err(CoreError::Io)?;
        write_current(&inner.config.state_dir, next).map_err(CoreError::Io)?;
        state.log = new_log;
        Ok(())
    })();
    if publish.is_err() {
        // Could not make the new generation durable; keep serving and
        // learning on the old one and surface it as a rejected publish.
        inner
            .metrics
            .publishes_rejected
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }
    let old = state.generation;
    state.generation = next;
    inner
        .metrics
        .replay_log_bytes
        .store(state.log.bytes(), std::sync::atomic::Ordering::Relaxed);

    // Hot-swap: the registry publish is atomic; readers either get the old
    // or the new version, and in-flight batches finish on the old one.
    let version = inner
        .registry
        .lookup(&inner.model)
        .map_or(1, |m| m.version() + 1);
    let clone = inner.shadow.lock().unwrap().clone();
    inner
        .registry
        .publish(ServedModel::new(&inner.model, version, clone));
    inner
        .metrics
        .publishes
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);

    // The displaced generation is garbage now (best-effort cleanup).
    let _ = std::fs::remove_dir_all(checkpoint_dir(&inner.config.state_dir, old));
    let _ = std::fs::remove_file(log_path(&inner.config.state_dir, old));
}
