//! `bcpnn_learn_*` Prometheus metrics for the online-learning tier.
//!
//! One [`LearnMetrics`] instance lives inside each [`crate::OnlineLearner`]
//! (relaxed atomics — these are statistics, not synchronization). Because a
//! process may run one learner per model, the exposition renderer takes
//! *all* learners at once and emits each metric family exactly once with a
//! `model="..."` label per learner, keeping the combined scrape a valid
//! single exposition (checked by `bcpnn_serve::validate_prometheus` in
//! tests).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel for "no evaluation has happened yet" in the accuracy gauges.
const UNSET: u64 = u64::MAX;

/// Relaxed-atomic counters and gauges of one learner.
#[derive(Debug, Default)]
pub struct LearnMetrics {
    pub(crate) rows_ingested: AtomicU64,
    pub(crate) rows_trained: AtomicU64,
    pub(crate) rows_heldout: AtomicU64,
    pub(crate) rows_rejected: AtomicU64,
    pub(crate) folds: AtomicU64,
    pub(crate) publishes: AtomicU64,
    pub(crate) publishes_rejected: AtomicU64,
    pub(crate) replayed_frames: AtomicU64,
    pub(crate) replay_log_bytes: AtomicU64,
    pub(crate) queue_depth: AtomicU64,
    /// Accuracy in millionths (0..=1_000_000), `UNSET` before the first
    /// reservoir evaluation.
    pub(crate) shadow_accuracy: AtomicU64,
    pub(crate) live_accuracy: AtomicU64,
}

impl LearnMetrics {
    pub(crate) fn new() -> Self {
        let m = Self::default();
        m.shadow_accuracy.store(UNSET, Ordering::Relaxed);
        m.live_accuracy.store(UNSET, Ordering::Relaxed);
        m
    }

    pub(crate) fn set_accuracy(&self, shadow: f32, live: f32) {
        let enc = |acc: f32| (f64::from(acc.clamp(0.0, 1.0)) * 1e6).round() as u64;
        self.shadow_accuracy.store(enc(shadow), Ordering::Relaxed);
        self.live_accuracy.store(enc(live), Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter and gauge.
    pub fn snapshot(&self) -> LearnSnapshot {
        let acc = |a: &AtomicU64| {
            let v = a.load(Ordering::Relaxed);
            (v != UNSET).then(|| v as f64 / 1e6)
        };
        LearnSnapshot {
            rows_ingested: self.rows_ingested.load(Ordering::Relaxed),
            rows_trained: self.rows_trained.load(Ordering::Relaxed),
            rows_heldout: self.rows_heldout.load(Ordering::Relaxed),
            rows_rejected: self.rows_rejected.load(Ordering::Relaxed),
            folds: self.folds.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            publishes_rejected: self.publishes_rejected.load(Ordering::Relaxed),
            replayed_frames: self.replayed_frames.load(Ordering::Relaxed),
            replay_log_bytes: self.replay_log_bytes.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            shadow_accuracy: acc(&self.shadow_accuracy),
            live_accuracy: acc(&self.live_accuracy),
        }
    }
}

/// Plain-value copy of [`LearnMetrics`] (what tests and the exposition
/// renderer consume).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnSnapshot {
    /// Labeled rows accepted into the ingest queue.
    pub rows_ingested: u64,
    /// Rows folded into the shadow (ingested minus held-out minus pending).
    pub rows_trained: u64,
    /// Rows diverted into the held-out evaluation reservoir.
    pub rows_heldout: u64,
    /// Rows refused because the ingest queue was full.
    pub rows_rejected: u64,
    /// Shadow-trainer fold batches applied.
    pub folds: u64,
    /// Successful hot-swap publishes of the shadow.
    pub publishes: u64,
    /// Publishes blocked by the accuracy gate.
    pub publishes_rejected: u64,
    /// Frames replayed from the log at startup.
    pub replayed_frames: u64,
    /// Current replay-log size in bytes.
    pub replay_log_bytes: u64,
    /// Rows currently waiting in the ingest queue.
    pub queue_depth: u64,
    /// Shadow accuracy on the reservoir (`None` before first evaluation).
    pub shadow_accuracy: Option<f64>,
    /// Live (published) model accuracy on the same reservoir.
    pub live_accuracy: Option<f64>,
}

/// Render the combined `bcpnn_learn_*` exposition for a set of learners,
/// one `model`-labeled sample per learner per family.
pub fn prometheus_exposition(learners: &[(&str, LearnSnapshot)]) -> String {
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, get: &dyn Fn(&LearnSnapshot) -> u64| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
        for (model, snap) in learners {
            out.push_str(&format!("{name}{{model=\"{model}\"}} {}\n", get(snap)));
        }
    };
    counter(
        "bcpnn_learn_rows_total",
        "Labeled rows accepted by the learn endpoint.",
        &|s| s.rows_ingested,
    );
    counter(
        "bcpnn_learn_rows_trained_total",
        "Rows folded into the shadow model.",
        &|s| s.rows_trained,
    );
    counter(
        "bcpnn_learn_rows_heldout_total",
        "Rows diverted to the held-out evaluation reservoir.",
        &|s| s.rows_heldout,
    );
    counter(
        "bcpnn_learn_rows_rejected_total",
        "Rows refused because the ingest queue was full.",
        &|s| s.rows_rejected,
    );
    counter(
        "bcpnn_learn_folds_total",
        "Shadow-trainer fold batches applied.",
        &|s| s.folds,
    );
    counter(
        "bcpnn_learn_publishes_total",
        "Shadow models published via registry hot-swap.",
        &|s| s.publishes,
    );
    counter(
        "bcpnn_learn_publishes_rejected_total",
        "Publishes blocked by the accuracy gate.",
        &|s| s.publishes_rejected,
    );
    counter(
        "bcpnn_learn_replayed_frames_total",
        "Replay-log frames folded back at startup.",
        &|s| s.replayed_frames,
    );
    let mut gauge = |name: &str, help: &str, get: &dyn Fn(&LearnSnapshot) -> Option<f64>| {
        let mut lines = String::new();
        for (model, snap) in learners {
            if let Some(v) = get(snap) {
                lines.push_str(&format!("{name}{{model=\"{model}\"}} {v}\n"));
            }
        }
        if !lines.is_empty() {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            out.push_str(&lines);
        }
    };
    gauge(
        "bcpnn_learn_replay_log_bytes",
        "Current replay-log size in bytes.",
        &|s| Some(s.replay_log_bytes as f64),
    );
    gauge(
        "bcpnn_learn_queue_depth",
        "Rows waiting in the ingest queue.",
        &|s| Some(s.queue_depth as f64),
    );
    gauge(
        "bcpnn_learn_shadow_accuracy",
        "Shadow-model accuracy on the held-out reservoir.",
        &|s| s.shadow_accuracy,
    );
    gauge(
        "bcpnn_learn_live_accuracy",
        "Published-model accuracy on the held-out reservoir.",
        &|s| s.live_accuracy,
    );
    gauge(
        "bcpnn_learn_shadow_vs_live_accuracy",
        "Shadow minus live accuracy on the held-out reservoir (positive: shadow is ahead).",
        &|s| match (s.shadow_accuracy, s.live_accuracy) {
            (Some(shadow), Some(live)) => Some(shadow - live),
            _ => None,
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_valid_prometheus_and_has_the_canonical_counter() {
        let metrics = LearnMetrics::new();
        metrics.rows_ingested.store(42, Ordering::Relaxed);
        metrics.set_accuracy(0.8125, 0.75);
        let other = LearnMetrics::new();
        let text =
            prometheus_exposition(&[("higgs", metrics.snapshot()), ("mnist", other.snapshot())]);
        bcpnn_serve::validate_prometheus(&text).expect("exposition parses");
        assert!(text.contains("bcpnn_learn_rows_total{model=\"higgs\"} 42"));
        assert!(text.contains("bcpnn_learn_rows_total{model=\"mnist\"} 0"));
        assert!(text.contains("bcpnn_learn_shadow_accuracy{model=\"higgs\"} 0.8125"));
        // No evaluation yet on `mnist` -> no accuracy sample for it.
        assert!(!text.contains("bcpnn_learn_shadow_accuracy{model=\"mnist\"}"));
        assert!(text.contains("bcpnn_learn_shadow_vs_live_accuracy{model=\"higgs\"} 0.0625"));
    }

    #[test]
    fn snapshot_reports_unset_accuracy_as_none() {
        let metrics = LearnMetrics::new();
        let snap = metrics.snapshot();
        assert_eq!(snap.shadow_accuracy, None);
        assert_eq!(snap.live_accuracy, None);
    }
}
