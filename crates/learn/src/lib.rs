//! # bcpnn-learn — online learning as a service
//!
//! BCPNN weights are Bayesian co-activation counters, which makes the
//! model natively incremental: folding a labeled row into a fitted
//! network is the same trace update the offline trainer loops over, not a
//! refit. This crate turns that property into a serving-tier capability —
//! continuous deployment of the *model itself*:
//!
//! - [`OnlineLearner`] owns a shadow clone of a published model, ingests
//!   labeled rows through a bounded queue, folds them on a background
//!   trainer thread ([`bcpnn_core::Pipeline::learn_batch`]), evaluates the
//!   shadow against a held-out reservoir, and publishes through the
//!   registry's atomic hot-swap when the accuracy gate passes — serving
//!   never pauses.
//! - [`ReplayLog`] makes acknowledged rows durable: an append-only,
//!   CRC-framed binary log (the same defensive framing discipline as
//!   `bcpnn_cluster::wire`) that a restarted learner replays over its
//!   last checkpoint to rebuild the shadow bit-for-bit. The log rotates
//!   on every publish.
//! - [`prometheus_exposition`] renders the `bcpnn_learn_*` metric
//!   families (rows ingested/trained/rejected, publishes, accuracy
//!   gauges, log bytes) for merging into the gateway and cluster scrapes.
//!
//! The wire face lives upstream: `POST /v1/models/{name}/learn` on
//! `bcpnn-gateway`, and the `Learn` opcode (fan-out to every replica of
//! the model's group) on `bcpnn-cluster`.

#![warn(missing_docs)]

mod learner;
pub mod metrics;
pub mod replay;

pub use learner::{LearnError, LearnerConfig, OnlineLearner};
pub use metrics::{prometheus_exposition, LearnMetrics, LearnSnapshot};
pub use replay::{LearnFrame, Recovery, ReplayLog};
