//! Crash-recovery integration: a hard-killed learner must rebuild its
//! in-memory shadow **bit-for-bit** from checkpoint + replay log. The
//! durability contract makes this possible: a row is folded into the
//! shadow only after its frame is synced to disk, and the shadow is
//! always (re-)established by loading a checkpoint, so the on-disk pair
//! exactly describes the in-memory state at every instant.

use std::path::Path;
use std::sync::Arc;

use bcpnn_backend::BackendKind;
use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_learn::{LearnerConfig, OnlineLearner};
use bcpnn_serve::{ModelRegistry, ServedModel};

fn fit_base(seed: u64) -> (Pipeline, bcpnn_data::Dataset) {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 300,
        seed,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        8,
        Network::builder()
            .hidden(2, 4, 0.3)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 50,
            ..Default::default()
        },
    )
    .unwrap();
    (pipeline, data)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bcpnn-learn-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Byte-for-byte equality of two saved pipeline artifacts.
fn dirs_identical(a: &Path, b: &Path) {
    let mut names: Vec<String> = std::fs::read_dir(a)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    let mut names_b: Vec<String> = std::fs::read_dir(b)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names_b.sort();
    assert_eq!(names, names_b, "artifact file sets differ");
    assert!(!names.is_empty(), "artifact directories are empty");
    for name in names {
        let bytes_a = std::fs::read(a.join(&name)).unwrap();
        let bytes_b = std::fs::read(b.join(&name)).unwrap();
        assert_eq!(bytes_a, bytes_b, "artifact file {name} differs byte-wise");
    }
}

/// No-publish config: the test controls durability purely through the
/// replay log of generation 0.
fn no_publish_config(state_dir: std::path::PathBuf) -> LearnerConfig {
    LearnerConfig {
        state_dir,
        backend: BackendKind::Naive,
        fold_rows: 16,
        publish_rows: u64::MAX,
        publish_interval: std::time::Duration::from_secs(3600),
        reservoir_stride: 3,
        ..LearnerConfig::default()
    }
}

#[test]
fn a_killed_learner_replays_its_log_into_an_identical_shadow() {
    let (base, data) = fit_base(41);
    let state_dir = temp_dir("identical");
    let out_dir = temp_dir("identical-out");

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, base.clone()));

    // First life: fold 120 labeled rows (the stride diverts every 3rd
    // into the in-memory reservoir, so folds and held-outs interleave).
    let shadow_before = {
        let learner = OnlineLearner::start(
            Arc::clone(&registry),
            "higgs",
            &base,
            no_publish_config(state_dir.clone()),
        )
        .unwrap();
        for chunk in 0..6 {
            let rows: Vec<Vec<f32>> = (0..20)
                .map(|i| data.features.row(chunk * 20 + i).to_vec())
                .collect();
            let labels: Vec<usize> = (0..20).map(|i| data.labels[chunk * 20 + i]).collect();
            assert_eq!(learner.submit(&rows, &labels).unwrap(), 20);
        }
        learner.drain();
        let snapshot = learner.metrics();
        assert_eq!(snapshot.rows_ingested, 120);
        assert!(snapshot.rows_trained > 0, "{snapshot:?}");
        assert!(snapshot.rows_heldout > 0, "{snapshot:?}");
        assert_eq!(snapshot.publishes, 0, "{snapshot:?}");
        learner.shadow_pipeline()
        // Dropping the learner here is the "kill": the queue is empty
        // (drained), so every trained row is already on disk, which is
        // exactly what the durability-before-training order guarantees
        // at any kill point.
    };
    shadow_before.save(out_dir.join("before")).unwrap();

    // Simulate a torn final write at kill time: garbage appended past the
    // last synced frame must be dropped by recovery, not replayed.
    {
        use std::io::Write;
        let mut log = std::fs::OpenOptions::new()
            .append(true)
            .open(state_dir.join("replay-0.log"))
            .unwrap();
        log.write_all(&[0x41, 0x42, 0x43]).unwrap();
    }

    // Second life: same state dir. The base argument must be ignored in
    // favor of recovered state — hand it a freshly fitted decoy to prove
    // it.
    let (decoy, _) = fit_base(97);
    let learner = OnlineLearner::start(
        Arc::clone(&registry),
        "higgs",
        &decoy,
        no_publish_config(state_dir.clone()),
    )
    .unwrap();
    let snapshot = learner.metrics();
    assert!(snapshot.replayed_frames > 0, "{snapshot:?}");
    let shadow_after = learner.shadow_pipeline();
    shadow_after.save(out_dir.join("after")).unwrap();

    dirs_identical(&out_dir.join("before"), &out_dir.join("after"));

    // And the rebuilt shadow keeps learning: fold more rows on top.
    let rows: Vec<Vec<f32>> = (120..140).map(|i| data.features.row(i).to_vec()).collect();
    let labels: Vec<usize> = (120..140).map(|i| data.labels[i]).collect();
    learner.submit(&rows, &labels).unwrap();
    learner.drain();
    drop(learner);

    let _ = std::fs::remove_dir_all(&state_dir);
    let _ = std::fs::remove_dir_all(&out_dir);
}

#[test]
fn restart_after_a_publish_resumes_from_the_new_generation() {
    let (base, data) = fit_base(43);
    let state_dir = temp_dir("generation");
    let out_dir = temp_dir("generation-out");

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, base.clone()));

    // Publish every 40 trained rows, ungated (stride 0 => no reservoir,
    // cold-start publishes pass).
    let config = LearnerConfig {
        state_dir: state_dir.clone(),
        backend: BackendKind::Naive,
        fold_rows: 16,
        publish_rows: 40,
        publish_interval: std::time::Duration::from_secs(3600),
        reservoir_stride: 0,
        ..LearnerConfig::default()
    };

    let shadow_before = {
        let learner =
            OnlineLearner::start(Arc::clone(&registry), "higgs", &base, config.clone()).unwrap();
        let rows: Vec<Vec<f32>> = (0..100).map(|i| data.features.row(i).to_vec()).collect();
        let labels: Vec<usize> = (0..100).map(|i| data.labels[i]).collect();
        learner.submit(&rows, &labels).unwrap();
        learner.drain();
        let snapshot = learner.metrics();
        assert!(snapshot.publishes >= 1, "{snapshot:?}");
        learner.shadow_pipeline()
    };
    shadow_before.save(out_dir.join("before")).unwrap();

    // The hot-swap reached the registry.
    let live = registry.lookup("higgs").unwrap();
    assert!(live.version() > 1);

    // Restart: the recovered generation is the post-publish one, plus
    // whatever the log accumulated after it.
    let learner = OnlineLearner::start(Arc::clone(&registry), "higgs", &base, config).unwrap();
    let shadow_after = learner.shadow_pipeline();
    shadow_after.save(out_dir.join("after")).unwrap();
    dirs_identical(&out_dir.join("before"), &out_dir.join("after"));
    drop(learner);

    let _ = std::fs::remove_dir_all(&state_dir);
    let _ = std::fs::remove_dir_all(&out_dir);
}
