//! Property-based checks on the replay log: every sequence of appended
//! learn batches must come back intact on reopen, and arbitrary tail
//! corruption — truncation mid-frame, bit flips anywhere after the
//! header — must never panic and never surface a corrupt frame. A
//! learner that replayed a mangled batch would silently diverge from
//! every other replica; dropping the tail is the only safe recovery.

use bcpnn_learn::replay::HEADER_LEN;
use bcpnn_learn::{LearnFrame, ReplayLog};
use bcpnn_tensor::Matrix;
use proptest::prelude::*;

/// A batch as its `(rows, cols, cells, labels)` raw parts; geometry is
/// kept consistent so `Matrix::from_vec` always succeeds.
fn batch_strategy() -> impl Strategy<Value = (usize, usize, Vec<f32>, Vec<usize>)> {
    (1usize..5, 1usize..7).prop_flat_map(|(n_rows, n_cols)| {
        (
            Just(n_rows),
            Just(n_cols),
            prop::collection::vec(-1.0e5f32..1.0e5, n_rows * n_cols),
            prop::collection::vec(0usize..8, n_rows),
        )
    })
}

fn batches_strategy() -> impl Strategy<Value = Vec<(usize, usize, Vec<f32>, Vec<usize>)>> {
    prop::collection::vec(batch_strategy(), 0..6)
}

fn temp_log_path(tag: &str) -> std::path::PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "bcpnn-replay-prop-{tag}-{}-{n}.log",
        std::process::id()
    ))
}

/// Write `batches` to a fresh log at `path`, returning the frames as the
/// reader should see them.
fn write_log(
    path: &std::path::Path,
    batches: &[(usize, usize, Vec<f32>, Vec<usize>)],
) -> Vec<LearnFrame> {
    let _ = std::fs::remove_file(path);
    let (mut log, recovery) = ReplayLog::open(path).expect("fresh log opens");
    assert!(recovery.frames.is_empty());
    let mut expected = Vec::with_capacity(batches.len());
    for (n_rows, n_cols, cells, labels) in batches {
        let rows = Matrix::from_vec(*n_rows, *n_cols, cells.clone());
        log.append(&rows, labels).expect("append succeeds");
        expected.push(LearnFrame {
            rows,
            labels: labels.clone(),
        });
    }
    log.sync().expect("sync succeeds");
    expected
}

fn frames_equal(a: &LearnFrame, b: &LearnFrame) -> bool {
    a.labels == b.labels
        && a.rows.rows() == b.rows.rows()
        && a.rows.cols() == b.rows.cols()
        && a.rows
            .as_slice()
            .iter()
            .zip(b.rows.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_append_sequence_replays_bit_exactly(batches in batches_strategy()) {
        let path = temp_log_path("roundtrip");
        let expected = write_log(&path, &batches);
        let (_log, recovery) = ReplayLog::open(&path).expect("reopen succeeds");
        prop_assert_eq!(recovery.dropped_bytes, 0);
        prop_assert_eq!(recovery.frames.len(), expected.len());
        for (got, want) in recovery.frames.iter().zip(&expected) {
            prop_assert!(frames_equal(got, want));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_anywhere_keeps_a_clean_prefix(
        batches in batches_strategy(),
        cut in 0usize..100_000,
    ) {
        let path = temp_log_path("truncate");
        let expected = write_log(&path, &batches);
        let full = std::fs::read(&path).unwrap();
        // Cut anywhere in [0, len): even inside the header — a short
        // file must come back as an empty, writable log.
        let keep = cut % full.len().max(1);
        std::fs::write(&path, &full[..keep]).unwrap();

        // Never a panic, never an error, never a corrupt frame: the
        // survivors must be an exact prefix of what was written.
        let (_log, recovery) = ReplayLog::open(&path).expect("truncated log still opens");
        prop_assert!(recovery.frames.len() <= expected.len());
        for (got, want) in recovery.frames.iter().zip(&expected) {
            prop_assert!(frames_equal(got, want));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flips_after_the_header_never_surface_corrupt_frames(
        batches in batches_strategy(),
        pos in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let path = temp_log_path("bitflip");
        let expected = write_log(&path, &batches);
        let mut bytes = std::fs::read(&path).unwrap();
        let header = HEADER_LEN as usize;
        if bytes.len() > header {
            let at = header + pos % (bytes.len() - header);
            bytes[at] ^= 1 << bit;
            std::fs::write(&path, &bytes).unwrap();
        }

        let (_log, recovery) = ReplayLog::open(&path).expect("corrupt log still opens");
        // A flipped byte kills its frame and everything after it (the
        // scan cannot trust positions past a bad length or CRC), but
        // every surviving frame must match what was written, in order.
        prop_assert!(recovery.frames.len() <= expected.len());
        for (got, want) in recovery.frames.iter().zip(&expected) {
            prop_assert!(frames_equal(got, want));
        }
        let _ = std::fs::remove_file(&path);
    }
}
