//! # bcpnn-gateway
//!
//! A dependency-free HTTP/1.1 front-end for the `bcpnn-serve` stack: the
//! network boundary that turns the in-process sharded, zero-allocation
//! serving data plane into a service a load balancer can point at.
//!
//! Everything is `std`: `std::net::TcpListener`, a hand-rolled HTTP
//! parser ([`http`]), a hand-rolled JSON module ([`json`]) with bit-exact
//! `f32` round trips, and a bounded accept/worker thread pool
//! ([`Gateway`]). The build is offline — no hyper, no serde — and the
//! wire surface is small enough that owning it outright is cheaper than
//! shimming a framework.
//!
//! ## Endpoints
//!
//! | Method & path | Purpose |
//! |---|---|
//! | `POST /v1/models/{name}/predict` | Rows in (JSON array of arrays), probabilities out |
//! | `GET /metrics` | Prometheus scrape: serving (per-shard + aggregate) **and** gateway counters |
//! | `GET /healthz` | Liveness probe |
//! | `GET /v1/models` | Registry listing with versions and shapes |
//! | `PUT /v1/models/{name}` | Hot-swap a persisted `v1`–`v3` artifact from a path |
//!
//! Scheduling options thread through headers — `X-Priority:
//! high|normal|low`, `X-Deadline-Ms: <millis>` — and
//! [`ServeError`](bcpnn_serve::ServeError) variants map to proper status
//! codes (`DeadlineExceeded` → 504, unknown model → 404; see [`error`]).
//!
//! ## Micro-batching still amortizes
//!
//! The gateway does not run models. Every feature row from every
//! connection is submitted individually to the shared
//! [`ServeTarget`](bcpnn_serve::ServeTarget) — the same object-safe sink
//! the load generator drives — so the serving stack's collector coalesces
//! rows *across HTTP connections* into vectorized batches, and one
//! slow-to-send client never blocks another's batch.
//!
//! ```no_run
//! use std::sync::Arc;
//! use bcpnn_serve::{ModelRegistry, ServeTarget, ShardConfig, ShardedServer};
//! use bcpnn_gateway::{Gateway, GatewayConfig};
//!
//! let registry = Arc::new(ModelRegistry::new());
//! // ... publish fitted models into the registry ...
//! let server = Arc::new(ShardedServer::start(registry, ShardConfig::new(4)));
//! let gateway = Gateway::start(server as Arc<dyn ServeTarget>, GatewayConfig::default())?;
//! println!("serving on http://{}", gateway.local_addr());
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod client;
pub mod error;
pub mod http;
pub mod json;
pub mod metrics;
pub mod router;
mod server;

pub use error::{status_of, ApiError};
pub use metrics::{GatewayMetrics, GatewaySnapshot};
pub use server::{Gateway, GatewayConfig};
